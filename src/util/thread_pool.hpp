#pragma once
/// \file thread_pool.hpp
/// Reusable fixed-size worker pool.
///
/// Workers drain a FIFO task queue; wait_idle() blocks until every submitted
/// task has finished, so one pool can serve many sequential batches (build
/// the campaign goldens, then run the session queue, then the next campaign).
/// Determinism is the caller's job: give each task an index-derived seed
/// (see Rng::split) and a dedicated result slot, and the outcome is
/// independent of scheduling order and thread count.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace emutile {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads) {
    EMUTILE_CHECK(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Enqueue one task. Tasks must not throw — wrap fallible work and record
  /// the failure in the task's result slot instead.
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EMUTILE_CHECK(!stopping_, "submit on a stopping thread pool");
      queue_.push_back(std::move(task));
    }
    wake_workers_.notify_one();
  }

  /// Run `fn(i)` for every i in [0, count) across the pool and wait for all
  /// of them. `fn` is shared by the workers, so it must be safe to call
  /// concurrently with distinct indices.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
    for (std::size_t i = 0; i < count; ++i) submit([&fn, i] { fn(i); });
    wait_idle();
  }

  /// Block until the queue is empty and no worker is mid-task.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace emutile
