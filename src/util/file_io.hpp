#pragma once
/// \file file_io.hpp
/// Small filesystem helpers shared by the service layer and tools.

#include <filesystem>
#include <string>

namespace emutile {

/// Atomically write `content` to `path`: the data lands under a temp name
/// unique across threads and processes, then rename() publishes it, so
/// readers see either the old file or the complete new one — never a torn
/// write. Racing writers of the same path resolve last-writer-wins. Throws
/// CheckError when the write or the publish fails.
void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content);

/// Read the whole of `path` into a string. Throws CheckError when the file
/// cannot be opened.
[[nodiscard]] std::string read_file(const std::filesystem::path& path);

}  // namespace emutile
