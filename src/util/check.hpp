#pragma once
/// \file check.hpp
/// Error-checking macros used across the library.
///
/// EMUTILE_CHECK   — recoverable precondition/state violation: throws
///                   emutile::CheckError (derived from std::runtime_error).
/// EMUTILE_ASSERT  — internal invariant; also throws so tests can observe it,
///                   but signals a library bug rather than bad user input.

#include <sstream>
#include <stdexcept>
#include <string>

namespace emutile {

/// Thrown when a EMUTILE_CHECK precondition fails (bad input / bad request).
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated (library bug).
class AssertError : public std::logic_error {
 public:
  explicit AssertError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
[[noreturn]] inline void throw_assert(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": internal assertion failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw AssertError(os.str());
}
}  // namespace detail

}  // namespace emutile

#define EMUTILE_CHECK(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream emutile_os_;                                         \
      emutile_os_ << msg; /* NOLINT */                                        \
      ::emutile::detail::throw_check(#cond, __FILE__, __LINE__,               \
                                     emutile_os_.str());                      \
    }                                                                         \
  } while (false)

#define EMUTILE_ASSERT(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream emutile_os_;                                         \
      emutile_os_ << msg; /* NOLINT */                                        \
      ::emutile::detail::throw_assert(#cond, __FILE__, __LINE__,              \
                                      emutile_os_.str());                     \
    }                                                                         \
  } while (false)
