#include "util/file_io.hpp"

#include <unistd.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

void write_file_atomic(const std::filesystem::path& path,
                       const std::string& content) {
  // pid + process-wide sequence makes the temp name unique across the
  // threads of this process and across processes sharing the directory, so
  // racing writers never interleave into one temp file.
  static std::atomic<unsigned long> seq{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(++seq);
  {
    std::ofstream out(tmp, std::ios::trunc);
    EMUTILE_CHECK(out.good(), "cannot write " << tmp);
    out << content;
    // Flush before checking: a close-time flush failure (disk full) would
    // otherwise go unseen and rename() would publish a truncated file.
    out.flush();
    EMUTILE_CHECK(out.good(), "write to " << tmp << " failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    EMUTILE_CHECK(false, "cannot publish " << path << ": " << ec.message());
  }
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EMUTILE_CHECK(in.good(), "cannot open " << path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace emutile
