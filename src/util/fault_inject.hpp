#pragma once
/// \file fault_inject.hpp
/// Crash-point injection for the durability test suite: EMUTILE_FAULT_POINT
/// marks the ordering-sensitive instants of the persistence paths (between a
/// session result reaching the cache and its journal record, between the
/// final report and the journal's completion record, ...) so a test can
/// SIGKILL the process at exactly that instant and prove the recovery path
/// reconstructs the same bytes.
///
/// Activation is environment-driven, so the crash fires in a forked child or
/// a spawned daemon without any API plumbing:
///
///   EMUTILE_FAULT_POINT=<name>         die at the first hit of <name>
///   EMUTILE_FAULT_POINT=<name>:<skip>  let <skip> hits pass first — how the
///                                      randomized kill-point tests vary the
///                                      crash position within one campaign
///
/// The crash is raise(SIGKILL): no destructors, no atexit, no flush — the
/// same face a power loss or OOM kill shows the on-disk state. The macro
/// compiles to nothing unless EMUTILE_FAULT_POINTS_ENABLED is defined
/// (CMake defines it for every build type except Release), so production
/// binaries carry no branch on the hot paths; fault_points_compiled_in()
/// lets tests skip instead of silently passing when the hooks are absent.

namespace emutile {

/// True when this binary was built with the fault-point hooks compiled in.
[[nodiscard]] bool fault_points_compiled_in();

/// Implementation behind EMUTILE_FAULT_POINT — call the macro, not this.
/// Reads EMUTILE_FAULT_POINT once per process (a forked child re-reads, so
/// a test harness can setenv between fork and the first hit); on a name
/// match past the configured skip count, SIGKILLs the process.
void fault_point_hit(const char* name);

}  // namespace emutile

#ifdef EMUTILE_FAULT_POINTS_ENABLED
#define EMUTILE_FAULT_POINT(name) ::emutile::fault_point_hit(name)
#else
#define EMUTILE_FAULT_POINT(name) ((void)0)
#endif
