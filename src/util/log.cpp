#include "util/log.hpp"

#include <atomic>
#include <mutex>
#include <utility>

namespace emutile {

namespace {
// Atomic so daemon threads can read the threshold while a signal-driven or
// admin path changes it, without a lock on every log-site check.
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

// Campaign id attributed to this thread's log lines (LogCampaignScope).
thread_local std::string t_campaign;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

LogCampaignScope::LogCampaignScope(std::string_view id)
    : previous_(std::move(t_campaign)) {
  t_campaign.assign(id);
}

LogCampaignScope::~LogCampaignScope() { t_campaign = std::move(previous_); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // The whole line is assembled first and pushed with one stream write (under
  // a mutex for good measure), so concurrent campaign workers never
  // interleave fragments even when cout/cerr buffering is off.
  std::string line;
  line.reserve(message.size() + t_campaign.size() + 24);
  line.push_back('[');
  line.append(level_name(level));
  line.append("] ");
  if (!t_campaign.empty()) {
    line.append("campaign=");
    line.append(t_campaign);
    line.push_back(' ');
  }
  line.append(message);
  line.push_back('\n');

  static std::mutex emit_mutex;
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::ostream& os =
      static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn) ? std::cerr
                                                                   : std::cout;
  os.write(line.data(), static_cast<std::streamsize>(line.size()));
  os.flush();
}
}  // namespace detail

}  // namespace emutile
