#include "util/log.hpp"

#include <mutex>

namespace emutile {

namespace {
LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // Serialized so concurrent campaign workers never interleave lines.
  static std::mutex emit_mutex;
  std::lock_guard<std::mutex> lock(emit_mutex);
  std::ostream& os =
      static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn) ? std::cerr
                                                                   : std::cout;
  os << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace emutile
