#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every randomized algorithm in the library (placement annealing, pattern
/// generation, benchmark-design synthesis, error injection) takes an explicit
/// 64-bit seed so experiments are exactly reproducible. The generator is
/// xoshiro256**, seeded through splitmix64 as its authors recommend.

#include <array>
#include <cstdint>

namespace emutile {

/// splitmix64 step — used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Derive the seed of independent child stream `stream` from `master`.
///
/// Two splitmix64 steps over (master, stream) decorrelate even adjacent
/// stream indices, so campaign-style sweeps can give job i the seed
/// `split_seed(master, i)` and get streams that behave independently —
/// unlike `master + i`, whose xoshiro seedings share low-entropy prefixes.
/// Purely a function of its arguments: the derivation order never matters.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t master,
                                                 std::uint64_t stream) {
  std::uint64_t sm = master ^ (stream * 0x632BE59BD9B4E019ull);
  const std::uint64_t first = splitmix64(sm);
  sm ^= first;
  return splitmix64(sm);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull) { reseed(seed); }

  /// Re-initialize from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool next_bool(double p) { return next_double() < p; }

  /// Derive an independent child generator (for per-subsystem streams).
  [[nodiscard]] Rng fork() { return Rng((*this)()); }

  /// Derive the independent child generator of stream `stream`.
  ///
  /// Unlike fork(), the result depends only on this generator's seed and the
  /// stream index — not on how many numbers have been drawn — so concurrent
  /// workers splitting the same master generator get identical streams no
  /// matter the split order or thread count.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    return Rng(split_seed(seed_, stream));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

}  // namespace emutile
