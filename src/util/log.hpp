#pragma once
/// \file log.hpp
/// Minimal leveled logging. Benches and examples print their own tables;
/// the library itself logs only through this sink so tests can silence it.

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace emutile {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global verbosity threshold (default: warnings and errors only, so test
/// output stays clean; benches raise it to kInfo when narrating).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Parse "debug" | "info" | "warn" | "error" | "off" (what
/// `emutile_serviced --log-level` accepts); nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// RAII: while in scope, every log line this thread emits carries a
/// `campaign=<id>` key after the level tag, so interleaved multi-campaign
/// daemon logs stay attributable. Scopes nest; the innermost id wins and the
/// outer one is restored on destruction.
class LogCampaignScope {
 public:
  explicit LogCampaignScope(std::string_view id);
  ~LogCampaignScope();
  LogCampaignScope(const LogCampaignScope&) = delete;
  LogCampaignScope& operator=(const LogCampaignScope&) = delete;

 private:
  std::string previous_;
};

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace emutile

#define EMUTILE_LOG(level, expr)                                   \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::emutile::log_threshold())) {            \
      std::ostringstream emutile_log_os_;                          \
      emutile_log_os_ << expr; /* NOLINT */                        \
      ::emutile::detail::log_emit(level, emutile_log_os_.str());   \
    }                                                              \
  } while (false)

#define EMUTILE_DEBUG(expr) EMUTILE_LOG(::emutile::LogLevel::kDebug, expr)
#define EMUTILE_INFO(expr) EMUTILE_LOG(::emutile::LogLevel::kInfo, expr)
#define EMUTILE_WARN(expr) EMUTILE_LOG(::emutile::LogLevel::kWarn, expr)
#define EMUTILE_ERROR(expr) EMUTILE_LOG(::emutile::LogLevel::kError, expr)
