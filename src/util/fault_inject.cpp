#include "util/fault_inject.hpp"

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <mutex>
#include <string>

namespace emutile {

bool fault_points_compiled_in() {
#ifdef EMUTILE_FAULT_POINTS_ENABLED
  return true;
#else
  return false;
#endif
}

namespace {

struct FaultConfig {
  std::string name;  ///< empty: no fault armed
  long skip = 0;     ///< hits to let pass before crashing
};

FaultConfig parse_fault_config() {
  FaultConfig c;
  const char* env = std::getenv("EMUTILE_FAULT_POINT");
  if (env == nullptr || *env == '\0') return c;
  const char* colon = std::strrchr(env, ':');
  if (colon != nullptr) {
    c.name.assign(env, static_cast<std::size_t>(colon - env));
    c.skip = std::strtol(colon + 1, nullptr, 10);
  } else {
    c.name = env;
  }
  return c;
}

// Parsed at the first fault point crossed, then cached — but per *process*:
// the crash-kill harness forks children that setenv after the parent has
// already crossed (and cached) its own unarmed config, so a cached result
// from another pid must be re-read. The hit counter restarts with it.
struct FaultState {
  FaultConfig config;
  std::atomic<long> hits{0};
  pid_t pid = -1;
};

FaultState& fault_state() {
  static FaultState state;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  const pid_t self = ::getpid();
  if (state.pid != self) {
    state.config = parse_fault_config();
    state.hits.store(0);
    state.pid = self;
  }
  return state;
}

}  // namespace

void fault_point_hit(const char* name) {
  FaultState& state = fault_state();
  if (state.config.name.empty() || state.config.name != name) return;
  if (state.hits.fetch_add(1) < state.config.skip) return;
  // stderr is unbuffered enough to usually survive the kill — a breadcrumb
  // for whoever reads the dead daemon's log, never a dependency of any test.
  std::fprintf(stderr, "emutile: fault point '%s' armed — raising SIGKILL\n",
               name);
  std::raise(SIGKILL);
}

}  // namespace emutile
