#pragma once
/// \file mpmc_queue.hpp
/// Bounded lock-free multi-producer/multi-consumer ring queue.
///
/// The classic count/value-cell scheme (cf. joernblog atomic_queue.c and
/// Vyukov's bounded MPMC queue): a power-of-two ring of cells, each pairing a
/// monotonically advancing sequence count with a value slot. A producer
/// claims a cell by CAS-advancing the shared tail only when the cell's count
/// says it is empty for this lap; a consumer symmetrically claims via the
/// head when the count says the cell holds this lap's value. Count updates
/// are the publication: the producer's release-store of `count = pos + 1`
/// makes the moved-in value visible to the consumer whose acquire-load
/// observes it, so no cell is ever read half-written and no entry is lost or
/// delivered twice. Per-producer FIFO holds because a producer's own pushes
/// claim strictly increasing ring positions.
///
/// try_push/try_pop are lock-free and wait-free-ish (one CAS loop each);
/// full/empty answer immediately — backpressure is the caller's policy. The
/// blocking variants layer a mutex+condvar *only* for sleeping: the fast
/// path never touches the lock when the ring has room/work, matching how the
/// service uses it (intake bursts stay lock-free, idle workers sleep).
///
/// T must be nothrow-move-constructible (values move through the cells).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace emutile {

template <typename T>
class MpmcQueue {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "values move through ring cells; moves must not throw");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2) — the ring
  /// indexing relies on it.
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    EMUTILE_CHECK(cap >= capacity, "queue capacity overflow");
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].count.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Entries currently in the ring, approximate under concurrency (exact
  /// when quiescent). Never negative.
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return tail > head ? static_cast<std::size_t>(tail - head) : 0;
  }

  /// Non-blocking enqueue; false when the ring is full (the bounded
  /// backpressure signal).
  [[nodiscard]] bool try_push(T value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t count = cell.count.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(count) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        // Cell is empty for this lap; claim it by advancing the tail.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // a full lap behind: ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost to a producer
      }
    }
    Cell& cell = cells_[pos & mask_];
    ::new (&cell.storage) T(std::move(value));
    cell.count.store(pos + 1, std::memory_order_release);  // publish
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      wait_cv_.notify_one();
    }
    return true;
  }

  /// Non-blocking dequeue; empty optional when the ring is empty.
  [[nodiscard]] std::optional<T> try_pop() {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t count = cell.count.load(std::memory_order_acquire);
      const std::int64_t diff = static_cast<std::int64_t>(count) -
                                static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // cell not yet produced: ring is empty
      } else {
        pos = head_.load(std::memory_order_relaxed);  // lost to a consumer
      }
    }
    Cell& cell = cells_[pos & mask_];
    T* value = std::launder(reinterpret_cast<T*>(&cell.storage));
    std::optional<T> out(std::move(*value));
    value->~T();
    // Mark the cell empty for the *next* lap of producers.
    cell.count.store(pos + mask_ + 1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      wait_cv_.notify_one();
    }
    return out;
  }

  /// Blocking dequeue: returns a value, or an empty optional once `stop` is
  /// true *and* the ring has drained (a stopping queue still hands out every
  /// remaining entry — nothing submitted is ever silently dropped).
  [[nodiscard]] std::optional<T> pop_wait(const std::atomic<bool>& stop) {
    for (;;) {
      if (std::optional<T> v = try_pop()) return v;
      // Register as a sleeper, then re-check *outside* the wait mutex
      // (try_pop itself may take it to notify). A push landing between the
      // re-check and the wait can slip its notify past us — the 50 ms
      // timeout bounds that race instead of a cross-ordering fence argument.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (std::optional<T> v = try_pop()) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        return v;
      }
      if (stop.load(std::memory_order_acquire)) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        return std::nullopt;
      }
      {
        std::unique_lock<std::mutex> lock(wait_mutex_);
        wait_cv_.wait_for(lock, std::chrono::milliseconds(50));
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// Blocking enqueue: retries until the push lands or `stop` turns true
  /// (returns false then, value dropped — only used on teardown paths).
  [[nodiscard]] bool push_wait(T value, const std::atomic<bool>& stop) {
    for (;;) {
      if (try_push(std::move(value))) return true;
      // try_push only moves-from on success, so `value` is still intact.
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (try_push(std::move(value))) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        return true;
      }
      if (stop.load(std::memory_order_acquire)) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        return false;
      }
      {
        std::unique_lock<std::mutex> lock(wait_mutex_);
        wait_cv_.wait_for(lock, std::chrono::milliseconds(50));
      }
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  /// Wake every blocked pop_wait/push_wait so they can observe a freshly set
  /// stop flag. Call after flipping the flag.
  void notify_all() {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    wait_cv_.notify_all();
  }

  ~MpmcQueue() {
    // Destroy whatever is still in flight (teardown after stop).
    while (try_pop()) {
    }
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> count{0};
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  // Head and tail on separate cache lines so producers and consumers do not
  // false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  // Sleep/wake plumbing for the blocking variants only; the lock-free fast
  // path checks the sleeper count with one atomic load.
  std::atomic<std::int64_t> sleepers_{0};
  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
};

}  // namespace emutile
