#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EMUTILE_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EMUTILE_CHECK(cells.size() == header_.size(),
                "row arity " << cells.size() << " != header arity "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace emutile
