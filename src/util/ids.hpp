#pragma once
/// \file ids.hpp
/// Strongly typed integer identifiers.
///
/// CAD data structures index into dense vectors; raw `int` indices invite
/// cross-domain mix-ups (a net id used as a cell id compiles silently).
/// `StrongId<Tag>` keeps the zero-overhead density while making such bugs
/// type errors.

#include <cstdint>
#include <functional>
#include <ostream>

namespace emutile {

/// A type-safe wrapper around a 32-bit index. `Tag` is a phantom type.
template <typename Tag>
class StrongId {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = 0xFFFFFFFFu;

  constexpr StrongId() = default;
  constexpr explicit StrongId(value_type v) : value_(v) {}

  /// Dense index value; valid() must hold.
  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  /// The canonical "no id" value.
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (id.valid()) return os << id.value_;
    return os << "<invalid>";
  }

 private:
  value_type value_ = kInvalid;
};

struct CellTag {};
struct NetTag {};
struct ClbTag {};
struct TileTag {};
struct RrNodeTag {};
struct HierTag {};

using CellId = StrongId<CellTag>;      ///< logic-netlist cell
using NetId = StrongId<NetTag>;        ///< logic-netlist net
using ClbId = StrongId<ClbTag>;        ///< packed CLB / IOB instance
using TileId = StrongId<TileTag>;      ///< physical tile
using RrNodeId = StrongId<RrNodeTag>;  ///< routing-resource graph node
using HierId = StrongId<HierTag>;      ///< hierarchy tree node

}  // namespace emutile

namespace std {
template <typename Tag>
struct hash<emutile::StrongId<Tag>> {
  size_t operator()(emutile::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
