#pragma once
/// \file phase_timer.hpp
/// Wall-clock accumulation over a fixed set of phases.
///
/// A PhaseTimer walks an execution through its phases: begin(p) closes the
/// phase currently running (banking its elapsed wall time) and starts timing
/// phase p; stop() closes the last one. Re-entering a phase accumulates, so
/// loops that bounce between phases just keep calling begin(). The result is
/// a dense per-phase seconds array cheap enough to carry in every session
/// report.
///
/// Wall-clock readings are inherently nondeterministic — consumers that
/// promise byte-identical output (campaign to_csv/to_json) must keep these
/// numbers out of their deterministic emitters and report them separately
/// (timing_csv/timing_json, print_summary, benches).

#include <array>
#include <chrono>
#include <cstddef>

namespace emutile {

template <std::size_t NumPhases>
class PhaseTimer {
 public:
  /// Close the running phase (if any) and start timing `phase`.
  void begin(std::size_t phase) {
    close();
    current_ = phase;
    started_ = Clock::now();
    running_ = phase < NumPhases;
  }

  /// Close the running phase (if any). Safe to call repeatedly.
  void stop() { close(); }

  /// Accumulated wall seconds per phase (phases never begun read 0).
  [[nodiscard]] const std::array<double, NumPhases>& seconds() const {
    return seconds_;
  }

  /// Sum over all phases.
  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (double s : seconds_) sum += s;
    return sum;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void close() {
    if (!running_) return;
    seconds_[current_] +=
        std::chrono::duration<double>(Clock::now() - started_).count();
    running_ = false;
  }

  std::array<double, NumPhases> seconds_{};
  Clock::time_point started_{};
  std::size_t current_ = 0;
  bool running_ = false;
};

}  // namespace emutile
