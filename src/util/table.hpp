#pragma once
/// \file table.hpp
/// ASCII table printer. The benchmark harnesses reproduce the paper's tables
/// and figure series as text; this keeps their formatting uniform.

#include <iosfwd>
#include <string>
#include <vector>

namespace emutile {

/// Column-aligned text table with a header row.
///
/// Usage:
///   Table t({"design", "# CLBs", "area overhead"});
///   t.add_row({"9sym", "56", "0.217"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Render as comma-separated values (for plotting scripts).
  void print_csv(std::ostream& os) const;

  /// Format a double with fixed precision (helper for callers).
  static std::string fmt(double value, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emutile
