#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace emutile {

/// Streaming accumulator: count / mean / min / max / stddev (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Fold another accumulator into this one (Chan et al. parallel
  /// combination), as if both sample streams had been added here. Used to
  /// merge per-shard campaign reports.
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    n_ += other.n_;
    const auto n = static_cast<double>(n_);
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Reconstruct an accumulator from its exact internal state (the values
  /// the accessors report). With round-trip-exact doubles this restores the
  /// accumulator bit-for-bit, so a merge of restored accumulators equals a
  /// merge of the originals — the basis of the shard-report wire format.
  [[nodiscard]] static Accumulator from_parts(std::size_t n, double mean,
                                              double m2, double min,
                                              double max) {
    Accumulator a;
    if (n == 0) return a;
    a.n_ = n;
    a.mean_ = mean;
    a.m2_ = m2;
    a.min_ = min;
    a.max_ = max;
    return a;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double m2() const { return m2_; }  ///< raw Welford moment
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Median of a sample (copies; fine for bench-sized data).
[[nodiscard]] inline double median(std::vector<double> xs) {
  EMUTILE_CHECK(!xs.empty(), "median of empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Arithmetic mean of a sample.
[[nodiscard]] inline double mean(const std::vector<double>& xs) {
  EMUTILE_CHECK(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Percentile of a sample with linear interpolation between closest ranks
/// (numpy's default `linear` / inclusive convention: rank = p/100 * (n-1)).
/// `p` is in [0, 100]; p=50 matches median(). Copies; fine for bench- and
/// campaign-sized data.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  EMUTILE_CHECK(!xs.empty(), "percentile of empty sample");
  EMUTILE_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

/// Geometric mean (all samples must be > 0).
[[nodiscard]] inline double geomean(const std::vector<double>& xs) {
  EMUTILE_CHECK(!xs.empty(), "geomean of empty sample");
  double s = 0.0;
  for (double x : xs) {
    EMUTILE_CHECK(x > 0.0, "geomean requires positive samples");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace emutile
