#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the benchmark harnesses.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace emutile {

/// Streaming accumulator: count / mean / min / max / stddev.
///
/// The internal state is the raw power sums (n, Σx, Σx²), so add() and
/// merge() are plain double additions. Floating-point addition of exactly
/// representable values is exact, so for integral-valued samples below 2^26
/// or so (work-unit counts, suspect counts, iteration counts — everything
/// the deterministic campaign report aggregates) every partial sum is exact
/// and ANY add/merge order yields bit-identical state. That associativity is
/// what lets merged shard reports reproduce the unsharded run byte for byte
/// even when work stealing splits a shard at an arbitrary session boundary.
/// (A Welford/Chan formulation is stabler for wide-spread float samples but
/// rounds differently under sequential add vs pairwise merge, which breaks
/// the byte contract at some split points.)
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Fold another accumulator into this one, as if both sample streams had
  /// been added here. Used to merge per-shard campaign reports; exactly
  /// associative and commutative whenever the sums are exact (see above).
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    n_ += other.n_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Reconstruct an accumulator from its exact internal state (the values
  /// the accessors report). With round-trip-exact doubles this restores the
  /// accumulator bit-for-bit, so a merge of restored accumulators equals a
  /// merge of the originals — the basis of the shard-report wire format.
  [[nodiscard]] static Accumulator from_parts(std::size_t n, double sum,
                                              double sum_sq, double min,
                                              double max) {
    Accumulator a;
    if (n == 0) return a;
    a.n_ = n;
    a.sum_ = sum;
    a.sum_sq_ = sum_sq;
    a.min_ = min;
    a.max_ = max;
    return a;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }       ///< raw Σx
  [[nodiscard]] double sum_sq() const { return sum_sq_; }  ///< raw Σx²
  [[nodiscard]] double mean() const {
    return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    const double n = static_cast<double>(n_);
    // Σ(x-x̄)² = Σx² - (Σx)²/n; clamp the cancellation residue at zero.
    const double m2 = std::max(0.0, sum_sq_ - sum_ * sum_ / n);
    return m2 / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Median of a sample (copies; fine for bench-sized data).
[[nodiscard]] inline double median(std::vector<double> xs) {
  EMUTILE_CHECK(!xs.empty(), "median of empty sample");
  std::sort(xs.begin(), xs.end());
  const std::size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Arithmetic mean of a sample.
[[nodiscard]] inline double mean(const std::vector<double>& xs) {
  EMUTILE_CHECK(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Percentile of a sample with linear interpolation between closest ranks
/// (numpy's default `linear` / inclusive convention: rank = p/100 * (n-1)).
/// `p` is in [0, 100]; p=50 matches median(). Copies; fine for bench- and
/// campaign-sized data.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  EMUTILE_CHECK(!xs.empty(), "percentile of empty sample");
  EMUTILE_CHECK(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]: " << p);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

// ---- interval estimators ---------------------------------------------------
// The campaign layers treat per-scenario aggregates as sample estimates and
// spend replicas where the intervals are widest (see adaptive_driver.hpp), so
// the estimators live here next to the Accumulator they read from.

/// A two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double half_width() const { return 0.5 * (hi - lo); }
};

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.2e-9). `p` must be in (0, 1).
[[nodiscard]] inline double normal_quantile(double p) {
  EMUTILE_CHECK(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1): " << p);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

/// Inverse Student-t CDF with `df` degrees of freedom. Exact for df 1 and 2;
/// Cornish–Fisher expansion off the normal quantile otherwise (error < 1e-3
/// for df >= 3 at the confidence levels interval estimation uses).
[[nodiscard]] inline double student_t_quantile(std::size_t df, double p) {
  EMUTILE_CHECK(df >= 1, "student_t_quantile needs df >= 1");
  EMUTILE_CHECK(p > 0.0 && p < 1.0,
                "student_t_quantile needs p in (0,1): " << p);
  if (df == 1) return std::tan(3.14159265358979323846 * (p - 0.5));
  if (df == 2) return (2.0 * p - 1.0) * std::sqrt(2.0 / (4.0 * p * (1.0 - p)));
  const double z = normal_quantile(p);
  const double z2 = z * z;
  const double v = static_cast<double>(df);
  const double g1 = (z2 + 1.0) * z / 4.0;
  const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
  const double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
  const double g4 =
      ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z /
      92160.0;
  return z + g1 / v + g2 / (v * v) + g3 / (v * v * v) + g4 / (v * v * v * v);
}

/// Wilson score interval for a binomial proportion: `successes` out of
/// `trials` at the given two-sided confidence. Unlike the Wald interval it
/// stays inside [0, 1] and behaves at p-hat 0 or 1 — exactly the regime the
/// campaign detection/correction rates live in. Zero trials means "nothing
/// observed": the interval is the whole of [0, 1] (half-width 0.5, the
/// widest a proportion interval can be), which ranks unvisited scenarios
/// first in adaptive allocation without any infinity special-casing.
[[nodiscard]] inline Interval wilson_interval(std::size_t successes,
                                              std::size_t trials,
                                              double confidence = 0.95) {
  EMUTILE_CHECK(successes <= trials,
                "wilson_interval: " << successes << " successes out of "
                                    << trials << " trials");
  EMUTILE_CHECK(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1): " << confidence);
  if (trials == 0) return Interval{0.0, 1.0};
  const double z = normal_quantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2n = z * z / n;
  const double denom = 1.0 + z2n;
  const double center = (phat + z2n / 2.0) / denom;
  const double hw = z / denom *
                    std::sqrt(phat * (1.0 - phat) / n + z2n / (4.0 * n));
  return Interval{std::max(0.0, center - hw), std::min(1.0, center + hw)};
}

/// Student-t confidence interval for the mean of the sample an Accumulator
/// has seen. Fewer than two samples carry no variance information: the
/// interval is (-inf, +inf).
[[nodiscard]] inline Interval mean_interval(const Accumulator& acc,
                                            double confidence = 0.95) {
  EMUTILE_CHECK(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1): " << confidence);
  if (acc.count() < 2) {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Interval{-inf, inf};
  }
  const double t = student_t_quantile(acc.count() - 1, 0.5 + confidence / 2.0);
  const double hw =
      t * acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
  return Interval{acc.mean() - hw, acc.mean() + hw};
}

/// Geometric mean (all samples must be > 0).
[[nodiscard]] inline double geomean(const std::vector<double>& xs) {
  EMUTILE_CHECK(!xs.empty(), "geomean of empty sample");
  double s = 0.0;
  for (double x : xs) {
    EMUTILE_CHECK(x > 0.0, "geomean requires positive samples");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

}  // namespace emutile
