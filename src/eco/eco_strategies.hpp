#pragma once
/// \file eco_strategies.hpp
/// The ECO strategies the paper compares in Section 6 (Figure 5):
///
///  * tiled_eco        — the paper's contribution (delegates to TilingEngine):
///                       re-place-and-route only the affected tiles.
///  * quick_eco        — Fang/Wu/Yen DAC'97: trace the change through the
///                       hierarchy to the affected *functional blocks* and
///                       re-place-and-route those blocks entirely. With one
///                       block per design (the paper's experimental setup)
///                       this re-implements the whole design.
///  * incremental_eco  — incremental place-and-route: keep the placement,
///                       legalize new logic nearby, low-temperature
///                       refinement over the whole design, then rip-up and
///                       re-route every net touching a moved instance.
///  * full_eco         — re-place-and-route everything from scratch.
///
/// All strategies consume the same EcoChange against the same design state
/// and report PnrEffort, so benches can compare like for like.

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "hier/hierarchy.hpp"

namespace emutile {

struct EcoStrategyResult {
  bool success = false;
  PnrEffort effort;
  std::size_t instances_moved = 0;  ///< placement deltas (incremental only)
};

/// The paper's approach. Thin wrapper over TilingEngine::apply_change.
EcoStrategyResult tiled_eco(TiledDesign& design, const EcoChange& change,
                            const EcoOptions& options);

/// Functional-block granularity re-implementation (Quick_ECO).
EcoStrategyResult quick_eco(TiledDesign& design, const DesignHierarchy& hier,
                            const EcoChange& change, std::uint64_t seed);

/// Incremental place-and-route baseline.
struct IncrementalOptions {
  std::uint64_t seed = 11;
  double refine_effort = 0.35;  ///< fraction of a full anneal's move budget
};
EcoStrategyResult incremental_eco(TiledDesign& design, const EcoChange& change,
                                  const IncrementalOptions& options);

/// Complete re-implementation from scratch.
EcoStrategyResult full_eco(TiledDesign& design, const EcoChange& change,
                           std::uint64_t seed);

/// Script the "standard debugging change" used to compare ECO strategies on
/// identical work (the Figure 5 bench and the campaign baseline
/// measurements): complement one LUT of `design` and graft a two-cell
/// addition (inverter + flip-flop) anchored at it. Mutates the netlist and
/// returns the change record; deterministic for a given design state.
[[nodiscard]] EcoChange scripted_standard_change(TiledDesign& design);

}  // namespace emutile
