#include "eco/eco_strategies.hpp"

#include <unordered_set>

#include "core/flow.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

/// Absorb a change's new cells into the packing and refresh caches.
std::vector<InstId> ingest_change(TiledDesign& design, const EcoChange& change) {
  const std::vector<InstId> new_insts =
      pack_increment(design.packed, design.netlist, change.added_cells);
  design.placement->resize_for(design.packed);
  design.refresh_nets();
  return new_insts;
}

/// Rip and re-route (unconfined) every net with a terminal in `insts`,
/// plus every net without a route tree. Returns router effort.
PnrEffort reroute_touching(TiledDesign& design,
                           const std::unordered_set<std::uint32_t>& insts) {
  PnrEffort effort;
  std::vector<NetTask> tasks;
  for (const PhysNet& pn : design.nets) {
    bool need = !design.routing->has_tree(pn.net);
    if (!need && insts.count(pn.src_inst.value())) need = true;
    if (!need)
      for (InstId s : pn.sink_insts)
        if (insts.count(s.value())) {
          need = true;
          break;
        }
    if (!need) continue;
    design.routing->rip_up(pn.net);
    NetTask t;
    t.net = pn.net;
    t.source = design.rr->opin(design.placement->site_of(pn.src_inst),
                               pn.src_opin);
    for (InstId s : pn.sink_insts)
      t.sinks.push_back(design.rr->sink(design.placement->site_of(s)));
    tasks.push_back(std::move(t));
  }

  Router router(*design.rr);
  RouterParams rp;
  const RouteResult rres = router.route(std::move(tasks), *design.routing, rp);
  effort.nets_routed = rres.nets_routed;
  effort.nodes_expanded = rres.nodes_expanded;
  effort.route_ms = rres.wall_ms;
  if (!rres.success) {
    // Selective re-route boxed in by the untouched nets: rip everything and
    // re-route from scratch (what a real incremental tool escalates to).
    effort += route_all_with_retry(design);
  }
  return effort;
}

}  // namespace

EcoStrategyResult tiled_eco(TiledDesign& design, const EcoChange& change,
                            const EcoOptions& options) {
  const EcoOutcome outcome = TilingEngine::apply_change(design, change, options);
  EcoStrategyResult r;
  r.success = outcome.success;
  r.effort = outcome.effort;
  return r;
}

EcoStrategyResult quick_eco(TiledDesign& design, const DesignHierarchy& hier,
                            const EcoChange& change, std::uint64_t seed) {
  EcoStrategyResult r;
  const std::vector<InstId> new_insts = ingest_change(design, change);

  // Trace the change to functional blocks (the Quick_ECO linkage).
  std::vector<CellId> changed = change.modified_cells;
  changed.insert(changed.end(), change.anchor_cells.begin(),
                 change.anchor_cells.end());
  // New cells belong to the blocks they connect into.
  for (CellId c : change.added_cells) {
    const Cell& cell = design.netlist.cell(c);
    for (NetId in : cell.inputs)
      changed.push_back(design.netlist.net(in).driver);
  }
  const std::vector<HierId> blocks = hier.trace_to_blocks(changed);
  EMUTILE_CHECK(!blocks.empty(), "Quick_ECO: change traces to no block");

  // Movable set: all instances of the affected blocks plus the new logic.
  std::unordered_set<std::uint32_t> movable;
  for (HierId b : blocks)
    for (CellId cell : hier.cells_of(b)) {
      const InstId inst = design.packed.inst_of_cell(cell);
      if (inst.valid()) movable.insert(inst.value());
    }
  for (InstId id : new_insts) movable.insert(id.value());

  PlaceConstraints constraints(design.packed.inst_bound());
  for (InstId id : design.packed.live_insts())
    constraints.set_movable(id, movable.count(id.value()) > 0);

  Placer placer(*design.device, design.packed, design.nets);
  PlacerParams pp;
  pp.seed = seed;
  const PlaceResult pres = placer.place(*design.placement, pp, constraints);
  r.effort.instances_placed = movable.size();
  r.effort.place_ms = pres.wall_ms;

  r.effort += reroute_touching(design, movable);
  r.success = true;
  return r;
}

EcoStrategyResult incremental_eco(TiledDesign& design, const EcoChange& change,
                                  const IncrementalOptions& options) {
  EcoStrategyResult r;
  const std::vector<InstId> new_insts = ingest_change(design, change);

  // Snapshot for the moved-instance delta.
  std::vector<SiteIndex> before(design.packed.inst_bound(), kInvalidSite);
  for (InstId id : design.packed.live_insts())
    if (design.placement->is_placed(id))
      before[id.value()] = design.placement->site_of(id);

  // Low-temperature refinement across the whole design; the new logic is
  // seeded next to its net neighbors first.
  PlaceConstraints constraints(design.packed.inst_bound());
  Placer placer(*design.device, design.packed, design.nets);
  PlacerParams pp;
  pp.seed = options.seed;
  pp.incremental = true;
  pp.effort = options.refine_effort;
  const PlaceResult pres = placer.place(*design.placement, pp, constraints);
  r.effort.place_ms = pres.wall_ms;

  // Every instance that moved drags its nets through re-route.
  std::unordered_set<std::uint32_t> touched;
  for (InstId id : design.packed.live_insts()) {
    const SiteIndex now = design.placement->site_of(id);
    if (id.value() >= before.size() || before[id.value()] != now)
      touched.insert(id.value());
  }
  for (CellId c : change.modified_cells) {
    const InstId inst = design.packed.inst_of_cell(c);
    if (inst.valid()) touched.insert(inst.value());
  }
  r.instances_moved = touched.size();
  r.effort.instances_placed = touched.size();

  r.effort += reroute_touching(design, touched);
  r.success = true;
  return r;
}

EcoStrategyResult full_eco(TiledDesign& design, const EcoChange& change,
                           std::uint64_t seed) {
  EcoStrategyResult r;
  ingest_change(design, change);
  r.effort = replace_and_reroute_all(design, seed);
  r.success = true;
  return r;
}

EcoChange scripted_standard_change(TiledDesign& d) {
  CellId victim;
  for (CellId id : d.netlist.live_cells())
    if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
  d.netlist.set_lut_function(victim,
                             d.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  const CellId n1 = d.netlist.add_lut("fix1", TruthTable::inverter(),
                                      {d.netlist.cell_output(victim)});
  const CellId n2 = d.netlist.add_dff("fix2", d.netlist.cell_output(n1));
  change.added_cells = {n1, n2};
  change.anchor_cells = {victim};
  return change;
}

}  // namespace emutile
