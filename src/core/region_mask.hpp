#pragma once
/// \file region_mask.hpp
/// RR-graph masks realizing tile lock semantics (paper Sections 3.2, 5.2).
///
/// Given the set of unlocked ("affected") tiles:
///  * `allowed` — nodes re-routing may use: pins/sinks of CLB sites inside
///    affected tiles, channel segments with at least one adjacent affected
///    cell (boundary channels included: free tracks in an interface channel
///    are usable without disturbing the locked side), and the pins of IOB
///    sites immediately adjacent to an affected edge tile.
///  * `rip` — existing routing to remove when tiles are cleared: pins/sinks
///    of affected sites plus channel segments BOTH of whose adjacent cells
///    are affected. A channel between an affected and a locked tile is the
///    locked interface: crossing nets keep their wire there (the fixed
///    crossing point), which is exactly how "lock tile interfaces" works.
///    When two adjacent tiles are both affected, the channel between them is
///    ripped — the interface between two unlocked tiles dissolves (5.2).

#include <vector>

#include "arch/rr_graph.hpp"
#include "core/tile_grid.hpp"

namespace emutile {

struct RegionMasks {
  std::vector<std::uint8_t> allowed;
  std::vector<std::uint8_t> rip;
};

/// Build the masks for the given affected-tile set (dense bool by TileId).
[[nodiscard]] RegionMasks build_region_masks(
    const RrGraph& rr, const TileGrid& grid,
    const std::vector<std::uint8_t>& tile_affected);

}  // namespace emutile
