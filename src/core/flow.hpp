#pragma once
/// \file flow.hpp
/// End-to-end implementation flows: synthesize -> pack -> place -> route.
///
/// build_flat produces the conventional (untiled) implementation used as the
/// Table 1 baseline and as the substrate the full-re-P&R / Quick_ECO
/// baselines run on. The device is sized to the design plus `slack`
/// (slack = 0 for the minimal baseline device).

#include <cstdint>

#include "core/tiled_design.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

struct FlowParams {
  std::uint64_t seed = 1;
  double placer_effort = 1.0;
  double slack = 0.0;              ///< extra CLB site fraction
  int tracks_per_channel = 12;
  int max_track_retries = 3;       ///< +4 tracks per routing retry
  double iob_margin = 1.25;        ///< perimeter sizing headroom
};

/// Implement a netlist from scratch. The netlist must already be synthesized
/// (4-LUT mapped); throws CheckError on unroutable designs after retries.
[[nodiscard]] TiledDesign build_flat(Netlist netlist, const FlowParams& params);

/// Re-place and re-route an existing design from scratch on its current
/// device (keeps netlist/packing; used by the Quick_ECO and full-re-P&R
/// baselines). Returns the effort spent.
PnrEffort replace_and_reroute_all(TiledDesign& design, std::uint64_t seed,
                                  double placer_effort = 1.0);

/// Route (from scratch) every physical net of `design`; on congestion
/// failure widens channels (rebuilding the RR graph) up to
/// `max_track_retries` times. Returns effort.
PnrEffort route_all_with_retry(TiledDesign& design, int max_track_retries = 3);

}  // namespace emutile
