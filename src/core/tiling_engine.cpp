#include "core/tiling_engine.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/flow.hpp"
#include "core/region_mask.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

TiledDesign TilingEngine::build(Netlist netlist, const TilingParams& params) {
  EMUTILE_CHECK(params.target_overhead >= 0.05,
                "overhead below 5% leaves no room for logic introduction "
                "(paper: 10% is the practical floor)");

  // Steps 1-2 happened upstream (synthesis/mapping). Implement with slack.
  FlowParams fp;
  fp.seed = params.seed;
  fp.placer_effort = params.placer_effort;
  fp.slack = params.target_overhead;
  fp.tracks_per_channel = params.tracks_per_channel;
  TiledDesign design = build_flat(std::move(netlist), fp);

  // Step 6: draw tile boundaries.
  TileGrid grid = TileGrid::make(design.device->width(),
                                 design.device->height(), params.num_tiles);

  // Balance slack across tiles: every tile's occupancy is capped so that it
  // retains roughly its share of the reserve ("a user-controlled parameter",
  // step 5). The global placement already spread instances; we only need to
  // shed overflow from tiles above their cap into the nearest tiles with
  // room, then re-anneal within tile regions.
  const int num_tiles = grid.num_tiles();
  const double keep_free =
      params.target_overhead / (1.0 + params.target_overhead);
  std::vector<int> cap(static_cast<std::size_t>(num_tiles));
  int cap_total = 0;
  for (int t = 0; t < num_tiles; ++t) {
    const int area = grid.capacity(TileId{static_cast<std::uint32_t>(t)});
    cap[static_cast<std::size_t>(t)] = std::max(
        1, static_cast<int>(std::floor(area * (1.0 - keep_free))));
    cap_total += cap[static_cast<std::size_t>(t)];
  }
  const int clbs = static_cast<int>(design.packed.num_clbs());
  for (int t = 0; cap_total < clbs; t = (t + 1) % num_tiles) {
    // Top up rounding losses, but never beyond a tile's physical area
    // (fine grids have 2-3 site tiles where the cap formula rounds to 0).
    const int area = grid.capacity(TileId{static_cast<std::uint32_t>(t)});
    if (cap[static_cast<std::size_t>(t)] >= area) continue;
    ++cap[static_cast<std::size_t>(t)];
    ++cap_total;
  }

  // Current per-tile population.
  std::vector<std::vector<InstId>> members(
      static_cast<std::size_t>(num_tiles));
  for (InstId id : design.packed.live_insts()) {
    if (!design.packed.inst(id).is_clb()) continue;
    auto [x, y] = design.device->clb_xy(design.placement->site_of(id));
    members[grid.tile_at(x, y).value()].push_back(id);
  }

  // Shed overflow to nearest tiles with headroom (BFS over tile adjacency).
  std::vector<int> assignment(design.packed.inst_bound(), -1);
  std::vector<int> load(static_cast<std::size_t>(num_tiles), 0);
  for (int t = 0; t < num_tiles; ++t)
    for (InstId id : members[static_cast<std::size_t>(t)])
      assignment[id.value()] = t;
  for (int t = 0; t < num_tiles; ++t)
    load[static_cast<std::size_t>(t)] =
        static_cast<int>(members[static_cast<std::size_t>(t)].size());

  for (int t = 0; t < num_tiles; ++t) {
    while (load[static_cast<std::size_t>(t)] > cap[static_cast<std::size_t>(t)]) {
      // BFS for the nearest tile with room.
      std::vector<int> dist(static_cast<std::size_t>(num_tiles), -1);
      std::vector<int> queue{t};
      dist[static_cast<std::size_t>(t)] = 0;
      int target = -1;
      for (std::size_t head = 0; head < queue.size() && target < 0; ++head) {
        for (TileId nb : grid.neighbors(
                 TileId{static_cast<std::uint32_t>(queue[head])})) {
          const int n = static_cast<int>(nb.value());
          if (dist[static_cast<std::size_t>(n)] >= 0) continue;
          dist[static_cast<std::size_t>(n)] =
              dist[static_cast<std::size_t>(queue[head])] + 1;
          queue.push_back(n);
          if (load[static_cast<std::size_t>(n)] <
              cap[static_cast<std::size_t>(n)]) {
            target = n;
            break;
          }
        }
      }
      EMUTILE_CHECK(target >= 0, "cannot balance slack across tiles");
      // Move the instance closest to the target tile.
      const Rect& tr = grid.rect(TileId{static_cast<std::uint32_t>(target)});
      const double cx = 0.5 * (tr.x0 + tr.x1), cy = 0.5 * (tr.y0 + tr.y1);
      auto& pool = members[static_cast<std::size_t>(t)];
      std::size_t best = 0;
      double best_d = 1e300;
      for (std::size_t k = 0; k < pool.size(); ++k) {
        auto [px, py] = design.placement->position(pool[k]);
        const double d = std::abs(px - cx) + std::abs(py - cy);
        if (d < best_d) {
          best_d = d;
          best = k;
        }
      }
      const InstId moved = pool[best];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
      members[static_cast<std::size_t>(target)].push_back(moved);
      assignment[moved.value()] = target;
      --load[static_cast<std::size_t>(t)];
      ++load[static_cast<std::size_t>(target)];
    }
  }

  // Re-place within tile regions (warm start: only re-seed instances whose
  // assigned tile changed, then low-temperature refinement).
  PlaceConstraints constraints(design.packed.inst_bound());
  std::vector<int> region_of_tile(static_cast<std::size_t>(num_tiles), -1);
  for (int t = 0; t < num_tiles; ++t)
    region_of_tile[static_cast<std::size_t>(t)] = constraints.add_region(
        {grid.rect(TileId{static_cast<std::uint32_t>(t)})});
  for (InstId id : design.packed.live_insts()) {
    if (!design.packed.inst(id).is_clb()) continue;
    const int t = assignment[id.value()];
    EMUTILE_ASSERT(t >= 0, "CLB instance without tile assignment");
    constraints.assign_region(id, region_of_tile[static_cast<std::size_t>(t)]);
    auto [x, y] = design.device->clb_xy(design.placement->site_of(id));
    if (grid.tile_at(x, y).value() != static_cast<std::uint32_t>(t))
      design.placement->clear(id);
  }

  Placer placer(*design.device, design.packed, design.nets);
  PlacerParams pp;
  pp.seed = params.seed ^ 0x7175ULL;
  pp.effort = params.placer_effort;
  pp.incremental = true;  // refine from the global placement
  const PlaceResult pres = placer.place(*design.placement, pp, constraints);
  design.build_effort.place_ms += pres.wall_ms;

  // Add routing headroom: debugging ECOs re-route against locked boundary
  // stubs, which needs more freedom than the unconstrained initial route.
  if (params.route_headroom > 0) {
    DeviceParams dp = design.device->params();
    dp.tracks_per_channel += params.route_headroom;
    design.device = std::make_unique<Device>(dp);
    design.rr = std::make_unique<RrGraph>(*design.device);
    design.routing = std::make_unique<Routing>(*design.rr);
    design.placement->rebind(*design.device, design.packed);
  }

  // Step 20 equivalent for the initial build: full routing on the tiled
  // placement. (The global route from build_flat is discarded.)
  design.build_effort += route_all_with_retry(design);

  // Steps 6-7: record grid, lock everything.
  design.tiles = std::move(grid);
  design.locked.assign(static_cast<std::size_t>(num_tiles), 1);
  design.slack_overhead = params.target_overhead;
  return design;
}

bool TilingEngine::lut_reconfig_equivalent(const Netlist& a,
                                           const Netlist& b) {
  if (a.cell_bound() != b.cell_bound() || a.net_bound() != b.net_bound())
    return false;
  for (std::size_t i = 0; i < a.cell_bound(); ++i) {
    const CellId id{static_cast<std::uint32_t>(i)};
    const Cell& ca = a.cell(id);
    const Cell& cb = b.cell(id);
    if (ca.alive != cb.alive) return false;
    if (!ca.alive) continue;
    if (ca.kind != cb.kind || ca.inputs != cb.inputs ||
        ca.output != cb.output)
      return false;
  }
  return true;
}

TiledDesign TilingEngine::rebase(const TiledDesign& baseline,
                                 Netlist netlist) {
  EMUTILE_CHECK(lut_reconfig_equivalent(baseline.netlist, netlist),
                "rebase needs a LUT-reconfiguration-equivalent netlist "
                "(connectivity changes need a cold build or a tiled ECO)");
  TiledDesign out = baseline.clone();
  out.netlist = std::move(netlist);
  return out;
}

void TilingEngine::retile(TiledDesign& design, int num_tiles) {
  EMUTILE_CHECK(design.device != nullptr, "retile needs a built design");
  TileGrid grid = TileGrid::make(design.device->width(),
                                 design.device->height(), num_tiles);
  const int tiles = grid.num_tiles();
  design.tiles = std::move(grid);
  design.locked.assign(static_cast<std::size_t>(tiles), 1);
}

std::vector<TileId> TilingEngine::expand_for_capacity(
    const TiledDesign& design, std::vector<TileId> seeds, int clbs_needed) {
  EMUTILE_CHECK(design.tiles.has_value(), "design is not tiled");
  const TileGrid& grid = *design.tiles;
  std::vector<std::uint8_t> in_set(
      static_cast<std::size_t>(grid.num_tiles()), 0);
  std::vector<TileId> affected;
  int free_total = 0;
  auto add_tile = [&](TileId t) {
    if (in_set[t.value()]) return;
    in_set[t.value()] = 1;
    affected.push_back(t);
    free_total += design.tile_free(t);
  };
  EMUTILE_CHECK(!seeds.empty(), "affected-tile expansion needs a seed");
  for (TileId s : seeds) add_tile(s);

  // Absorb neighbors (paper 4.2): repeatedly take the frontier tile with the
  // most free sites until the request fits.
  while (free_total < clbs_needed) {
    TileId best;
    int best_free = -1;
    for (TileId t : affected)
      for (TileId nb : grid.neighbors(t)) {
        if (in_set[nb.value()]) continue;
        const int f = design.tile_free(nb);
        if (f > best_free) {
          best_free = f;
          best = nb;
        }
      }
    EMUTILE_CHECK(best.valid(), "design is full: cannot place "
                                    << clbs_needed << " new CLBs ("
                                    << free_total << " sites free)");
    add_tile(best);
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

namespace {

/// Collect the seed tiles of a change: the tiles holding the anchors, the
/// modified cells, and any placed instance already connected to an added
/// cell (paper step 16: test-point locations).
std::vector<TileId> seed_tiles(const TiledDesign& design,
                               const EcoChange& change) {
  std::unordered_set<std::uint32_t> tiles;
  auto add_cell = [&](CellId cell) {
    const InstId inst = design.packed.inst_of_cell(cell);
    if (!inst.valid() || !design.packed.inst(inst).is_clb()) return;
    if (!design.placement->is_placed(inst)) return;
    auto [x, y] =
        design.device->clb_xy(design.placement->site_of(inst));
    tiles.insert(design.tiles->tile_at(x, y).value());
  };
  for (CellId c : change.anchor_cells) add_cell(c);
  for (CellId c : change.modified_cells) add_cell(c);
  for (CellId c : change.added_cells) {
    // Neighbors of added logic through its nets.
    const Cell& cell = design.netlist.cell(c);
    for (NetId in : cell.inputs) add_cell(design.netlist.net(in).driver);
    if (cell.output.valid())
      for (const PinRef& pin : design.netlist.net(cell.output).sinks)
        add_cell(pin.cell);
  }
  std::vector<TileId> out;
  out.reserve(tiles.size());
  for (std::uint32_t t : tiles) out.push_back(TileId{t});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

EcoOutcome TilingEngine::apply_change(TiledDesign& design,
                                      const EcoChange& change,
                                      const EcoOptions& options) {
  EMUTILE_CHECK(design.tiles.has_value(), "design is not tiled");
  const TileGrid& grid = *design.tiles;
  EcoOutcome outcome;

  // Step: pack new cells into fresh CLBs (consuming tile slack).
  const std::vector<InstId> new_insts =
      pack_increment(design.packed, design.netlist, change.added_cells);
  design.placement->resize_for(design.packed);
  design.refresh_nets();

  // Step 17: identify affected tiles (seeds + capacity expansion).
  std::vector<TileId> seeds = seed_tiles(design, change);
  if (seeds.empty() && !new_insts.empty())
    seeds.push_back(TileId{0});  // free-standing logic: arbitrary seed
  EMUTILE_CHECK(!seeds.empty(), "change with no anchors and no additions");
  std::vector<TileId> affected = expand_for_capacity(
      design, seeds, static_cast<int>(new_insts.size()));

  // Original kept-forest per rerouted net, preserved across region retries.
  std::unordered_map<std::uint32_t, RouteForest> forests;
  std::unordered_set<std::uint32_t> task_nets;

  for (int attempt = 0; ; ++attempt) {
    std::vector<std::uint8_t> tile_affected(
        static_cast<std::size_t>(grid.num_tiles()), 0);
    for (TileId t : affected) tile_affected[t.value()] = 1;
    const RegionMasks masks = build_region_masks(*design.rr, grid,
                                                 tile_affected);

    // --- step 17 (cont.): clear the affected tiles ---
    // Rip routing: every net whose tree enters the rip region, plus every
    // net with a terminal on an affected or new instance.
    std::unordered_set<std::uint32_t> affected_insts;
    for (TileId t : affected)
      for (InstId id : design.insts_in_tile(t))
        affected_insts.insert(id.value());
    for (InstId id : new_insts) affected_insts.insert(id.value());

    for (const PhysNet& pn : design.nets) {
      bool need = task_nets.count(pn.net.value()) > 0;
      if (!need) {
        if (affected_insts.count(pn.src_inst.value())) need = true;
        for (InstId s : pn.sink_insts)
          if (affected_insts.count(s.value())) need = true;
      }
      if (!need && design.routing->has_tree(pn.net)) {
        for (RrNodeId n : design.routing->tree(pn.net).nodes)
          if (masks.rip[n.value()]) {
            need = true;
            break;
          }
      }
      if (!need) continue;
      task_nets.insert(pn.net.value());
      // Rip (or re-rip after a failed attempt) against the current mask.
      // The source OPIN may be stale if the source instance moves; partial
      // rip only needs it to label the surviving source component, and a
      // moved source's old OPIN is always inside the rip region, so any
      // valid node id works for the comparison.
      RrNodeId src_hint;
      if (design.placement->is_placed(pn.src_inst))
        src_hint = design.rr->opin(design.placement->site_of(pn.src_inst),
                                   pn.src_opin);
      if (design.routing->has_tree(pn.net)) {
        RouteForest f =
            design.routing->rip_up_partial(pn.net, masks.rip, src_hint);
        // Prune orphan groups that carry no sink: dead stubs left by sinks
        // that moved into the region. Their wires are freed.
        if (f.num_orphan_groups > 0) {
          std::vector<std::uint8_t> has_sink(
              static_cast<std::size_t>(f.num_orphan_groups) + 1, 0);
          for (std::size_t i = 0; i < f.nodes.size(); ++i)
            if (design.rr->node(f.nodes[i]).type == RrType::kSink)
              has_sink[static_cast<std::size_t>(f.group[i])] = 1;
          RouteForest pruned;
          std::vector<std::int32_t> remap(f.nodes.size(), -1);
          std::vector<std::int32_t> group_remap(
              static_cast<std::size_t>(f.num_orphan_groups) + 1, -1);
          group_remap[0] = 0;
          for (std::size_t i = 0; i < f.nodes.size(); ++i) {
            const auto g = static_cast<std::size_t>(f.group[i]);
            if (g != 0 && !has_sink[g]) continue;
            if (g != 0 && group_remap[g] < 0)
              group_remap[g] = ++pruned.num_orphan_groups;
            remap[i] = static_cast<std::int32_t>(pruned.nodes.size());
            pruned.nodes.push_back(f.nodes[i]);
            pruned.parent.push_back(
                f.parent[i] < 0
                    ? -1
                    : remap[static_cast<std::size_t>(f.parent[i])]);
            pruned.group.push_back(group_remap[g]);
          }
          f = std::move(pruned);
        }
        forests[pn.net.value()] = std::move(f);
      } else if (!forests.count(pn.net.value())) {
        forests[pn.net.value()] = RouteForest{};
      }
    }

    // Clear placement of affected instances.
    for (std::uint32_t iv : affected_insts) {
      const InstId id{iv};
      if (design.placement->is_placed(id)) design.placement->clear(id);
    }

    // --- step 20a: re-place within the affected region ---
    PlaceConstraints constraints(design.packed.inst_bound());
    std::vector<Rect> rects;
    rects.reserve(affected.size());
    for (TileId t : affected) rects.push_back(grid.rect(t));
    const int region = constraints.add_region(std::move(rects));
    for (InstId id : design.packed.live_insts()) {
      const bool mov = affected_insts.count(id.value()) > 0;
      constraints.set_movable(id, mov);
      if (mov) constraints.assign_region(id, region);
    }

    Placer placer(*design.device, design.packed, design.nets);
    PlacerParams pp;
    pp.seed = options.seed + static_cast<std::uint64_t>(attempt) * 0x9E37ULL;
    pp.effort = options.placer_effort;
    const PlaceResult pres = placer.place(*design.placement, pp, constraints);
    outcome.effort.instances_placed += affected_insts.size();
    outcome.effort.place_ms += pres.wall_ms;

    // --- step 20b: re-route the affected nets against locked interfaces ---
    std::vector<NetTask> tasks;
    std::unordered_map<std::uint32_t, const PhysNet*> net_by_id;
    for (const PhysNet& pn : design.nets) net_by_id[pn.net.value()] = &pn;
    for (std::uint32_t nv : task_nets) {
      auto it = net_by_id.find(nv);
      if (it == net_by_id.end()) continue;  // net vanished from phys list
      const PhysNet& pn = *it->second;
      NetTask t;
      t.net = pn.net;
      t.source = design.rr->opin(design.placement->site_of(pn.src_inst),
                                 pn.src_opin);
      for (InstId s : pn.sink_insts)
        t.sinks.push_back(design.rr->sink(design.placement->site_of(s)));
      t.kept = forests.at(nv);
      tasks.push_back(std::move(t));
    }

    Router router(*design.rr);
    RouterParams rp;
    rp.allowed_mask = &masks.allowed;
    const RouteResult rres =
        router.route(std::move(tasks), *design.routing, rp);
    outcome.effort.nets_routed += rres.nets_routed;
    outcome.effort.nodes_expanded += rres.nodes_expanded;
    outcome.effort.route_ms += rres.wall_ms;

    if (rres.success) {
      outcome.success = true;
      outcome.affected = affected;
      outcome.region_expansions = attempt;
      return outcome;
    }

    // Step: not enough routing freedom — absorb a ring of neighbors and
    // retry (paper 4.2: neighboring tiles contribute resources). When the
    // region is already the whole device (or expansions are exhausted),
    // fall back to a full re-route — the paper's bound that tiled effort
    // never exceeds the non-tiled approach.
    const bool whole_device =
        static_cast<int>(affected.size()) == grid.num_tiles();
    if (whole_device || attempt >= options.max_region_expansions) {
      EMUTILE_INFO("ECO falling back to full re-route");
      outcome.effort += route_all_with_retry(design);
      outcome.success = true;
      outcome.affected = affected;
      outcome.region_expansions = attempt + 1;
      return outcome;
    }
    std::unordered_set<std::uint32_t> grown;
    for (TileId t : affected) {
      grown.insert(t.value());
      for (TileId nb : grid.neighbors(t)) grown.insert(nb.value());
    }
    affected.clear();
    for (std::uint32_t t : grown) affected.push_back(TileId{t});
    std::sort(affected.begin(), affected.end());
    EMUTILE_INFO("ECO region expanded to " << affected.size() << " tiles");
  }
}

}  // namespace emutile
