#include "core/flow.hpp"

#include <cmath>

#include "place/placer.hpp"
#include "route/router.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

PnrEffort route_all_with_retry(TiledDesign& design, int max_track_retries) {
  PnrEffort effort;
  for (int attempt = 0; ; ++attempt) {
    Router router(*design.rr);
    auto tasks = make_route_tasks(*design.rr, design.packed, *design.placement,
                                  design.nets);
    // From-scratch: drop any existing trees first.
    for (const PhysNet& n : design.nets) design.routing->rip_up(n.net);
    RouterParams rp;
    const RouteResult rr = router.route(std::move(tasks), *design.routing, rp);
    effort.nets_routed += rr.nets_routed;
    effort.nodes_expanded += rr.nodes_expanded;
    effort.route_ms += rr.wall_ms;
    if (rr.success) return effort;

    EMUTILE_CHECK(attempt < max_track_retries,
                  "unroutable with " << design.device->params().tracks_per_channel
                                     << " tracks per channel");
    DeviceParams dp = design.device->params();
    dp.tracks_per_channel += 4;
    EMUTILE_INFO("routing failed; widening channels to "
                 << dp.tracks_per_channel << " tracks");
    design.device = std::make_unique<Device>(dp);
    design.rr = std::make_unique<RrGraph>(*design.device);
    design.routing = std::make_unique<Routing>(*design.rr);
    design.placement->rebind(*design.device, design.packed);
  }
}

TiledDesign build_flat(Netlist netlist, const FlowParams& params) {
  TiledDesign design;
  design.netlist = std::move(netlist);
  design.packed = pack(design.netlist);

  const int clbs = static_cast<int>(design.packed.num_clbs());
  const int iobs = static_cast<int>(design.packed.num_iobs());
  EMUTILE_CHECK(clbs > 0, "design has no logic");
  const int sites =
      static_cast<int>(std::ceil(clbs * (1.0 + params.slack)));
  const DeviceParams dp = Device::size_for(
      sites, static_cast<int>(std::ceil(iobs * params.iob_margin)),
      params.tracks_per_channel);
  design.device = std::make_unique<Device>(dp);
  design.rr = std::make_unique<RrGraph>(*design.device);
  design.placement = std::make_unique<Placement>(*design.device, design.packed);
  design.routing = std::make_unique<Routing>(*design.rr);
  design.refresh_nets();

  Placer placer(*design.device, design.packed, design.nets);
  PlacerParams pp;
  pp.seed = params.seed;
  pp.effort = params.placer_effort;
  const PlaceResult place_res = placer.place(*design.placement, pp);
  design.build_effort.instances_placed = design.packed.live_insts().size();
  design.build_effort.place_ms = place_res.wall_ms;

  design.build_effort += route_all_with_retry(design, params.max_track_retries);
  design.slack_overhead = params.slack;
  return design;
}

PnrEffort replace_and_reroute_all(TiledDesign& design, std::uint64_t seed,
                                  double placer_effort) {
  PnrEffort effort;
  // Rip all routing.
  for (const PhysNet& n : design.nets) design.routing->rip_up(n.net);

  Placer placer(*design.device, design.packed, design.nets);
  PlacerParams pp;
  pp.seed = seed;
  pp.effort = placer_effort;
  const PlaceResult place_res = placer.place(*design.placement, pp);
  effort.instances_placed = design.packed.live_insts().size();
  effort.place_ms = place_res.wall_ms;

  effort += route_all_with_retry(design);
  return effort;
}

}  // namespace emutile
