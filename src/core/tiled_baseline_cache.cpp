#include "core/tiled_baseline_cache.hpp"

#include "obs/metrics.hpp"

namespace emutile {

std::shared_ptr<const TiledDesign> TiledBaselineCache::get_or_build(
    const std::string& key, const Builder& build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    entry = slot;
    if (entry->design) {
      ++hits_;
      entry->last_used = ++tick_;
      MetricsRegistry::global().counter("baseline_cache.hits").add();
      return entry->design;
    }
  }
  // Build outside the cache mutex so other keys proceed; one builder per
  // key. Losers of the build race find the design already set.
  std::lock_guard<std::mutex> build_lock(entry->build_mutex);
  if (!entry->design) {
    auto built = std::make_shared<const TiledDesign>(build());
    MetricsRegistry::global().counter("baseline_cache.misses").add();
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    entry->design = std::move(built);
    entry->last_used = ++tick_;
    evict_locked();
  } else {
    MetricsRegistry::global().counter("baseline_cache.hits").add();
    std::lock_guard<std::mutex> lock(mutex_);
    ++hits_;
    entry->last_used = ++tick_;
  }
  return entry->design;
}

void TiledBaselineCache::evict_locked() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->design) continue;  // still building: not evictable
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used)
        victim = it;
    }
    if (victim == entries_.end()) return;  // everything is mid-build
    entries_.erase(victim);
    ++evictions_;
    MetricsRegistry::global().counter("baseline_cache.evictions").add();
  }
}

void TiledBaselineCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

std::size_t TiledBaselineCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t TiledBaselineCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t TiledBaselineCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t TiledBaselineCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace emutile
