#include "core/tile_grid.hpp"

#include <cmath>

#include "util/check.hpp"

namespace emutile {

namespace {
std::vector<int> make_cuts(int extent, int pieces) {
  std::vector<int> cuts(static_cast<std::size_t>(pieces) + 1);
  for (int i = 0; i <= pieces; ++i)
    cuts[static_cast<std::size_t>(i)] =
        static_cast<int>(std::llround(static_cast<double>(extent) * i / pieces));
  return cuts;
}
}  // namespace

TileGrid::TileGrid(int grid_w, int grid_h, int tiles_x, int tiles_y)
    : grid_w_(grid_w), grid_h_(grid_h), tiles_x_(tiles_x), tiles_y_(tiles_y) {
  EMUTILE_CHECK(grid_w >= 1 && grid_h >= 1, "empty grid");
  EMUTILE_CHECK(tiles_x >= 1 && tiles_y >= 1, "need at least one tile");
  EMUTILE_CHECK(tiles_x <= grid_w && tiles_y <= grid_h,
                "more tiles than grid rows/columns ("
                    << tiles_x << 'x' << tiles_y << " tiles on " << grid_w
                    << 'x' << grid_h << ')');
  x_cuts_ = make_cuts(grid_w, tiles_x);
  y_cuts_ = make_cuts(grid_h, tiles_y);

  rects_.reserve(static_cast<std::size_t>(num_tiles()));
  for (int ty = 0; ty < tiles_y; ++ty)
    for (int tx = 0; tx < tiles_x; ++tx)
      rects_.push_back(Rect{x_cuts_[static_cast<std::size_t>(tx)],
                            y_cuts_[static_cast<std::size_t>(ty)],
                            x_cuts_[static_cast<std::size_t>(tx) + 1],
                            y_cuts_[static_cast<std::size_t>(ty) + 1]});

  tile_of_x_.resize(static_cast<std::size_t>(grid_w));
  for (int tx = 0; tx < tiles_x; ++tx)
    for (int x = x_cuts_[static_cast<std::size_t>(tx)];
         x < x_cuts_[static_cast<std::size_t>(tx) + 1]; ++x)
      tile_of_x_[static_cast<std::size_t>(x)] = static_cast<std::int16_t>(tx);
  tile_of_y_.resize(static_cast<std::size_t>(grid_h));
  for (int ty = 0; ty < tiles_y; ++ty)
    for (int y = y_cuts_[static_cast<std::size_t>(ty)];
         y < y_cuts_[static_cast<std::size_t>(ty) + 1]; ++y)
      tile_of_y_[static_cast<std::size_t>(y)] = static_cast<std::int16_t>(ty);
}

TileGrid TileGrid::make(int grid_w, int grid_h, int num_tiles) {
  EMUTILE_CHECK(num_tiles >= 1, "need at least one tile");
  num_tiles = std::min(num_tiles, grid_w * grid_h);
  // Search factorizations near sqrt for the best aspect-ratio match while
  // hitting at least the requested count.
  int best_tx = 1, best_ty = num_tiles;
  double best_score = 1e300;
  for (int tx = 1; tx <= std::min(grid_w, num_tiles); ++tx) {
    const int ty = std::min(
        grid_h, (num_tiles + tx - 1) / tx);
    if (tx * ty < num_tiles) continue;
    // Prefer tile aspect close to 1 and count close to requested.
    const double tile_w = static_cast<double>(grid_w) / tx;
    const double tile_h = static_cast<double>(grid_h) / ty;
    const double aspect =
        tile_w > tile_h ? tile_w / tile_h : tile_h / tile_w;
    const double count_excess = static_cast<double>(tx * ty - num_tiles);
    const double score = aspect + 0.25 * count_excess;
    if (score < best_score) {
      best_score = score;
      best_tx = tx;
      best_ty = ty;
    }
  }
  return TileGrid(grid_w, grid_h, best_tx, best_ty);
}

TileId TileGrid::tile_at(int x, int y) const {
  EMUTILE_CHECK(x >= 0 && x < grid_w_ && y >= 0 && y < grid_h_,
                "tile_at out of grid");
  return tile_index(tile_of_x_[static_cast<std::size_t>(x)],
                    tile_of_y_[static_cast<std::size_t>(y)]);
}

const Rect& TileGrid::rect(TileId tile) const {
  EMUTILE_CHECK(tile.valid() && tile.value() < rects_.size(), "bad tile id");
  return rects_[tile.value()];
}

std::vector<TileId> TileGrid::neighbors(TileId tile) const {
  EMUTILE_CHECK(tile.valid() && tile.value() < rects_.size(), "bad tile id");
  const int tx = static_cast<int>(tile.value()) % tiles_x_;
  const int ty = static_cast<int>(tile.value()) / tiles_x_;
  std::vector<TileId> out;
  if (tx > 0) out.push_back(tile_index(tx - 1, ty));
  if (tx + 1 < tiles_x_) out.push_back(tile_index(tx + 1, ty));
  if (ty > 0) out.push_back(tile_index(tx, ty - 1));
  if (ty + 1 < tiles_y_) out.push_back(tile_index(tx, ty + 1));
  return out;
}

bool TileGrid::adjacent(TileId a, TileId b) const {
  for (TileId n : neighbors(a))
    if (n == b) return true;
  return false;
}

}  // namespace emutile
