#include "core/tiled_design.hpp"

#include <sstream>

#include "util/check.hpp"

namespace emutile {

std::string PnrEffort::to_string() const {
  std::ostringstream os;
  os << instances_placed << " instances placed, " << nets_routed
     << " nets routed, " << nodes_expanded << " expansions, "
     << place_ms << " ms place + " << route_ms << " ms route";
  return os.str();
}

std::vector<InstId> TiledDesign::insts_in_tile(TileId tile) const {
  EMUTILE_CHECK(tiles.has_value(), "design is not tiled");
  const Rect& r = tiles->rect(tile);
  std::vector<InstId> out;
  for (int y = r.y0; y < r.y1; ++y)
    for (int x = r.x0; x < r.x1; ++x) {
      const InstId inst = placement->inst_at(device->clb_site(x, y));
      if (inst.valid()) out.push_back(inst);
    }
  return out;
}

int TiledDesign::tile_occupancy(TileId tile) const {
  return static_cast<int>(insts_in_tile(tile).size());
}

TiledDesign TiledDesign::clone() const {
  TiledDesign out;
  out.netlist = netlist;
  out.packed = packed;
  out.device = std::make_unique<Device>(device->params());
  out.rr = std::make_unique<RrGraph>(*out.device);
  out.placement =
      std::make_unique<Placement>(*out.device, out.packed, *placement);
  out.routing = std::make_unique<Routing>(*out.rr, *routing);
  out.nets = nets;
  out.tiles = tiles;
  out.locked = locked;
  out.slack_overhead = slack_overhead;
  out.build_effort = build_effort;
  return out;
}

void TiledDesign::validate() const {
  netlist.validate();
  packed.validate(netlist);
  placement->validate(packed);
  for (const PhysNet& n : nets)
    if (routing->has_tree(n.net)) routing->validate_tree(n.net);
  EMUTILE_ASSERT(routing->count_overused() == 0,
                 "routing has overused nodes");
  if (tiles.has_value())
    EMUTILE_ASSERT(locked.size() ==
                       static_cast<std::size_t>(tiles->num_tiles()),
                   "lock table size mismatch");
}

}  // namespace emutile
