#pragma once
/// \file tile_grid.hpp
/// Rectangular partition of the CLB grid into tiles.
///
/// Tiles are the paper's independent physical blocks: "conceptual boundaries
/// of constraints" (Section 3.2) over the placed design. The grid is chosen
/// from a requested tile count; cut lines distribute remainder columns/rows
/// evenly so tile areas differ by at most one row/column strip.

#include <vector>

#include "place/placement.hpp"
#include "util/ids.hpp"

namespace emutile {

class TileGrid {
 public:
  /// Partition a grid_w x grid_h CLB grid into tiles_x x tiles_y tiles.
  TileGrid(int grid_w, int grid_h, int tiles_x, int tiles_y);

  /// Choose a near-square tiling with approximately `num_tiles` tiles.
  static TileGrid make(int grid_w, int grid_h, int num_tiles);

  [[nodiscard]] int num_tiles() const { return tiles_x_ * tiles_y_; }
  [[nodiscard]] int tiles_x() const { return tiles_x_; }
  [[nodiscard]] int tiles_y() const { return tiles_y_; }
  [[nodiscard]] int grid_width() const { return grid_w_; }
  [[nodiscard]] int grid_height() const { return grid_h_; }

  /// Tile containing CLB (x, y).
  [[nodiscard]] TileId tile_at(int x, int y) const;

  /// CLB rectangle of a tile.
  [[nodiscard]] const Rect& rect(TileId tile) const;

  /// 4-neighborhood (tiles sharing an edge).
  [[nodiscard]] std::vector<TileId> neighbors(TileId tile) const;

  /// Number of CLB sites in a tile.
  [[nodiscard]] int capacity(TileId tile) const { return rect(tile).area(); }

  /// True if two tiles share an edge.
  [[nodiscard]] bool adjacent(TileId a, TileId b) const;

 private:
  [[nodiscard]] TileId tile_index(int tx, int ty) const {
    return TileId{static_cast<std::uint32_t>(ty * tiles_x_ + tx)};
  }

  int grid_w_, grid_h_, tiles_x_, tiles_y_;
  std::vector<int> x_cuts_;  // tiles_x_+1 boundaries
  std::vector<int> y_cuts_;
  std::vector<Rect> rects_;
  std::vector<std::int16_t> tile_of_x_;  // per CLB column -> tile column
  std::vector<std::int16_t> tile_of_y_;
};

}  // namespace emutile
