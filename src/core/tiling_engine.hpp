#pragma once
/// \file tiling_engine.hpp
/// The paper's contribution: tile-based physical design for fast debugging
/// iterations.
///
/// build() implements pseudocode steps 4-8 — re-place with resource slack,
/// draw tile boundaries, lock tile interfaces. apply_change() implements
/// steps 16-20 for one debugging iteration: identify and clear the affected
/// tiles (expanding to neighbors when slack is insufficient), re-place and
/// re-route only those tiles against locked interfaces, then re-lock. The
/// effort spent is metered so benches can compare against the Quick_ECO and
/// incremental baselines (Figure 5).

#include <cstdint>
#include <vector>

#include "core/tiled_design.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

struct TilingParams {
  std::uint64_t seed = 1;
  double target_overhead = 0.20;  ///< reserved slack as a fraction of logic
  int num_tiles = 10;             ///< approximate tile count
  double placer_effort = 1.0;
  int tracks_per_channel = 12;
  /// Extra channel tracks beyond what the initial route needs. Locked tile
  /// interfaces pin every crossing net's boundary wire, which costs routing
  /// freedom inside a cleared tile; emulation systems keep interconnect
  /// utilization low for exactly this reason.
  int route_headroom = 4;
};

/// One debugging change, expressed against the design's netlist. The caller
/// performs the netlist edits first (adding test logic, modifying LUTs);
/// apply_change then re-implements the physical design incrementally.
struct EcoChange {
  std::vector<CellId> added_cells;     ///< new LUT/DFF cells to pack & place
  std::vector<CellId> modified_cells;  ///< cells edited in place
  std::vector<CellId> anchor_cells;    ///< placement seeds (e.g. probed nets' drivers)
};

struct EcoOptions {
  std::uint64_t seed = 7;
  double placer_effort = 1.0;
  int max_region_expansions = 8;  ///< growth rings before giving up
};

struct EcoOutcome {
  bool success = false;
  std::vector<TileId> affected;
  PnrEffort effort;
  int region_expansions = 0;  ///< extra rings beyond capacity-driven set
};

class TilingEngine {
 public:
  /// Steps 4-8: implement `netlist` with reserved slack and locked tiles.
  [[nodiscard]] static TiledDesign build(Netlist netlist,
                                         const TilingParams& params);

  /// True when `a` and `b` are the same connectivity graph — identical cell
  /// ids, kinds, input nets, and output nets — differing at most in LUT
  /// truth tables. This is exactly the edit class an FPGA absorbs by
  /// reconfiguring LUT contents: a placed-and-routed implementation of `a`
  /// implements `b` with zero CAD work, because nothing in packing,
  /// placement, or routing reads a truth table.
  [[nodiscard]] static bool lut_reconfig_equivalent(const Netlist& a,
                                                    const Netlist& b);

  /// Warm start: re-implement `netlist` by cloning `baseline`'s physical
  /// design (placement, routing, tiles, and build-effort ledger are carried
  /// over unchanged) and swapping the netlist in — the tiled-ECO equivalent
  /// of applying a LUT-reconfiguration change to an already-built design.
  /// Requires lut_reconfig_equivalent(baseline.netlist, netlist) (checked).
  /// The result is bit-identical to build(netlist, params-of-baseline),
  /// at the cost of a clone instead of a full place-and-route.
  [[nodiscard]] static TiledDesign rebase(const TiledDesign& baseline,
                                          Netlist netlist);

  /// Capacity-driven affected-tile identification (Section 4.2 / Figure 3):
  /// starting from `seeds`, absorb neighboring tiles until the region's free
  /// sites can take `clbs_needed` new CLBs. Throws if the device cannot fit
  /// the request at all.
  [[nodiscard]] static std::vector<TileId> expand_for_capacity(
      const TiledDesign& design, std::vector<TileId> seeds, int clbs_needed);

  /// Steps 16-20: apply a debugging change confined to the affected tiles.
  static EcoOutcome apply_change(TiledDesign& design, const EcoChange& change,
                                 const EcoOptions& options);

  /// Re-draw tile boundaries on an existing tiled design without touching
  /// placement or routing ("tiling boundaries can be kept the same or
  /// reestablished for each debugging iteration", Section 3.1). Boundaries
  /// are conceptual constraint lines, so only the grid and lock table
  /// change; slack stays wherever the current placement left it.
  static void retile(TiledDesign& design, int num_tiles);
};

}  // namespace emutile
