#pragma once
/// \file tiled_design.hpp
/// The complete physical design bundle: netlist, packing, device, placement,
/// routing, and (optionally) the tile structure with lock state.

#include <memory>
#include <optional>
#include <vector>

#include "arch/device.hpp"
#include "arch/rr_graph.hpp"
#include "core/pnr_effort.hpp"
#include "core/tile_grid.hpp"
#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/routing.hpp"
#include "synth/packer.hpp"

namespace emutile {

/// A fully implemented design. Produced by flow::build_flat (no tiles) or
/// TilingEngine::build (tiled, interfaces locked). Movable-only ECO paths
/// mutate it in place.
struct TiledDesign {
  TiledDesign() = default;
  TiledDesign(const TiledDesign&) = delete;
  TiledDesign& operator=(const TiledDesign&) = delete;
  // Placement points at our by-value `packed` member, so moves must rebind.
  TiledDesign(TiledDesign&& other) noexcept { *this = std::move(other); }
  TiledDesign& operator=(TiledDesign&& other) noexcept {
    netlist = std::move(other.netlist);
    packed = std::move(other.packed);
    device = std::move(other.device);
    rr = std::move(other.rr);
    placement = std::move(other.placement);
    routing = std::move(other.routing);
    nets = std::move(other.nets);
    tiles = std::move(other.tiles);
    locked = std::move(other.locked);
    slack_overhead = other.slack_overhead;
    build_effort = other.build_effort;
    if (placement) placement->rebind(*device, packed);
    return *this;
  }

  Netlist netlist;
  PackedDesign packed;
  std::unique_ptr<Device> device;
  std::unique_ptr<RrGraph> rr;
  std::unique_ptr<Placement> placement;
  std::unique_ptr<Routing> routing;
  std::vector<PhysNet> nets;          ///< cached physical nets

  std::optional<TileGrid> tiles;      ///< present iff tiled
  std::vector<std::uint8_t> locked;   ///< per-tile lock state (1 = locked)
  double slack_overhead = 0.0;        ///< reserved slack fraction

  PnrEffort build_effort;             ///< effort of the initial implementation

  /// Refresh the cached physical net list after a netlist/packing change.
  void refresh_nets() { nets = packed.physical_nets(netlist); }

  /// CLB instances currently placed inside a tile.
  [[nodiscard]] std::vector<InstId> insts_in_tile(TileId tile) const;

  /// Occupied CLB sites in a tile.
  [[nodiscard]] int tile_occupancy(TileId tile) const;

  /// Free CLB sites in a tile.
  [[nodiscard]] int tile_free(TileId tile) const {
    return tiles->capacity(tile) - tile_occupancy(tile);
  }

  /// Full-design structural validation (netlist, packing, placement, and all
  /// route trees). Used by tests and after ECOs.
  void validate() const;

  /// Deep copy (rebuilds the device/RR graph and rebinds placement/routing).
  /// Cell/net/instance ids are preserved, so a netlist edit scripted against
  /// the original applies identically to the clone. This is the warm-start
  /// primitive: cloning a pre-injection baseline costs RR-graph
  /// reconstruction only — no placer or router search — which is why
  /// TilingEngine::rebase is orders of magnitude cheaper than build().
  [[nodiscard]] TiledDesign clone() const;
};

}  // namespace emutile
