#pragma once
/// \file tiled_baseline_cache.hpp
/// Shared pre-injection tiled baselines for warm-started debug sessions.
///
/// A campaign runs hundreds of sessions against the *same* golden netlist
/// with the same TilingParams — only the injected error differs — yet each
/// session used to pay a full place-and-route in TilingEngine::build. Since
/// the physical flow never reads LUT truth tables, every session whose
/// injected error is a LUT reconfiguration (function / polarity bugs)
/// implements on the *identical* placed-and-tiled result. This cache holds
/// that result once per content key so sessions clone it
/// (TilingEngine::rebase) instead of rebuilding, which is where the bulk of
/// the big-design session wall time goes.
///
/// Concurrency: get_or_build serializes the build of any one key (concurrent
/// requesters block on the building thread and share its result) while
/// different keys build in parallel. A builder that throws caches nothing —
/// the next requester retries. Entries are handed out as
/// shared_ptr<const TiledDesign>, so eviction can never invalidate a design
/// a session is still cloning from.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/tiled_design.hpp"

namespace emutile {

class TiledBaselineCache {
 public:
  using Builder = std::function<TiledDesign()>;

  /// `max_entries` bounds the cache (least-recently-used eviction after each
  /// insert); 0 means unbounded — right for a per-campaign cache whose key
  /// population is the (design, tiling) pair count.
  explicit TiledBaselineCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Return the baseline cached under `key`, building it with `build` (and
  /// caching the result) on first use.
  [[nodiscard]] std::shared_ptr<const TiledDesign> get_or_build(
      const std::string& key, const Builder& build);

  /// Drop every cached baseline (in-flight shared_ptrs stay valid).
  void clear();

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;    ///< get_or_build calls that built
  [[nodiscard]] std::size_t evictions() const;

 private:
  struct Entry {
    std::mutex build_mutex;  ///< serializes the one build of this key
    /// Written holding both build_mutex and the cache mutex; read either
    /// under the cache mutex (fast path) or under build_mutex (builder path).
    std::shared_ptr<const TiledDesign> design;
    std::uint64_t last_used = 0;
  };

  void evict_locked();

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::size_t max_entries_ = 0;
  std::uint64_t tick_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace emutile
