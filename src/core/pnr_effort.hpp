#pragma once
/// \file pnr_effort.hpp
/// Back-end CAD effort metering.
///
/// The paper's headline result (Figure 5) compares the place-and-route
/// effort that different ECO strategies spend on the same debugging change.
/// Every flow path in this library reports a PnrEffort so benches can make
/// that comparison on identical work.

#include <cstddef>
#include <string>

namespace emutile {

struct PnrEffort {
  std::size_t instances_placed = 0;  ///< CLB/IOB instances re-placed
  std::size_t nets_routed = 0;       ///< nets (re)routed
  std::size_t nodes_expanded = 0;    ///< router search expansions
  double place_ms = 0.0;
  double route_ms = 0.0;

  [[nodiscard]] double total_ms() const { return place_ms + route_ms; }

  PnrEffort& operator+=(const PnrEffort& other) {
    instances_placed += other.instances_placed;
    nets_routed += other.nets_routed;
    nodes_expanded += other.nodes_expanded;
    place_ms += other.place_ms;
    route_ms += other.route_ms;
    return *this;
  }

  [[nodiscard]] std::string to_string() const;
};

}  // namespace emutile
