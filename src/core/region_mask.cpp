#include "core/region_mask.hpp"

#include "util/check.hpp"

namespace emutile {

RegionMasks build_region_masks(const RrGraph& rr, const TileGrid& grid,
                               const std::vector<std::uint8_t>& tile_affected) {
  EMUTILE_CHECK(tile_affected.size() ==
                    static_cast<std::size_t>(grid.num_tiles()),
                "affected-tile mask size mismatch");
  const Device& d = rr.device();
  const int w = d.width(), h = d.height();

  auto cell_affected = [&](int x, int y) {
    if (x < 0 || x >= w || y < 0 || y >= h) return false;
    return tile_affected[grid.tile_at(x, y).value()] != 0;
  };

  RegionMasks masks;
  masks.allowed.assign(rr.num_nodes(), 0);
  masks.rip.assign(rr.num_nodes(), 0);

  for (std::size_t i = 0; i < rr.num_nodes(); ++i) {
    const RrNodeId id{static_cast<std::uint32_t>(i)};
    const RrNodeInfo& n = rr.node(id);
    switch (n.type) {
      case RrType::kOpin:
      case RrType::kIpin:
      case RrType::kSink: {
        if (d.is_clb_site(n.site)) {
          auto [x, y] = d.clb_xy(n.site);
          if (cell_affected(x, y)) {
            masks.allowed[i] = 1;
            masks.rip[i] = 1;
          }
        } else {
          // IOB pins: usable (never ripped) when the IOB abuts an affected
          // edge cell, so ECOs adjacent to the ring can reach the pads.
          auto [edge, off] = d.iob_position(n.site);
          bool adj = false;
          switch (edge) {
            case IobEdge::kBottom: adj = cell_affected(off, 0); break;
            case IobEdge::kTop: adj = cell_affected(off, h - 1); break;
            case IobEdge::kLeft: adj = cell_affected(0, off); break;
            case IobEdge::kRight: adj = cell_affected(w - 1, off); break;
          }
          if (adj) masks.allowed[i] = 1;
        }
        break;
      }
      case RrType::kChanX: {
        // CHANX(x, y) runs below CLB row y: adjacent cells (x, y-1), (x, y).
        const bool below = cell_affected(n.x, n.y - 1);
        const bool above = cell_affected(n.x, n.y);
        if (below || above) masks.allowed[i] = 1;
        if (below && above) masks.rip[i] = 1;
        break;
      }
      case RrType::kChanY: {
        // CHANY(x, y) runs left of CLB column x: cells (x-1, y), (x, y).
        const bool left = cell_affected(n.x - 1, n.y);
        const bool right = cell_affected(n.x, n.y);
        if (left || right) masks.allowed[i] = 1;
        if (left && right) masks.rip[i] = 1;
        break;
      }
    }
  }
  return masks;
}

}  // namespace emutile
