#pragma once
/// \file device.hpp
/// XC4000-style island FPGA device model.
///
/// The device is a width x height grid of CLB sites surrounded by a ring of
/// IOB sites, with segmented routing channels between rows/columns. Each CLB
/// follows the XC4000 structure the paper evaluates on: two 4-input LUTs
/// (F and G), two D flip-flops, four outputs (F, G, FQ, GQ) and ten routable
/// data input pins (F1-4, G1-4 plus two auxiliary direct-in pins).
///
/// Coordinates: CLB (x, y) with x in [0, width), y in [0, height).
/// Horizontal channel y exists for y in [0, height] (channel y runs below CLB
/// row y); vertical channel x exists for x in [0, width] (left of column x).

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace emutile {

/// Dense index over all placement sites (CLBs first, then IOBs).
using SiteIndex = std::uint32_t;
constexpr SiteIndex kInvalidSite = 0xFFFFFFFFu;

/// Which ring edge an IOB sits on.
enum class IobEdge : std::uint8_t { kBottom, kTop, kLeft, kRight };

/// Number of CLB pins in the model.
struct ClbPinModel {
  static constexpr int kNumIpins = 10;  ///< F1-4, G1-4, DIN0, DIN1
  static constexpr int kNumOpins = 4;   ///< F, G, FQ, GQ
};

/// IOBs per perimeter position (the XC4000 family pairs two IOBs per edge
/// CLB position: e.g. the XC4010's 20x20 array carries 160 IOBs).
inline constexpr int kIobsPerPosition = 2;

/// Geometric and capacity parameters of a device instance.
struct DeviceParams {
  int width = 8;
  int height = 8;
  int tracks_per_channel = 10;

  [[nodiscard]] std::string to_string() const;
};

/// Immutable device geometry: site enumeration and coordinates.
class Device {
 public:
  explicit Device(const DeviceParams& params);

  [[nodiscard]] const DeviceParams& params() const { return params_; }
  [[nodiscard]] int width() const { return params_.width; }
  [[nodiscard]] int height() const { return params_.height; }

  [[nodiscard]] int num_clb_sites() const { return width() * height(); }
  [[nodiscard]] int num_iob_sites() const {
    return kIobsPerPosition * (2 * width() + 2 * height());
  }
  [[nodiscard]] int num_sites() const { return num_clb_sites() + num_iob_sites(); }

  [[nodiscard]] bool is_clb_site(SiteIndex s) const {
    return s < static_cast<SiteIndex>(num_clb_sites());
  }
  [[nodiscard]] bool is_iob_site(SiteIndex s) const {
    return s >= static_cast<SiteIndex>(num_clb_sites()) &&
           s < static_cast<SiteIndex>(num_sites());
  }

  /// CLB site index from grid coordinates.
  [[nodiscard]] SiteIndex clb_site(int x, int y) const {
    EMUTILE_ASSERT(x >= 0 && x < width() && y >= 0 && y < height(),
                   "clb coords out of range");
    return static_cast<SiteIndex>(y * width() + x);
  }

  /// Grid coordinates of a CLB site.
  [[nodiscard]] std::pair<int, int> clb_xy(SiteIndex s) const {
    EMUTILE_ASSERT(is_clb_site(s), "not a CLB site");
    return {static_cast<int>(s) % width(), static_cast<int>(s) / width()};
  }

  /// IOB site from a perimeter index in [0, num_iob_sites()).
  [[nodiscard]] SiteIndex iob_site(int perimeter_index) const;

  /// Edge and along-edge offset of an IOB site (paired IOBs share the same
  /// geometric position and channel access).
  [[nodiscard]] std::pair<IobEdge, int> iob_position(SiteIndex s) const;

  /// Nominal coordinates of any site (IOBs sit just outside the grid); used
  /// for wirelength costs and region tests.
  [[nodiscard]] std::pair<double, double> site_center(SiteIndex s) const;

  /// Smallest device (with ~square aspect) providing at least `clbs` CLB
  /// sites and at least `iobs` IOB sites, with the given channel width.
  [[nodiscard]] static DeviceParams size_for(int clbs, int iobs,
                                             int tracks_per_channel);

 private:
  DeviceParams params_;
};

}  // namespace emutile
