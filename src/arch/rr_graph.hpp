#pragma once
/// \file rr_graph.hpp
/// Routing-resource graph for the island FPGA.
///
/// Node classes follow the classic VPR decomposition:
///   OPIN  — cell output pin (route sources)
///   IPIN  — cell input pin
///   SINK  — per-site aggregation of logically equivalent input pins
///   CHANX — one horizontal wire segment (unit length, one track)
///   CHANY — one vertical wire segment
///
/// Connectivity: output pins feed all tracks of the adjacent channel segment
/// (full connection box), wires meet in universal same-track switch boxes at
/// channel corners, wires feed adjacent input pins, input pins feed the
/// site's SINK. All wire-wire edges are bidirectional.
///
/// Channel geometry: CHANX(x, y) spans CLB column x in the horizontal channel
/// below CLB row y (y in [0, height]); CHANY(x, y) spans CLB row y in the
/// vertical channel left of CLB column x (x in [0, width]).

#include <cstdint>
#include <span>
#include <vector>

#include "arch/device.hpp"
#include "util/ids.hpp"

namespace emutile {

enum class RrType : std::uint8_t { kOpin, kIpin, kSink, kChanX, kChanY };

[[nodiscard]] const char* to_string(RrType type);

/// Static per-node record.
struct RrNodeInfo {
  RrType type = RrType::kChanX;
  std::int16_t x = 0;       ///< CLB-grid x (channel coords as documented above)
  std::int16_t y = 0;
  std::int16_t pin_or_track = 0;
  std::uint16_t capacity = 1;
  SiteIndex site = kInvalidSite;  ///< owning site for pin/sink nodes
};

/// The routing-resource graph. Immutable once built; routers keep their own
/// occupancy state (see route/Routing).
class RrGraph {
 public:
  explicit RrGraph(const Device& device);

  [[nodiscard]] const Device& device() const { return *device_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edge_targets_.size(); }

  [[nodiscard]] const RrNodeInfo& node(RrNodeId id) const {
    return nodes_[id.value()];
  }

  /// Outgoing neighbors of a node.
  [[nodiscard]] std::span<const RrNodeId> fanout(RrNodeId id) const {
    const auto begin = edge_offsets_[id.value()];
    const auto end = edge_offsets_[id.value() + 1];
    return {edge_targets_.data() + begin, end - begin};
  }

  // ---- node lookup --------------------------------------------------------

  [[nodiscard]] RrNodeId opin(SiteIndex site, int pin) const;
  [[nodiscard]] RrNodeId ipin(SiteIndex site, int pin) const;
  [[nodiscard]] RrNodeId sink(SiteIndex site) const;
  [[nodiscard]] RrNodeId chanx(int x, int y, int track) const;
  [[nodiscard]] RrNodeId chany(int x, int y, int track) const;

  /// Number of data input pins at a site (10 for CLB, 1 for IOB).
  [[nodiscard]] int num_ipins(SiteIndex site) const;
  [[nodiscard]] int num_opins(SiteIndex site) const;

  /// Base routing cost of a node (congestion-free).
  [[nodiscard]] static float base_cost(RrType type);

  /// Intrinsic delay of a node in nanoseconds (used by STA).
  [[nodiscard]] static float intrinsic_delay_ns(RrType type);

  /// Euclidean-free admissible distance estimate (grid manhattan) from node
  /// `from` to site `to_site`, in units of base wire cost.
  [[nodiscard]] float heuristic_to(RrNodeId from, SiteIndex to_site) const;

 private:
  void build();
  void add_edge(RrNodeId from, RrNodeId to);
  void add_bidir(RrNodeId a, RrNodeId b);

  const Device* device_;
  std::vector<RrNodeInfo> nodes_;
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<RrNodeId> edge_targets_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> scratch_edges_;

  // Node-id arithmetic bases.
  std::uint32_t clb_pin_base_ = 0;
  std::uint32_t iob_pin_base_ = 0;
  std::uint32_t chanx_base_ = 0;
  std::uint32_t chany_base_ = 0;
  static constexpr int kClbNodes = ClbPinModel::kNumIpins + ClbPinModel::kNumOpins + 1;
  static constexpr int kIobNodes = 3;  // IPIN, OPIN, SINK
};

}  // namespace emutile
