#include "arch/rr_graph.hpp"

#include <algorithm>
#include <cmath>

namespace emutile {

const char* to_string(RrType type) {
  switch (type) {
    case RrType::kOpin: return "OPIN";
    case RrType::kIpin: return "IPIN";
    case RrType::kSink: return "SINK";
    case RrType::kChanX: return "CHANX";
    case RrType::kChanY: return "CHANY";
  }
  return "?";
}

namespace {
/// Sides cycle for CLB pin placement.
enum class Side : int { kBottom = 0, kTop = 1, kLeft = 2, kRight = 3 };
Side pin_side(int pin) { return static_cast<Side>(pin % 4); }
}  // namespace

RrGraph::RrGraph(const Device& device) : device_(&device) { build(); }

RrNodeId RrGraph::opin(SiteIndex site, int pin) const {
  const Device& d = *device_;
  EMUTILE_ASSERT(pin >= 0 && pin < num_opins(site), "opin index out of range");
  if (d.is_clb_site(site))
    return RrNodeId{clb_pin_base_ + site * kClbNodes + ClbPinModel::kNumIpins +
                    static_cast<std::uint32_t>(pin)};
  const std::uint32_t local = site - static_cast<SiteIndex>(d.num_clb_sites());
  return RrNodeId{iob_pin_base_ + local * kIobNodes + 1};
}

RrNodeId RrGraph::ipin(SiteIndex site, int pin) const {
  const Device& d = *device_;
  EMUTILE_ASSERT(pin >= 0 && pin < num_ipins(site), "ipin index out of range");
  if (d.is_clb_site(site))
    return RrNodeId{clb_pin_base_ + site * kClbNodes + static_cast<std::uint32_t>(pin)};
  const std::uint32_t local = site - static_cast<SiteIndex>(d.num_clb_sites());
  return RrNodeId{iob_pin_base_ + local * kIobNodes + 0};
}

RrNodeId RrGraph::sink(SiteIndex site) const {
  const Device& d = *device_;
  if (d.is_clb_site(site))
    return RrNodeId{clb_pin_base_ + site * kClbNodes + ClbPinModel::kNumIpins +
                    ClbPinModel::kNumOpins};
  const std::uint32_t local = site - static_cast<SiteIndex>(d.num_clb_sites());
  return RrNodeId{iob_pin_base_ + local * kIobNodes + 2};
}

RrNodeId RrGraph::chanx(int x, int y, int track) const {
  const Device& d = *device_;
  const int w = d.width(), t = d.params().tracks_per_channel;
  EMUTILE_ASSERT(x >= 0 && x < w && y >= 0 && y <= d.height() && track >= 0 &&
                     track < t,
                 "chanx coords out of range");
  return RrNodeId{chanx_base_ +
                  static_cast<std::uint32_t>((y * w + x) * t + track)};
}

RrNodeId RrGraph::chany(int x, int y, int track) const {
  const Device& d = *device_;
  const int h = d.height(), t = d.params().tracks_per_channel;
  EMUTILE_ASSERT(x >= 0 && x <= d.width() && y >= 0 && y < h && track >= 0 &&
                     track < t,
                 "chany coords out of range");
  return RrNodeId{chany_base_ +
                  static_cast<std::uint32_t>((x * h + y) * t + track)};
}

int RrGraph::num_ipins(SiteIndex site) const {
  return device_->is_clb_site(site) ? ClbPinModel::kNumIpins : 1;
}

int RrGraph::num_opins(SiteIndex site) const {
  return device_->is_clb_site(site) ? ClbPinModel::kNumOpins : 1;
}

float RrGraph::base_cost(RrType type) {
  switch (type) {
    case RrType::kOpin: return 0.5f;
    case RrType::kIpin: return 0.5f;
    case RrType::kSink: return 0.0f;
    case RrType::kChanX:
    case RrType::kChanY: return 1.0f;
  }
  return 1.0f;
}

float RrGraph::intrinsic_delay_ns(RrType type) {
  switch (type) {
    case RrType::kOpin: return 0.30f;
    case RrType::kIpin: return 0.40f;
    case RrType::kSink: return 0.00f;
    case RrType::kChanX:
    case RrType::kChanY: return 0.60f;  // wire + switch
  }
  return 0.0f;
}

float RrGraph::heuristic_to(RrNodeId from, SiteIndex to_site) const {
  const RrNodeInfo& n = node(from);
  auto [tx, ty] = device_->site_center(to_site);
  const float dx = std::abs(static_cast<float>(n.x) - static_cast<float>(tx));
  const float dy = std::abs(static_cast<float>(n.y) - static_cast<float>(ty));
  // Each unit of manhattan distance costs at least one wire segment. Keep the
  // estimate slightly optimistic (admissible) by subtracting one.
  return std::max(0.0f, dx + dy - 1.0f) * base_cost(RrType::kChanX);
}

void RrGraph::build() {
  const Device& d = *device_;
  const int w = d.width(), h = d.height(), t = d.params().tracks_per_channel;

  clb_pin_base_ = 0;
  iob_pin_base_ = clb_pin_base_ +
                  static_cast<std::uint32_t>(d.num_clb_sites()) * kClbNodes;
  chanx_base_ = iob_pin_base_ +
                static_cast<std::uint32_t>(d.num_iob_sites()) * kIobNodes;
  chany_base_ = chanx_base_ + static_cast<std::uint32_t>(w * (h + 1) * t);
  const std::uint32_t total =
      chany_base_ + static_cast<std::uint32_t>((w + 1) * h * t);

  nodes_.resize(total);

  // ---- node records ----
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const SiteIndex s = d.clb_site(x, y);
      for (int p = 0; p < ClbPinModel::kNumIpins; ++p) {
        RrNodeInfo& n = nodes_[ipin(s, p).value()];
        n = {RrType::kIpin, static_cast<std::int16_t>(x),
             static_cast<std::int16_t>(y), static_cast<std::int16_t>(p), 1, s};
      }
      for (int p = 0; p < ClbPinModel::kNumOpins; ++p) {
        RrNodeInfo& n = nodes_[opin(s, p).value()];
        n = {RrType::kOpin, static_cast<std::int16_t>(x),
             static_cast<std::int16_t>(y), static_cast<std::int16_t>(p), 1, s};
      }
      RrNodeInfo& n = nodes_[sink(s).value()];
      n = {RrType::kSink, static_cast<std::int16_t>(x),
           static_cast<std::int16_t>(y), 0,
           static_cast<std::uint16_t>(ClbPinModel::kNumIpins), s};
    }
  }
  for (int p = 0; p < d.num_iob_sites(); ++p) {
    const SiteIndex s = d.iob_site(p);
    auto [cx, cy] = d.site_center(s);
    const auto sx = static_cast<std::int16_t>(std::floor(cx));
    const auto sy = static_cast<std::int16_t>(std::floor(cy));
    nodes_[ipin(s, 0).value()] = {RrType::kIpin, sx, sy, 0, 1, s};
    nodes_[opin(s, 0).value()] = {RrType::kOpin, sx, sy, 0, 1, s};
    nodes_[sink(s).value()] = {RrType::kSink, sx, sy, 0, 1, s};
  }
  for (int y = 0; y <= h; ++y)
    for (int x = 0; x < w; ++x)
      for (int k = 0; k < t; ++k)
        nodes_[chanx(x, y, k).value()] = {RrType::kChanX,
                                          static_cast<std::int16_t>(x),
                                          static_cast<std::int16_t>(y),
                                          static_cast<std::int16_t>(k), 1,
                                          kInvalidSite};
  for (int x = 0; x <= w; ++x)
    for (int y = 0; y < h; ++y)
      for (int k = 0; k < t; ++k)
        nodes_[chany(x, y, k).value()] = {RrType::kChanY,
                                          static_cast<std::int16_t>(x),
                                          static_cast<std::int16_t>(y),
                                          static_cast<std::int16_t>(k), 1,
                                          kInvalidSite};

  // ---- edges ----
  scratch_edges_.reserve(static_cast<std::size_t>(total) * 6);

  // CLB pin <-> channel connection boxes.
  auto channel_of_clb_side = [&](int x, int y, Side side, int track) -> RrNodeId {
    switch (side) {
      case Side::kBottom: return chanx(x, y, track);
      case Side::kTop: return chanx(x, y + 1, track);
      case Side::kLeft: return chany(x, y, track);
      case Side::kRight: return chany(x + 1, y, track);
    }
    EMUTILE_ASSERT(false, "bad side");
    return RrNodeId::invalid();
  };

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const SiteIndex s = d.clb_site(x, y);
      for (int p = 0; p < ClbPinModel::kNumIpins; ++p) {
        const Side side = pin_side(p);
        for (int k = 0; k < t; ++k)
          add_edge(channel_of_clb_side(x, y, side, k), ipin(s, p));
        add_edge(ipin(s, p), sink(s));
      }
      for (int p = 0; p < ClbPinModel::kNumOpins; ++p) {
        const Side side = pin_side(p);
        for (int k = 0; k < t; ++k)
          add_edge(opin(s, p), channel_of_clb_side(x, y, side, k));
      }
    }
  }

  // IOB pins connect to the channel segment they abut.
  for (int p = 0; p < d.num_iob_sites(); ++p) {
    const SiteIndex s = d.iob_site(p);
    auto [edge, off] = d.iob_position(s);
    for (int k = 0; k < t; ++k) {
      RrNodeId wire = RrNodeId::invalid();
      switch (edge) {
        case IobEdge::kBottom: wire = chanx(off, 0, k); break;
        case IobEdge::kTop: wire = chanx(off, h, k); break;
        case IobEdge::kLeft: wire = chany(0, off, k); break;
        case IobEdge::kRight: wire = chany(w, off, k); break;
      }
      add_edge(opin(s, 0), wire);
      add_edge(wire, ipin(s, 0));
    }
    add_edge(ipin(s, 0), sink(s));
  }

  // Switch boxes at each channel corner (x, y), x in [0, w], y in [0, h].
  // Straight-through connections keep the track index; turning connections
  // additionally rotate tracks (Wilton-style) so nets can migrate between
  // tracks as they turn — a pure same-track (disjoint) box would partition
  // the fabric into W independent networks and cripple routability.
  for (int y = 0; y <= h; ++y) {
    for (int x = 0; x <= w; ++x) {
      const bool has_l = x - 1 >= 0 && x - 1 < w;
      const bool has_r = x < w;
      const bool has_b = y - 1 >= 0 && y - 1 < h;
      const bool has_t = y < h;
      for (int k = 0; k < t; ++k) {
        const int k_up = (k + 1) % t;
        const int k_dn = (k + t - 1) % t;
        // Straight.
        if (has_l && has_r) add_bidir(chanx(x - 1, y, k), chanx(x, y, k));
        if (has_b && has_t) add_bidir(chany(x, y - 1, k), chany(x, y, k));
        // Turns: same track plus both single-step rotations. The extra
        // mixing matters for ECO re-routing, where locked boundary stubs
        // must be re-entered at specific wires: more turn options per wire
        // means fewer single-entry chokepoints (real devices are far richer
        // still).
        auto turn = [&](RrNodeId a_same, RrNodeId a_up, RrNodeId a_dn,
                        RrNodeId b) {
          add_bidir(a_same, b);
          add_bidir(a_up, b);
          add_bidir(a_dn, b);
        };
        if (has_l && has_b)
          turn(chanx(x - 1, y, k), chanx(x - 1, y, k_up),
               chanx(x - 1, y, k_dn), chany(x, y - 1, k));
        if (has_l && has_t)
          turn(chanx(x - 1, y, k), chanx(x - 1, y, k_up),
               chanx(x - 1, y, k_dn), chany(x, y, k));
        if (has_r && has_b)
          turn(chanx(x, y, k), chanx(x, y, k_up), chanx(x, y, k_dn),
               chany(x, y - 1, k));
        if (has_r && has_t)
          turn(chanx(x, y, k), chanx(x, y, k_up), chanx(x, y, k_dn),
               chany(x, y, k));
      }
    }
  }

  // Compress to CSR.
  std::sort(scratch_edges_.begin(), scratch_edges_.end());
  scratch_edges_.erase(
      std::unique(scratch_edges_.begin(), scratch_edges_.end()),
      scratch_edges_.end());
  edge_offsets_.assign(total + 1, 0);
  for (const auto& e : scratch_edges_) ++edge_offsets_[e.first + 1];
  for (std::size_t i = 1; i < edge_offsets_.size(); ++i)
    edge_offsets_[i] += edge_offsets_[i - 1];
  edge_targets_.resize(scratch_edges_.size());
  {
    std::vector<std::uint32_t> cursor(edge_offsets_.begin(),
                                      edge_offsets_.end() - 1);
    for (const auto& e : scratch_edges_)
      edge_targets_[cursor[e.first]++] = RrNodeId{e.second};
  }
  scratch_edges_.clear();
  scratch_edges_.shrink_to_fit();
}

void RrGraph::add_edge(RrNodeId from, RrNodeId to) {
  scratch_edges_.emplace_back(from.value(), to.value());
}

void RrGraph::add_bidir(RrNodeId a, RrNodeId b) {
  add_edge(a, b);
  add_edge(b, a);
}

}  // namespace emutile
