#include "arch/device.hpp"

#include <cmath>
#include <sstream>

namespace emutile {

std::string DeviceParams::to_string() const {
  std::ostringstream os;
  os << width << 'x' << height << " CLBs, " << tracks_per_channel
     << " tracks/channel";
  return os.str();
}

Device::Device(const DeviceParams& params) : params_(params) {
  EMUTILE_CHECK(params.width >= 1 && params.height >= 1,
                "device must be at least 1x1");
  EMUTILE_CHECK(params.tracks_per_channel >= 1, "need at least one track");
}

SiteIndex Device::iob_site(int perimeter_index) const {
  EMUTILE_CHECK(perimeter_index >= 0 && perimeter_index < num_iob_sites(),
                "IOB perimeter index out of range");
  return static_cast<SiteIndex>(num_clb_sites() + perimeter_index);
}

std::pair<IobEdge, int> Device::iob_position(SiteIndex s) const {
  EMUTILE_ASSERT(is_iob_site(s), "not an IOB site");
  // Paired IOBs: consecutive site indices share one geometric position.
  int p = (static_cast<int>(s) - num_clb_sites()) / kIobsPerPosition;
  if (p < width()) return {IobEdge::kBottom, p};
  p -= width();
  if (p < width()) return {IobEdge::kTop, p};
  p -= width();
  if (p < height()) return {IobEdge::kLeft, p};
  p -= height();
  return {IobEdge::kRight, p};
}

std::pair<double, double> Device::site_center(SiteIndex s) const {
  if (is_clb_site(s)) {
    auto [x, y] = clb_xy(s);
    return {x + 0.5, y + 0.5};
  }
  auto [edge, off] = iob_position(s);
  switch (edge) {
    case IobEdge::kBottom: return {off + 0.5, -0.5};
    case IobEdge::kTop: return {off + 0.5, height() + 0.5};
    case IobEdge::kLeft: return {-0.5, off + 0.5};
    case IobEdge::kRight: return {width() + 0.5, off + 0.5};
  }
  return {0, 0};
}

DeviceParams Device::size_for(int clbs, int iobs, int tracks_per_channel) {
  EMUTILE_CHECK(clbs >= 1, "need at least one CLB");
  int w = std::max(1, static_cast<int>(std::ceil(std::sqrt(clbs))));
  int h = (clbs + w - 1) / w;
  // Grow until the perimeter also accommodates the IOBs.
  while (kIobsPerPosition * (2 * w + 2 * h) < iobs) {
    ++w;
    h = std::max(h, (clbs + w - 1) / w);
  }
  DeviceParams p;
  p.width = w;
  p.height = h;
  p.tracks_per_channel = tracks_per_channel;
  return p;
}

}  // namespace emutile
