#include "route/routing.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace emutile {

Routing::Routing(const RrGraph& rr)
    : rr_(&rr), occupancy_(rr.num_nodes(), 0) {}

Routing::Routing(const RrGraph& rr, const Routing& other)
    : rr_(&rr), trees_(other.trees_), occupancy_(other.occupancy_) {
  EMUTILE_CHECK(rr.num_nodes() == other.rr_->num_nodes(),
                "rebinding copy requires an identical RR graph");
}

bool Routing::has_tree(NetId net) const {
  return net.value() < trees_.size() && !trees_[net.value()].empty();
}

const RouteTree& Routing::tree(NetId net) const {
  EMUTILE_CHECK(net.value() < trees_.size() && !trees_[net.value()].empty(),
                "net has no route tree");
  return trees_[net.value()];
}

void Routing::set_tree(NetId net, RouteTree tree) {
  if (net.value() >= trees_.size()) trees_.resize(net.value() + 1);
  rip_up(net);
  for (RrNodeId n : tree.nodes) ++occupancy_[n.value()];
  trees_[net.value()] = std::move(tree);
}

void Routing::rip_up(NetId net) {
  if (net.value() >= trees_.size()) return;
  RouteTree& t = trees_[net.value()];
  for (RrNodeId n : t.nodes) --occupancy_[n.value()];
  t.clear();
}

RouteForest Routing::rip_up_partial(NetId net,
                                    const std::vector<std::uint8_t>& rip_mask,
                                    RrNodeId source) {
  RouteForest forest;
  if (net.value() >= trees_.size() || trees_[net.value()].empty())
    return forest;
  RouteTree& t = trees_[net.value()];
  EMUTILE_CHECK(rip_mask.size() == rr_->num_nodes(), "rip mask size mismatch");

  // The whole tree is released from the occupancy tables; the caller hands
  // the surviving forest to the router, which re-installs it (so kept nodes
  // are counted exactly once when routing resumes).
  std::vector<std::int32_t> remap(t.nodes.size(), -1);
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    --occupancy_[t.nodes[i].value()];
    if (rip_mask[t.nodes[i].value()]) continue;
    remap[i] = static_cast<std::int32_t>(forest.nodes.size());
    forest.nodes.push_back(t.nodes[i]);
    forest.parent.push_back(-2);  // fill below
    forest.group.push_back(-1);
  }

  // Parents: a kept node keeps its parent if the parent was kept, otherwise
  // it becomes the root of a new component (parents always precede children
  // in the tree arrays, so remap of the parent is final here). The component
  // rooted at the true source is group 0; all others are orphan groups —
  // including roots of a previously restored forest whose tree had multiple
  // roots to begin with.
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    if (remap[i] < 0) continue;
    const std::int32_t old_parent = t.parent[i];
    const std::size_t ni = static_cast<std::size_t>(remap[i]);
    const bool root_here =
        old_parent < 0 || remap[static_cast<std::size_t>(old_parent)] < 0;
    if (root_here) {
      forest.parent[ni] = -1;
      forest.group[ni] =
          forest.nodes[ni] == source ? 0 : ++forest.num_orphan_groups;
    } else {
      forest.parent[ni] = remap[static_cast<std::size_t>(old_parent)];
      forest.group[ni] = forest.group[static_cast<std::size_t>(
          remap[static_cast<std::size_t>(old_parent)])];
    }
  }
  t.clear();
  return forest;
}

std::size_t Routing::count_overused() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < occupancy_.size(); ++i)
    if (occupancy_[i] >
        static_cast<std::int32_t>(rr_->node(RrNodeId{
            static_cast<std::uint32_t>(i)}).capacity))
      ++n;
  return n;
}

std::size_t Routing::audit_occupancy() const {
  std::vector<std::int32_t> recount(occupancy_.size(), 0);
  for (const RouteTree& t : trees_)
    for (RrNodeId n : t.nodes) ++recount[n.value()];
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < occupancy_.size(); ++i)
    if (recount[i] != occupancy_[i]) ++mismatches;
  return mismatches;
}

std::size_t Routing::total_wire_nodes() const {
  std::size_t n = 0;
  for (const RouteTree& t : trees_)
    for (RrNodeId node : t.nodes) {
      const RrType ty = rr_->node(node).type;
      if (ty == RrType::kChanX || ty == RrType::kChanY) ++n;
    }
  return n;
}

std::vector<RrNodeId> Routing::path_to(NetId net, RrNodeId node) const {
  const RouteTree& t = tree(net);
  std::int32_t idx = -1;
  for (std::size_t i = 0; i < t.nodes.size(); ++i)
    if (t.nodes[i] == node) {
      idx = static_cast<std::int32_t>(i);
      break;
    }
  EMUTILE_CHECK(idx >= 0, "node not in route tree");
  std::vector<RrNodeId> path;
  while (idx >= 0) {
    path.push_back(t.nodes[static_cast<std::size_t>(idx)]);
    idx = t.parent[static_cast<std::size_t>(idx)];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Routing::prune_to_sinks(NetId net,
                             const std::vector<RrNodeId>& wanted_sinks) {
  RouteTree& t = trees_[net.value()];
  EMUTILE_CHECK(!t.empty(), "prune on unrouted net");
  std::unordered_map<std::uint32_t, std::int32_t> index_of;
  for (std::size_t i = 0; i < t.nodes.size(); ++i)
    index_of[t.nodes[i].value()] = static_cast<std::int32_t>(i);

  std::vector<std::uint8_t> keep(t.nodes.size(), 0);
  keep[0] = 1;  // root
  for (RrNodeId sink : wanted_sinks) {
    auto it = index_of.find(sink.value());
    EMUTILE_CHECK(it != index_of.end(), "wanted sink not in route tree");
    for (std::int32_t i = it->second; i >= 0 && !keep[static_cast<std::size_t>(i)];
         i = t.parent[static_cast<std::size_t>(i)])
      keep[static_cast<std::size_t>(i)] = 1;
  }

  RouteTree pruned;
  std::vector<std::int32_t> remap(t.nodes.size(), -1);
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    if (!keep[i]) {
      --occupancy_[t.nodes[i].value()];
      continue;
    }
    remap[i] = static_cast<std::int32_t>(pruned.nodes.size());
    pruned.nodes.push_back(t.nodes[i]);
    pruned.parent.push_back(
        t.parent[i] < 0 ? -1 : remap[static_cast<std::size_t>(t.parent[i])]);
  }
  t = std::move(pruned);
}

void Routing::validate_tree(NetId net) const {
  const RouteTree& t = tree(net);
  EMUTILE_ASSERT(t.nodes.size() == t.parent.size(), "tree arrays mismatched");
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    EMUTILE_ASSERT(seen.insert(t.nodes[i].value()).second,
                   "duplicate node in route tree");
    const std::int32_t p = t.parent[i];
    if (p < 0) {
      EMUTILE_ASSERT(i == 0, "non-first root in route tree");
      continue;
    }
    EMUTILE_ASSERT(static_cast<std::size_t>(p) < i,
                   "tree parent does not precede child");
    // The RR edge parent -> child must exist.
    const RrNodeId from = t.nodes[static_cast<std::size_t>(p)];
    bool found = false;
    for (RrNodeId nb : rr_->fanout(from))
      if (nb == t.nodes[i]) {
        found = true;
        break;
      }
    EMUTILE_ASSERT(found, "route tree uses a non-existent RR edge");
  }
}

}  // namespace emutile
