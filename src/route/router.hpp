#pragma once
/// \file router.hpp
/// PathFinder negotiated-congestion router with A* directed search.
///
/// The router operates on NetTasks. A task names the net's source OPIN, the
/// SINK nodes still requiring connection, and (optionally) a kept forest
/// from a partial rip-up: the source-connected component is the starting
/// tree and each orphan subtree is a mandatory re-attachment target — this
/// is how re-routing confined to an unlocked tile preserves the locked
/// boundary crossings of nets that traverse the tile.
///
/// Confinement: params.allowed_mask restricts expansion to a node subset
/// (the unlocked region); nodes occupied to capacity by nets outside the
/// route set are hard obstacles. Congestion between nets of the route set
/// is negotiated PathFinder-style with growing present-sharing penalties
/// and first-order history costs.

#include <span>
#include <vector>

#include "place/placement.hpp"
#include "route/routing.hpp"
#include "synth/packer.hpp"

namespace emutile {

/// One net's routing work item.
struct NetTask {
  NetId net;
  RrNodeId source;               ///< source OPIN (root of the final tree)
  std::vector<RrNodeId> sinks;   ///< SINK nodes still needing connection
  RouteForest kept;              ///< surviving forest (may be empty)
};

struct RouterParams {
  int max_iterations = 45;
  int stagnation_limit = 15;      ///< give up after this many non-improving iters
  float pres_fac_first = 0.0f;   ///< first iteration explores congestion-free
  float pres_fac_init = 0.6f;
  float pres_fac_mult = 1.7f;
  float pres_fac_max = 256.0f;   ///< cap keeps the cost landscape sane
  float hist_fac = 0.5f;
  float astar_fac = 1.2f;        ///< >1 trades optimality for speed
  int bbox_margin = 3;           ///< search box slack around net terminals
  /// Optional confinement mask (size = rr.num_nodes(); nonzero = usable).
  const std::vector<std::uint8_t>* allowed_mask = nullptr;
};

struct RouteResult {
  bool success = false;
  int iterations = 0;
  std::size_t nets_routed = 0;
  std::size_t nodes_expanded = 0;
  double wall_ms = 0.0;
};

/// Stateless apart from scratch buffers; one instance per RR graph.
class Router {
 public:
  explicit Router(const RrGraph& rr);

  /// (Re)route every task. Tasks' nets must already be ripped in `routing`
  /// (fully, or partially with the forest passed in the task). All other
  /// nets' routing is treated as immovable obstacles.
  RouteResult route(std::vector<NetTask> tasks, Routing& routing,
                    const RouterParams& params);

 private:
  struct Target {
    bool is_orphan = false;
    int orphan_group = 0;     // valid when is_orphan
    RrNodeId sink;            // valid when !is_orphan
    float x = 0, y = 0;       // heuristic anchor
  };

  struct TaskState {
    NetTask task;
    RouteTree tree;                 // grows as targets connect
    std::vector<Target> pending;
    bool routed = false;
  };

  /// Route one net completely (all pending targets). Returns false if some
  /// target is unreachable under the current constraints.
  bool route_net(TaskState& state, Routing& routing,
                 const RouterParams& params, float pres_fac,
                 int extra_margin, RouteResult& result);

  /// Reset a task to its kept-forest state (used on rip-and-retry).
  void restore_kept(TaskState& state, Routing& routing);

  [[nodiscard]] float node_cost(RrNodeId node, const Routing& routing,
                                float pres_fac) const;

  const RrGraph* rr_;

  // Scratch, epoch-marked (sized to rr nodes).
  std::vector<float> cost_to_;              // tentative path cost
  std::vector<std::uint32_t> tent_epoch_;   // tentative-cost validity tag
  std::vector<std::uint32_t> visit_epoch_;  // settled tag
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> mark_epoch_;   // connected/orphan marking epoch
  std::vector<std::int32_t> mark_value_;    // 0 = connected, >0 orphan group
  std::vector<float> hist_cost_;
  std::vector<std::int32_t> locked_occ_;    // obstacle snapshot
  std::uint32_t epoch_ = 0;                 // per-search visit tag
  std::uint32_t mark_tag_ = 0;              // per-net mark tag
};

/// Build from-scratch route tasks for all physical nets (full routing).
[[nodiscard]] std::vector<NetTask> make_route_tasks(
    const RrGraph& rr, const PackedDesign& packed, const Placement& placement,
    std::span<const PhysNet> nets);

}  // namespace emutile
