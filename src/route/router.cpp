#include "route/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

namespace {

struct HeapEntry {
  float est;
  float cost;
  std::uint32_t node;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.est > b.est;
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

Router::Router(const RrGraph& rr) : rr_(&rr) {
  const std::size_t n = rr.num_nodes();
  cost_to_.assign(n, 0.0f);      // tentative cost (epoch-gated)
  visit_epoch_.assign(n, 0);     // settled tag
  prev_.assign(n, 0);
  mark_epoch_.assign(n, 0);
  mark_value_.assign(n, -1);
  hist_cost_.assign(n, 0.0f);
  locked_occ_.assign(n, 0);
  tent_epoch_.assign(n, 0);
}

float Router::node_cost(RrNodeId node, const Routing& routing,
                        float pres_fac) const {
  const RrNodeInfo& info = rr_->node(node);
  const int over_if_added =
      routing.occupancy(node) + 1 - static_cast<int>(info.capacity);
  const float congestion =
      over_if_added > 0 ? 1.0f + pres_fac * static_cast<float>(over_if_added)
                        : 1.0f;
  return (RrGraph::base_cost(info.type) + hist_cost_[node.value()]) *
             congestion +
         0.01f;  // keeps zero-base-cost nodes from being free
}

void Router::restore_kept(TaskState& state, Routing& routing) {
  routing.rip_up(state.task.net);
  // Re-install the kept forest so its occupancy is visible to other nets.
  if (!state.task.kept.empty()) {
    RouteTree forest;
    forest.nodes = state.task.kept.nodes;
    forest.parent = state.task.kept.parent;
    routing.set_tree(state.task.net, std::move(forest));
  }
  state.routed = false;
  state.tree.clear();
  state.pending.clear();
}

RouteResult Router::route(std::vector<NetTask> tasks, Routing& routing,
                          const RouterParams& params) {
  const auto t_start = std::chrono::steady_clock::now();
  RouteResult result;

  std::vector<TaskState> states;
  states.reserve(tasks.size());
  for (NetTask& task : tasks) {
    TaskState st;
    st.task = std::move(task);
    states.push_back(std::move(st));
  }
  // Install kept forests so locked boundary wiring is occupied from the start.
  for (TaskState& st : states) restore_kept(st, routing);

  // Anything occupied now (kept forests + untouched nets) is immovable; a
  // node already at capacity is a hard obstacle for every net but its owner.
  for (std::size_t i = 0; i < locked_occ_.size(); ++i)
    locked_occ_[i] = routing.occupancy(RrNodeId{static_cast<std::uint32_t>(i)});

  // Large-fanout nets first: they need the most routing freedom.
  std::sort(states.begin(), states.end(),
            [](const TaskState& a, const TaskState& b) {
              return a.task.sinks.size() > b.task.sinks.size();
            });

  std::vector<std::uint8_t> dirty(states.size(), 1);
  float pres_fac = params.pres_fac_first;
  std::size_t best_overused = static_cast<std::size_t>(-1);
  int stagnant_iters = 0;

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    bool all_ok = true;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!dirty[i]) continue;
      dirty[i] = 0;
      if (!route_net(states[i], routing, params, pres_fac, iter, result)) {
        all_ok = false;
        EMUTILE_DEBUG("router: net " << states[i].task.net
                                     << " unroutable at iteration " << iter);
      }
    }
    if (!all_ok) break;  // leaves result.success == false

    // Congestion check over the nodes our tasks use.
    std::unordered_set<std::uint32_t> overused;
    for (const TaskState& st : states) {
      if (!routing.has_tree(st.task.net)) continue;
      for (RrNodeId n : routing.tree(st.task.net).nodes)
        if (routing.overuse(n) > 0) overused.insert(n.value());
    }

    if (overused.empty()) {
      result.success = true;
      result.nets_routed = states.size();
      break;
    }
    if (log_threshold() <= LogLevel::kDebug) {
      std::ostringstream ids;
      int shown = 0;
      for (std::uint32_t n : overused) {
        if (++shown > 4) break;
        ids << ' ' << to_string(rr_->node(RrNodeId{n}).type) << '('
            << rr_->node(RrNodeId{n}).x << ',' << rr_->node(RrNodeId{n}).y
            << ")t" << rr_->node(RrNodeId{n}).pin_or_track;
      }
      EMUTILE_DEBUG("router iter " << iter << ": " << overused.size()
                                   << " overused, pres " << pres_fac << ':'
                                   << ids.str());
    }
    // Fail fast when congestion has stopped improving: the channel width is
    // insufficient and the caller will widen it (or grow the region).
    if (overused.size() < best_overused) {
      best_overused = overused.size();
      stagnant_iters = 0;
    } else if (++stagnant_iters >= params.stagnation_limit) {
      EMUTILE_DEBUG("router: congestion stagnant at " << overused.size()
                                                      << " nodes; giving up");
      break;
    }

    for (std::uint32_t n : overused)
      hist_cost_[n] +=
          params.hist_fac * static_cast<float>(routing.overuse(RrNodeId{n}));
    pres_fac = iter == 0
                   ? params.pres_fac_init
                   : std::min(params.pres_fac_max,
                              pres_fac * params.pres_fac_mult);

    // First-claim-keeps rip: on each overused node, the earliest nets (in
    // routing order) keep their use up to capacity; only the excess users
    // are ripped. Ripping every conflicting net symmetrically lets two nets
    // oscillate over the same resource forever. When first-claim itself
    // stagnates (the loser has no alternative while the winner sits on the
    // contested wire), periodically fall back to the symmetric policy so
    // the winner also moves and frees the chokepoint.
    const bool symmetric_round =
        stagnant_iters > 0 && stagnant_iters % 3 == 0;
    std::unordered_map<std::uint32_t, int> claims;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!routing.has_tree(states[i].task.net)) continue;
      const RouteTree& tree = routing.tree(states[i].task.net);
      bool can_keep = true;
      for (RrNodeId n : tree.nodes) {
        if (!overused.count(n.value())) continue;
        if (symmetric_round) {
          can_keep = false;
          break;
        }
        const int cap = rr_->node(n).capacity;
        auto it = claims.find(n.value());
        if (it != claims.end() && it->second >= cap) {
          can_keep = false;
          break;
        }
      }
      if (can_keep) {
        for (RrNodeId n : tree.nodes)
          if (overused.count(n.value())) ++claims[n.value()];
      } else {
        restore_kept(states[i], routing);
        dirty[i] = 1;
      }
    }
  }

  // On failure, put every task back to its kept-forest state so the caller
  // can retry with a larger region without losing locked boundary wiring.
  if (!result.success) {
    if (log_threshold() <= LogLevel::kDebug) {
      EMUTILE_DEBUG("occupancy audit: " << routing.audit_occupancy()
                                        << " mismatching nodes");
      for (const TaskState& st : states) {
        if (!routing.has_tree(st.task.net)) continue;
        for (RrNodeId n : routing.tree(st.task.net).nodes)
          if (routing.overuse(n) > 0) {
            int copies = 0;
            for (RrNodeId m : routing.tree(st.task.net).nodes)
              if (m == n) ++copies;
            EMUTILE_DEBUG("overused at give-up: "
                          << to_string(rr_->node(n).type) << " ("
                          << rr_->node(n).x << ',' << rr_->node(n).y
                          << ") track/pin " << rr_->node(n).pin_or_track
                          << " occ " << routing.occupancy(n) << " net "
                          << st.task.net << " copies-in-tree " << copies
                          << " src-node " << st.task.source << " locked "
                          << locked_occ_[n.value()] << " kept-size "
                          << st.task.kept.nodes.size() << " sinks "
                          << st.task.sinks.size());
          }
      }
    }
    for (TaskState& st : states) restore_kept(st, routing);
  }

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t_start)
                       .count();
  return result;
}

bool Router::route_net(TaskState& state, Routing& routing,
                       const RouterParams& params, float pres_fac,
                       int extra_margin, RouteResult& result) {
  const NetTask& task = state.task;
  const RouteForest& kept = task.kept;

  // Release this net's own occupancy while it is being rebuilt.
  routing.rip_up(task.net);

  // ---- marks: 0 = in tree (connected), g > 0 = orphan group g ----
  ++mark_tag_;
  const std::uint32_t mark_tag = mark_tag_;
  auto mark = [&](RrNodeId n, std::int32_t value) {
    mark_epoch_[n.value()] = mark_tag;
    mark_value_[n.value()] = value;
  };
  auto mark_of = [&](RrNodeId n) -> std::int32_t {
    return mark_epoch_[n.value()] == mark_tag ? mark_value_[n.value()] : -1;
  };

  // rr node -> index in state.tree.nodes (for parent wiring).
  std::unordered_map<std::uint32_t, std::int32_t> tidx;

  auto append_tree_node = [&](RrNodeId n, std::int32_t parent_idx) {
    state.tree.nodes.push_back(n);
    state.tree.parent.push_back(parent_idx);
    tidx[n.value()] = static_cast<std::int32_t>(state.tree.nodes.size()) - 1;
    mark(n, 0);
  };

  // ---- initial tree: kept source-connected component, or bare source ----
  state.tree.clear();
  std::vector<std::vector<std::int32_t>> group_members(
      static_cast<std::size_t>(kept.num_orphan_groups) + 1);
  for (std::size_t i = 0; i < kept.nodes.size(); ++i)
    group_members[static_cast<std::size_t>(kept.group[i])].push_back(
        static_cast<std::int32_t>(i));

  if (!group_members[0].empty()) {
    for (std::int32_t ki : group_members[0]) {
      const auto k = static_cast<std::size_t>(ki);
      const std::int32_t kp = kept.parent[k];
      std::int32_t parent_idx = -1;
      if (kp >= 0) {
        auto it = tidx.find(kept.nodes[static_cast<std::size_t>(kp)].value());
        EMUTILE_ASSERT(it != tidx.end(), "kept forest order violated");
        parent_idx = it->second;
      }
      append_tree_node(kept.nodes[k], parent_idx);
    }
    EMUTILE_ASSERT(state.tree.nodes[0] == task.source,
                   "kept tree root is not the net source");
  } else {
    append_tree_node(task.source, -1);
  }

  // Orphan entry is only valid where the attachment edge direction works
  // out: wire nodes always (wire-wire switches are bidirectional); an IPIN
  // only when its group has no wires at all (pin-only stub entered through
  // the wire->IPIN connection box); SINKs never.
  std::vector<std::uint8_t> group_has_wire(
      static_cast<std::size_t>(kept.num_orphan_groups) + 1, 0);
  for (int g = 1; g <= kept.num_orphan_groups; ++g)
    for (std::int32_t ki : group_members[static_cast<std::size_t>(g)]) {
      const RrNodeId n = kept.nodes[static_cast<std::size_t>(ki)];
      mark(n, g);
      const RrType ty = rr_->node(n).type;
      if (ty == RrType::kChanX || ty == RrType::kChanY)
        group_has_wire[static_cast<std::size_t>(g)] = 1;
    }
  auto orphan_enterable = [&](RrNodeId n, int g) {
    const RrType ty = rr_->node(n).type;
    if (ty == RrType::kChanX || ty == RrType::kChanY) return true;
    return ty == RrType::kIpin &&
           !group_has_wire[static_cast<std::size_t>(g)];
  };

  // ---- pending targets ----
  state.pending.clear();
  for (RrNodeId sink : task.sinks) {
    if (mark_of(sink) >= 0) continue;  // already carried by the kept forest
    Target t;
    t.is_orphan = false;
    t.sink = sink;
    t.x = static_cast<float>(rr_->node(sink).x) + 0.5f;
    t.y = static_cast<float>(rr_->node(sink).y) + 0.5f;
    state.pending.push_back(t);
  }
  std::vector<std::uint8_t> group_pending(
      static_cast<std::size_t>(kept.num_orphan_groups) + 1, 0);
  for (int g = 1; g <= kept.num_orphan_groups; ++g) {
    if (group_members[static_cast<std::size_t>(g)].empty()) continue;
    Target t;
    t.is_orphan = true;
    t.orphan_group = g;
    const RrNodeId anchor = kept.nodes[static_cast<std::size_t>(
        group_members[static_cast<std::size_t>(g)].front())];
    t.x = static_cast<float>(rr_->node(anchor).x);
    t.y = static_cast<float>(rr_->node(anchor).y);
    state.pending.push_back(t);
    group_pending[static_cast<std::size_t>(g)] = 1;
  }

  if (state.pending.empty()) {
    routing.set_tree(task.net, state.tree);
    state.routed = true;
    return true;
  }

  // ---- search bounding box over all terminals and kept wiring ----
  float bx0 = rr_->node(task.source).x, bx1 = bx0;
  float by0 = rr_->node(task.source).y, by1 = by0;
  auto grow_box = [&](float x, float y) {
    bx0 = std::min(bx0, x);
    bx1 = std::max(bx1, x);
    by0 = std::min(by0, y);
    by1 = std::max(by1, y);
  };
  for (const Target& t : state.pending) grow_box(t.x, t.y);
  for (const RrNodeId n : kept.nodes)
    grow_box(static_cast<float>(rr_->node(n).x),
             static_cast<float>(rr_->node(n).y));
  // The search box grows with every failed congestion iteration so nets can
  // take progressively longer detours (VPR-style bounding-box relaxation).
  const float margin = static_cast<float>(params.bbox_margin) +
                       2.0f * static_cast<float>(std::min(extra_margin, 8));
  bx0 -= margin;
  bx1 += margin;
  by0 -= margin;
  by1 += margin;

  std::unordered_set<std::uint32_t> pending_sink_sites;
  auto refresh_sites = [&] {
    pending_sink_sites.clear();
    for (const Target& t : state.pending)
      if (!t.is_orphan) pending_sink_sites.insert(rr_->node(t.sink).site);
  };
  refresh_sites();

  auto heuristic = [&](RrNodeId n) {
    // With many pending targets the min-distance scan dominates runtime;
    // fall back to Dijkstra (h = 0), which the bounding box keeps cheap.
    if (state.pending.size() > 8) return 0.0f;
    const RrNodeInfo& info = rr_->node(n);
    float best = 1e30f;
    for (const Target& t : state.pending) {
      const float d = std::abs(static_cast<float>(info.x) - t.x) +
                      std::abs(static_cast<float>(info.y) - t.y);
      best = std::min(best, d);
    }
    return params.astar_fac * best;
  };

  // ---- connect every pending target, nearest-first by search order ----
  while (!state.pending.empty()) {
    ++epoch_;
    const std::uint32_t visit_tag = epoch_;
    MinHeap heap;

    auto relax = [&](RrNodeId n, float cost, std::uint32_t prev) {
      if (visit_epoch_[n.value()] == visit_tag) return;  // settled
      if (tent_epoch_[n.value()] == visit_tag &&
          cost_to_[n.value()] <= cost)
        return;  // no improvement
      tent_epoch_[n.value()] = visit_tag;
      cost_to_[n.value()] = cost;
      prev_[n.value()] = prev;
      heap.push(HeapEntry{cost + heuristic(n), cost, n.value()});
    };

    for (RrNodeId n : state.tree.nodes) relax(n, 0.0f, n.value());

    bool reached = false;
    RrNodeId reached_node;
    std::int32_t reached_kind = -1;  // 0 sink; > 0 orphan group
    std::size_t settled = 0;

    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      const RrNodeId node{top.node};
      if (visit_epoch_[top.node] == visit_tag) continue;
      visit_epoch_[top.node] = visit_tag;
      ++result.nodes_expanded;
      ++settled;

      const std::int32_t m = mark_of(node);
      if (m > 0 && group_pending[static_cast<std::size_t>(m)]) {
        reached = true;
        reached_node = node;
        reached_kind = m;
        break;
      }
      // SINKs that are not already part of the tree terminate the search;
      // expansion gating guarantees they belong to a pending target site.
      if (m != 0 && rr_->node(node).type == RrType::kSink) {
        reached = true;
        reached_node = node;
        reached_kind = 0;
        break;
      }

      for (RrNodeId nb : rr_->fanout(node)) {
        if (visit_epoch_[nb.value()] == visit_tag) continue;
        const std::int32_t nb_mark = mark_of(nb);
        if (nb_mark == 0) continue;  // already in the growing tree
        if (nb_mark > 0 && !orphan_enterable(nb, nb_mark)) continue;
        const RrNodeInfo& info = rr_->node(nb);
        if (nb_mark < 0) {
          // Regular node: confinement, obstacles, box, pin gating.
          if (params.allowed_mask && !(*params.allowed_mask)[nb.value()])
            continue;
          if (locked_occ_[nb.value()] >=
              static_cast<std::int32_t>(info.capacity))
            continue;  // hard obstacle (locked net / kept interface)
          const auto nx = static_cast<float>(info.x);
          const auto ny = static_cast<float>(info.y);
          if (nx < bx0 || nx > bx1 || ny < by0 || ny > by1) continue;
          if ((info.type == RrType::kIpin || info.type == RrType::kSink) &&
              !pending_sink_sites.count(info.site))
            continue;
          if (info.type == RrType::kOpin) continue;  // never route through
        }
        // Orphan nodes (nb_mark > 0) are always enterable: reattachment at
        // the locked boundary crossing.
        relax(nb, top.cost + node_cost(nb, routing, pres_fac), top.node);
      }
    }

    if (!reached) {
      EMUTILE_DEBUG("route_net " << task.net << ": no path to "
                                 << state.pending.size()
                                 << " remaining target(s); first is "
                                 << (state.pending[0].is_orphan ? "orphan"
                                                                : "sink")
                                 << " at (" << state.pending[0].x << ','
                                 << state.pending[0].y << "); tree "
                                 << state.tree.nodes.size() << " nodes, box ["
                                 << bx0 << ',' << bx1 << "]x[" << by0 << ','
                                 << by1 << "], src ("
                                 << rr_->node(task.source).x << ','
                                 << rr_->node(task.source).y << ") kept "
                                 << kept.nodes.size() << " in "
                                 << kept.num_orphan_groups << " orphans, "
                                 << settled << " settled");
      if (log_threshold() <= LogLevel::kDebug) {
        float mx = -99, my = -99, mnx = 99, mny = 99;
        for (std::size_t v = 0; v < visit_epoch_.size(); ++v) {
          if (visit_epoch_[v] != visit_tag) continue;
          const RrNodeInfo& inf = rr_->node(RrNodeId{static_cast<std::uint32_t>(v)});
          if (inf.type != RrType::kChanX && inf.type != RrType::kChanY) continue;
          mx = std::max(mx, static_cast<float>(inf.x));
          my = std::max(my, static_cast<float>(inf.y));
          mnx = std::min(mnx, static_cast<float>(inf.x));
          mny = std::min(mny, static_cast<float>(inf.y));
        }
        EMUTILE_DEBUG("  settled wire extent x[" << mnx << ',' << mx << "] y["
                                                 << mny << ',' << my << ']');
      }
      return false;
    }

    // ---- backtrace: reached_node .. seed (seed has prev == self) ----
    std::vector<RrNodeId> path;
    {
      std::uint32_t cur = reached_node.value();
      while (prev_[cur] != cur) {
        path.push_back(RrNodeId{cur});
        cur = prev_[cur];
      }
      path.push_back(RrNodeId{cur});
      std::reverse(path.begin(), path.end());
    }

    // Append the path; path[0] is the seed, already in the tree.
    std::int32_t parent_idx = tidx.at(path[0].value());
    for (std::size_t i = 1; i < path.size(); ++i) {
      EMUTILE_ASSERT(mark_of(path[i]) != 0, "path re-enters tree");
      append_tree_node(path[i], parent_idx);
      parent_idx = static_cast<std::int32_t>(state.tree.nodes.size()) - 1;
    }

    if (reached_kind > 0) {
      // Merge the orphan group: re-root its subtree at reached_node. Edge
      // orientation matters — wire-wire switches work both ways, but
      // wire->IPIN and IPIN->SINK only forward — so the BFS may traverse a
      // kept edge forward always, and backward only between two wires.
      const int g = reached_kind;
      const auto& members = group_members[static_cast<std::size_t>(g)];
      auto is_wire = [&](std::uint32_t v) {
        const RrType ty = rr_->node(RrNodeId{v}).type;
        return ty == RrType::kChanX || ty == RrType::kChanY;
      };
      std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
      for (std::int32_t ki : members) {
        const auto k = static_cast<std::size_t>(ki);
        const std::int32_t kp = kept.parent[k];
        if (kp < 0) continue;
        const std::uint32_t child = kept.nodes[k].value();
        const std::uint32_t parent =
            kept.nodes[static_cast<std::size_t>(kp)].value();
        adj[parent].push_back(child);  // forward: always valid
        if (is_wire(parent) && is_wire(child))
          adj[child].push_back(parent);  // reverse: wires only
      }
      std::vector<std::uint32_t> queue{reached_node.value()};
      std::unordered_set<std::uint32_t> visited{reached_node.value()};
      std::size_t head = 0;
      while (head < queue.size()) {
        const std::uint32_t cur = queue[head++];
        for (std::uint32_t nb : adj[cur]) {
          if (!visited.insert(nb).second) continue;
          append_tree_node(RrNodeId{nb}, tidx.at(cur));
          queue.push_back(nb);
        }
      }
      EMUTILE_ASSERT(visited.size() == members.size(),
                     "orphan re-rooting left nodes unreachable");
      group_pending[static_cast<std::size_t>(g)] = 0;
      std::erase_if(state.pending, [&](const Target& t) {
        return t.is_orphan && t.orphan_group == g;
      });
    } else {
      std::erase_if(state.pending, [&](const Target& t) {
        return !t.is_orphan && t.sink == reached_node;
      });
      refresh_sites();
    }
  }

  // Structural guard: exactly one OPIN (the root) per tree.
  for (std::size_t i = 1; i < state.tree.nodes.size(); ++i)
    EMUTILE_ASSERT(rr_->node(state.tree.nodes[i]).type != RrType::kOpin,
                   "net " << task.net << ": non-root OPIN in route tree");

  routing.set_tree(task.net, state.tree);
  state.routed = true;
  return true;
}

std::vector<NetTask> make_route_tasks(const RrGraph& rr,
                                      const PackedDesign& packed,
                                      const Placement& placement,
                                      std::span<const PhysNet> nets) {
  std::vector<NetTask> tasks;
  tasks.reserve(nets.size());
  for (const PhysNet& n : nets) {
    NetTask t;
    t.net = n.net;
    t.source = rr.opin(placement.site_of(n.src_inst), n.src_opin);
    for (InstId s : n.sink_insts)
      t.sinks.push_back(rr.sink(placement.site_of(s)));
    tasks.push_back(std::move(t));
  }
  (void)packed;
  return tasks;
}

}  // namespace emutile
