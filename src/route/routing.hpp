#pragma once
/// \file routing.hpp
/// Routing state: one route tree per netlist net plus RR-node occupancy.
///
/// A route tree is stored as a node array with parent indices; the root is
/// the net's source OPIN. Partial rip-up (the key primitive behind the
/// paper's locked tile interfaces) removes only the nodes inside an unlocked
/// region and returns the surviving forest: the source-connected component
/// plus "orphan" subtrees that still carry routing to locked sinks and must
/// be re-attached by the router at their (fixed) boundary crossing points.

#include <cstdint>
#include <span>
#include <vector>

#include "arch/rr_graph.hpp"
#include "util/ids.hpp"

namespace emutile {

/// A routed net: nodes[0..n) with parent[i] indexing into nodes (-1 = root).
struct RouteTree {
  std::vector<RrNodeId> nodes;
  std::vector<std::int32_t> parent;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
  [[nodiscard]] std::size_t size() const { return nodes.size(); }
  void clear() {
    nodes.clear();
    parent.clear();
  }
};

/// Forest left over after a partial rip-up.
/// group[i] == 0 means node i is in the source-connected component;
/// group[i] == g > 0 assigns it to orphan subtree g (1-based).
struct RouteForest {
  std::vector<RrNodeId> nodes;
  std::vector<std::int32_t> parent;
  std::vector<std::int32_t> group;
  int num_orphan_groups = 0;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
};

/// Occupancy-tracked routing database, keyed by netlist NetId.
class Routing {
 public:
  explicit Routing(const RrGraph& rr);

  /// Rebinding copy: same trees/occupancy as `other`, referencing `rr`
  /// (which must be structurally identical). Used for design cloning.
  Routing(const RrGraph& rr, const Routing& other);

  [[nodiscard]] const RrGraph& rr() const { return *rr_; }

  [[nodiscard]] bool has_tree(NetId net) const;
  [[nodiscard]] const RouteTree& tree(NetId net) const;

  /// Install a tree (occupancy updated; any previous tree is ripped first).
  void set_tree(NetId net, RouteTree tree);

  /// Remove a net's routing entirely.
  void rip_up(NetId net);

  /// Remove only the nodes for which `rip_mask[node] != 0`; returns the
  /// surviving forest (empty if the whole tree was ripped). `source` is the
  /// net's true source OPIN: the surviving component rooted there becomes
  /// group 0; every other surviving component becomes an orphan group.
  RouteForest rip_up_partial(NetId net, const std::vector<std::uint8_t>& rip_mask,
                             RrNodeId source);

  [[nodiscard]] int occupancy(RrNodeId node) const {
    return occupancy_[node.value()];
  }
  [[nodiscard]] int overuse(RrNodeId node) const {
    return std::max(0, occupancy_[node.value()] -
                           static_cast<int>(rr_->node(node).capacity));
  }

  /// Total number of overused RR nodes (0 = legal routing).
  [[nodiscard]] std::size_t count_overused() const;

  /// Invariant check: occupancy table equals the recount over all trees.
  /// Returns the number of mismatching nodes (0 = consistent).
  [[nodiscard]] std::size_t audit_occupancy() const;

  /// Sum of wire nodes over all trees (wirelength proxy).
  [[nodiscard]] std::size_t total_wire_nodes() const;

  /// Path from the tree root to the given node (inclusive); used by STA.
  /// Throws if the node is not in the net's tree.
  [[nodiscard]] std::vector<RrNodeId> path_to(NetId net, RrNodeId node) const;

  /// Prune a tree down to the union of root->sink paths for the given SINK
  /// nodes (all must be present in the tree). Freed nodes release occupancy.
  /// Used when a sink is detached (e.g. test-logic removal): the dangling
  /// branch disappears without touching any other routing.
  void prune_to_sinks(NetId net, const std::vector<RrNodeId>& wanted_sinks);

  /// Structural validation of one tree: parents precede children, every
  /// non-root edge exists in the RR graph, no duplicate nodes.
  void validate_tree(NetId net) const;

 private:
  const RrGraph* rr_;
  std::vector<RouteTree> trees_;  // dense by NetId value
  std::vector<std::int32_t> occupancy_;
};

}  // namespace emutile
