#include "place/placer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

int PlaceConstraints::add_region(std::vector<Rect> rects) {
  EMUTILE_CHECK(!rects.empty(), "region needs at least one rect");
  for (const Rect& r : rects)
    EMUTILE_CHECK(r.area() > 0, "empty placement region rect");
  regions_.push_back(std::move(rects));
  return static_cast<int>(regions_.size()) - 1;
}

void PlaceConstraints::assign_region(InstId inst, int region_index) {
  EMUTILE_CHECK(region_index >= 0 &&
                    region_index < static_cast<int>(regions_.size()),
                "bad region index");
  region_.at(inst.value()) = region_index;
}

void PlaceConstraints::set_region(InstId inst, const Rect& r) {
  assign_region(inst, add_region({r}));
}

bool PlaceConstraints::site_allowed(const Device& device, InstId inst,
                                    SiteIndex site) const {
  if (!device.is_clb_site(site)) return true;  // IOBs: class check elsewhere
  const int r = region_index(inst);
  if (r < 0) return true;
  auto [x, y] = device.clb_xy(site);
  for (const Rect& rect : regions_[static_cast<std::size_t>(r)])
    if (rect.contains(x, y)) return true;
  return false;
}

Placer::Placer(const Device& device, const PackedDesign& packed,
               std::span<const PhysNet> nets)
    : device_(&device), packed_(&packed), nets_(nets) {
  nets_of_inst_.resize(packed.inst_bound());
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    const PhysNet& n = nets_[i];
    nets_of_inst_[n.src_inst.value()].push_back(i);
    for (InstId s : n.sink_insts)
      if (s != n.src_inst) nets_of_inst_[s.value()].push_back(i);
  }
}

double Placer::crossing_factor(std::size_t terminals) {
  // VPR's q(t) crossing-count correction (Cheng, 1994).
  static constexpr double kQ[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                  1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                  1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                  1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                  1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                  2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                  2.2334, 2.2646, 2.2958, 2.3271, 2.3583,
                                  2.3895, 2.4187, 2.4479, 2.4772, 2.5064,
                                  2.5356, 2.5610, 2.5864, 2.6117, 2.6371,
                                  2.6625, 2.6887, 2.7148, 2.7410, 2.7671};
  if (terminals < std::size(kQ)) return kQ[terminals];
  return 2.7933 + 0.02616 * (static_cast<double>(terminals) - 50.0);
}

Placer::NetBox Placer::net_box(const Placement& placement,
                               std::size_t net_index) const {
  const PhysNet& n = nets_[net_index];
  auto [x, y] = placement.position(n.src_inst);
  NetBox box{x, x, y, y, 0.0};
  for (InstId s : n.sink_insts) {
    auto [sx, sy] = placement.position(s);
    box.x_min = std::min(box.x_min, sx);
    box.x_max = std::max(box.x_max, sx);
    box.y_min = std::min(box.y_min, sy);
    box.y_max = std::max(box.y_max, sy);
  }
  box.cost = crossing_factor(n.sink_insts.size() + 1) *
             ((box.x_max - box.x_min) + (box.y_max - box.y_min));
  return box;
}

double Placer::wirelength_cost(const Placement& placement) const {
  double total = 0.0;
  for (std::size_t i = 0; i < nets_.size(); ++i)
    total += net_box(placement, i).cost;
  return total;
}

void Placer::seed_unplaced(Placement& placement,
                           const PlaceConstraints& constraints, Rng& rng,
                           bool near_neighbors) const {
  // Collect unplaced live instances.
  std::vector<InstId> pending;
  for (InstId id : packed_->live_insts())
    if (!placement.is_placed(id)) pending.push_back(id);
  if (pending.empty()) return;

  // Free sites by class.
  std::vector<SiteIndex> free_clb, free_iob;
  for (SiteIndex s = 0; s < static_cast<SiteIndex>(device_->num_sites()); ++s) {
    if (placement.inst_at(s).valid()) continue;
    (device_->is_clb_site(s) ? free_clb : free_iob).push_back(s);
  }
  std::shuffle(free_clb.begin(), free_clb.end(), rng);
  std::shuffle(free_iob.begin(), free_iob.end(), rng);

  // In near-neighbor mode, aim each instance at the centroid of its already
  // placed net neighbors (incremental ECOs: new logic lands next to the
  // logic it connects to).
  auto centroid_of = [&](InstId id) -> std::optional<std::pair<double, double>> {
    double cx = 0, cy = 0;
    int n = 0;
    for (std::uint32_t ni : nets_of_inst_[id.value()]) {
      const PhysNet& net = nets_[ni];
      auto consider = [&](InstId other) {
        if (other == id || !placement.is_placed(other)) return;
        auto [x, y] = placement.position(other);
        cx += x;
        cy += y;
        ++n;
      };
      consider(net.src_inst);
      for (InstId s : net.sink_insts) consider(s);
    }
    if (n == 0) return std::nullopt;
    return std::make_pair(cx / n, cy / n);
  };

  for (InstId id : pending) {
    auto& pool = packed_->inst(id).is_clb() ? free_clb : free_iob;
    std::size_t chosen = pool.size();
    if (near_neighbors) {
      if (auto c = centroid_of(id)) {
        double best = 1e300;
        for (std::size_t k = 0; k < pool.size(); ++k) {
          if (!constraints.site_allowed(*device_, id, pool[k])) continue;
          auto [x, y] = device_->site_center(pool[k]);
          const double d = std::abs(x - c->first) + std::abs(y - c->second);
          if (d < best) {
            best = d;
            chosen = k;
          }
        }
      }
    }
    if (chosen == pool.size()) {
      for (std::size_t k = 0; k < pool.size(); ++k)
        if (constraints.site_allowed(*device_, id, pool[k])) {
          chosen = k;
          break;
        }
    }
    EMUTILE_CHECK(chosen < pool.size(),
                  "no free site for instance '"
                      << packed_->inst(id).name
                      << "' (region capacity exhausted)");
    placement.set(id, pool[chosen]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen));
  }
}

PlaceResult Placer::place(Placement& placement, const PlacerParams& params) {
  const PlaceConstraints unconstrained(packed_->inst_bound());
  return place(placement, params, unconstrained);
}

PlaceResult Placer::place(Placement& placement, const PlacerParams& params,
                          const PlaceConstraints& constraints) {
  const auto t_start = std::chrono::steady_clock::now();
  Rng rng(params.seed);
  PlaceResult result;

  // From-scratch mode restarts movable instances from random seeds.
  if (!params.incremental) {
    for (InstId id : packed_->live_insts())
      if (constraints.movable(id) && placement.is_placed(id))
        placement.clear(id);
  }
  seed_unplaced(placement, constraints, rng, params.incremental);

  // Movable instance set.
  std::vector<InstId> movable;
  for (InstId id : packed_->live_insts())
    if (constraints.movable(id)) movable.push_back(id);

  // Per-net cached boxes and total cost.
  std::vector<NetBox> boxes(nets_.size());
  double cost = 0.0;
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    boxes[i] = net_box(placement, i);
    cost += boxes[i].cost;
  }
  result.initial_cost = cost;

  if (movable.size() < 2 || nets_.empty()) {
    result.final_cost = cost;
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t_start)
                         .count();
    return result;
  }

  // ---- move machinery ----
  std::vector<std::uint32_t> touched;  // net indices affected by a move
  std::vector<std::uint32_t> net_mark(nets_.size(), 0);
  std::uint32_t epoch = 0;

  auto collect_nets = [&](InstId inst) {
    for (std::uint32_t n : nets_of_inst_[inst.value()]) {
      if (net_mark[n] == epoch) continue;
      net_mark[n] = epoch;
      touched.push_back(n);
    }
  };

  const int grid_max = std::max(device_->width(), device_->height());
  double window = grid_max;

  auto propose_target = [&](InstId a) -> SiteIndex {
    const SiteIndex sa = placement.site_of(a);
    if (device_->is_clb_site(sa)) {
      auto [x, y] = device_->clb_xy(sa);
      const int w = std::max(1, static_cast<int>(window));
      const int r = constraints.region_index(a);
      Rect lim{0, 0, device_->width(), device_->height()};
      if (r >= 0) {
        // Union-of-rects region: pick a rect (area-weighted).
        const auto& rects = constraints.region_rects(r);
        if (rects.size() == 1) {
          lim = rects[0];
        } else {
          int total = 0;
          for (const Rect& rc : rects) total += rc.area();
          int pick = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(total)));
          lim = rects.back();
          for (const Rect& rc : rects) {
            if (pick < rc.area()) {
              lim = rc;
              break;
            }
            pick -= rc.area();
          }
        }
      }
      int x0 = std::max(lim.x0, x - w), x1 = std::min(lim.x1 - 1, x + w);
      int y0 = std::max(lim.y0, y - w), y1 = std::min(lim.y1 - 1, y + w);
      if (x0 > x1 || y0 > y1) {
        // Window misses the chosen rect (instance sits in another rect of
        // the union): jump anywhere inside the rect.
        x0 = lim.x0;
        x1 = lim.x1 - 1;
        y0 = lim.y0;
        y1 = lim.y1 - 1;
      }
      const int tx = static_cast<int>(rng.next_in(x0, x1));
      const int ty = static_cast<int>(rng.next_in(y0, y1));
      return device_->clb_site(tx, ty);
    }
    // IOB: pick within a perimeter window.
    const int perim = device_->num_iob_sites();
    const int cur = static_cast<int>(sa) - device_->num_clb_sites();
    const int w = std::max(
        1, static_cast<int>(window * perim / static_cast<double>(grid_max)));
    const int off = static_cast<int>(rng.next_in(-w, w));
    return device_->iob_site(((cur + off) % perim + perim) % perim);
  };

  auto try_move = [&](double temperature) {
    ++result.moves_attempted;
    const InstId a = movable[rng.next_below(movable.size())];
    const SiteIndex sa = placement.site_of(a);
    const SiteIndex target = propose_target(a);
    if (target == kInvalidSite || target == sa) return;
    const InstId b = placement.inst_at(target);
    if (b.valid()) {
      if (!constraints.movable(b)) return;
      if (!constraints.site_allowed(*device_, b, sa)) return;
    }

    ++epoch;
    touched.clear();
    collect_nets(a);
    if (b.valid()) collect_nets(b);

    double old_cost = 0.0;
    for (std::uint32_t n : touched) old_cost += boxes[n].cost;

    // Apply tentatively.
    if (b.valid())
      placement.swap(a, b);
    else
      placement.move(a, target);

    double new_cost = 0.0;
    for (std::uint32_t n : touched) new_cost += net_box(placement, n).cost;

    const double delta = new_cost - old_cost;
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.next_double() < std::exp(-delta / temperature));
    if (accept) {
      for (std::uint32_t n : touched) boxes[n] = net_box(placement, n);
      cost += delta;
      ++result.moves_accepted;
    } else {
      // Revert.
      if (b.valid())
        placement.swap(a, b);
      else
        placement.move(a, sa);
    }
  };

  // ---- initial temperature from cost-delta spread ----
  double temperature;
  {
    const std::size_t probes = std::min<std::size_t>(movable.size(), 64);
    double sum = 0.0, sum2 = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < probes; ++i) {
      // Evaluate a random swap delta without keeping it: reuse try_move at
      // infinite temperature, then track via cost history.
      const double before = cost;
      try_move(1e30);
      const double d = cost - before;
      sum += d;
      sum2 += d * d;
      ++n;
    }
    const double mean = sum / static_cast<double>(std::max<std::size_t>(n, 1));
    const double var =
        sum2 / static_cast<double>(std::max<std::size_t>(n, 1)) - mean * mean;
    const double stddev = std::sqrt(std::max(0.0, var));
    temperature = params.incremental ? 0.05 * stddev + 1e-6
                                     : 20.0 * stddev + 1e-6;
  }

  const double moves_per_t_f =
      params.effort *
      std::pow(static_cast<double>(movable.size()), 4.0 / 3.0);
  const std::size_t moves_per_t =
      std::max<std::size_t>(16, static_cast<std::size_t>(moves_per_t_f));
  const double exit_temp =
      params.exit_scale * std::max(cost, 1.0) / static_cast<double>(nets_.size());

  std::size_t guard = 0;
  while (temperature > exit_temp && guard++ < 4096) {
    const std::size_t before_acc = result.moves_accepted;
    for (std::size_t m = 0; m < moves_per_t; ++m) try_move(temperature);
    const double ratio =
        static_cast<double>(result.moves_accepted - before_acc) /
        static_cast<double>(moves_per_t);

    double alpha;
    if (ratio > 0.96)
      alpha = 0.5;
    else if (ratio > 0.8)
      alpha = 0.9;
    else if (ratio > 0.15)
      alpha = 0.95;
    else
      alpha = 0.8;
    temperature *= alpha;

    window = std::clamp(window * (1.0 - 0.44 + ratio), 1.0,
                        static_cast<double>(grid_max));
  }

  // Final greedy pass at zero temperature.
  for (std::size_t m = 0; m < moves_per_t; ++m) try_move(0.0);

  result.final_cost = cost;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t_start)
                       .count();
  EMUTILE_DEBUG("placer: cost " << result.initial_cost << " -> "
                                << result.final_cost << " in "
                                << result.moves_attempted << " moves, "
                                << result.wall_ms << " ms");
  return result;
}

}  // namespace emutile
