#pragma once
/// \file placer.hpp
/// Simulated-annealing placer (VPR-style) with region constraints.
///
/// The cost function is half-perimeter wirelength with the classic crossing
/// correction q(t) for nets of t terminals. The schedule is adaptive: the
/// initial temperature comes from the cost-delta spread of random moves, the
/// per-temperature move budget scales as effort * N^(4/3), the cooling rate
/// adapts to the acceptance ratio, and the move-range window shrinks toward
/// an acceptance target of 0.44.
///
/// Region constraints are what the tiling engine uses: an instance may be
/// pinned (immovable) or restricted to a rectangle of CLB sites; moves that
/// would violate a constraint are never proposed. An incremental mode starts
/// from the current placement at low temperature (the "incremental
/// place-and-route" baseline of the paper's Section 6).

#include <span>
#include <vector>

#include "place/placement.hpp"
#include "synth/packer.hpp"
#include "util/rng.hpp"

namespace emutile {

/// Per-instance placement constraints (indexed by InstId).
/// A region is a union of CLB-coordinate rectangles (an affected-tile set is
/// generally not one rectangle).
class PlaceConstraints {
 public:
  PlaceConstraints() = default;
  explicit PlaceConstraints(std::size_t inst_bound)
      : movable_(inst_bound, true), region_(inst_bound, -1) {}

  void set_movable(InstId inst, bool movable) { movable_.at(inst.value()) = movable; }
  [[nodiscard]] bool movable(InstId inst) const {
    return inst.value() < movable_.size() ? movable_[inst.value()] != 0 : true;
  }

  /// Register a region (union of rects); returns its index.
  int add_region(std::vector<Rect> rects);
  /// Restrict a CLB instance to a registered region.
  void assign_region(InstId inst, int region_index);
  /// Convenience: single-rect region.
  void set_region(InstId inst, const Rect& r);

  /// -1 when unconstrained, else index into regions().
  [[nodiscard]] int region_index(InstId inst) const {
    return inst.value() < region_.size() ? region_[inst.value()] : -1;
  }
  [[nodiscard]] const std::vector<Rect>& region_rects(int index) const {
    return regions_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] bool site_allowed(const Device& device, InstId inst,
                                  SiteIndex site) const;

  void resize(std::size_t inst_bound) {
    movable_.resize(inst_bound, true);
    region_.resize(inst_bound, -1);
  }

 private:
  std::vector<std::uint8_t> movable_;
  std::vector<std::int32_t> region_;
  std::vector<std::vector<Rect>> regions_;
};

struct PlacerParams {
  std::uint64_t seed = 1;
  /// Anneal effort multiplier (VPR inner_num); 1.0 = standard quality.
  double effort = 1.0;
  /// Incremental mode: keep the existing placement as the starting point and
  /// anneal from a low temperature (refinement, not from-scratch).
  bool incremental = false;
  /// Exit temperature scale factor.
  double exit_scale = 0.005;
};

struct PlaceResult {
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::size_t moves_attempted = 0;
  std::size_t moves_accepted = 0;
  double wall_ms = 0.0;
};

/// The annealer. Holds references; callers own all data structures.
class Placer {
 public:
  Placer(const Device& device, const PackedDesign& packed,
         std::span<const PhysNet> nets);

  /// Place from scratch (or refine, per params.incremental), honoring
  /// `constraints`. Unplaced movable instances are first seeded into free
  /// allowed sites. Throws CheckError if a region lacks capacity.
  PlaceResult place(Placement& placement, const PlacerParams& params,
                    const PlaceConstraints& constraints);

  /// Convenience: unconstrained placement of everything.
  PlaceResult place(Placement& placement, const PlacerParams& params);

  /// Current half-perimeter wirelength cost of a full placement.
  [[nodiscard]] double wirelength_cost(const Placement& placement) const;

 private:
  struct NetBox {
    double x_min = 0, x_max = 0, y_min = 0, y_max = 0;
    double cost = 0;
  };

  void seed_unplaced(Placement& placement, const PlaceConstraints& constraints,
                     Rng& rng, bool near_neighbors) const;
  [[nodiscard]] NetBox net_box(const Placement& placement,
                               std::size_t net_index) const;
  [[nodiscard]] static double crossing_factor(std::size_t terminals);

  const Device* device_;
  const PackedDesign* packed_;
  std::span<const PhysNet> nets_;
  std::vector<std::vector<std::uint32_t>> nets_of_inst_;
  std::vector<InstId> terminals_scratch_;
};

}  // namespace emutile
