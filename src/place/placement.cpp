#include "place/placement.hpp"

namespace emutile {

Placement::Placement(const Device& device, const PackedDesign& packed)
    : device_(&device), packed_(&packed) {
  site_of_.assign(packed.inst_bound(), kInvalidSite);
  inst_at_.assign(static_cast<std::size_t>(device.num_sites()),
                  InstId::invalid());
}

Placement::Placement(const Device& device, const PackedDesign& packed,
                     const Placement& other)
    : device_(&device),
      packed_(&packed),
      site_of_(other.site_of_),
      inst_at_(other.inst_at_) {
  EMUTILE_CHECK(device.num_sites() == other.device_->num_sites(),
                "rebinding copy requires an identical device");
}

void Placement::set(InstId inst, SiteIndex site) {
  check_compatible(inst, site);
  EMUTILE_CHECK(!inst_at_[site].valid(),
                "site " << site << " already occupied");
  EMUTILE_CHECK(site_of_[inst.value()] == kInvalidSite,
                "instance already placed; use move()");
  site_of_[inst.value()] = site;
  inst_at_[site] = inst;
}

void Placement::clear(InstId inst) {
  const SiteIndex s = site_of(inst);
  EMUTILE_CHECK(s != kInvalidSite, "instance not placed");
  inst_at_[s] = InstId::invalid();
  site_of_[inst.value()] = kInvalidSite;
}

void Placement::swap(InstId a, InstId b) {
  const SiteIndex sa = site_of(a), sb = site_of(b);
  EMUTILE_CHECK(sa != kInvalidSite && sb != kInvalidSite,
                "swap of unplaced instance");
  site_of_[a.value()] = sb;
  site_of_[b.value()] = sa;
  inst_at_[sa] = b;
  inst_at_[sb] = a;
}

void Placement::move(InstId inst, SiteIndex site) {
  check_compatible(inst, site);
  EMUTILE_CHECK(!inst_at_[site].valid(), "target site occupied; use swap()");
  const SiteIndex old = site_of(inst);
  EMUTILE_CHECK(old != kInvalidSite, "instance not placed");
  inst_at_[old] = InstId::invalid();
  site_of_[inst.value()] = site;
  inst_at_[site] = inst;
}

void Placement::validate(const PackedDesign& packed) const {
  for (InstId id : packed.live_insts()) {
    const SiteIndex s = site_of(id);
    EMUTILE_ASSERT(s != kInvalidSite,
                   "instance '" << packed.inst(id).name << "' unplaced");
    EMUTILE_ASSERT(inst_at_[s] == id, "placement tables out of sync");
    const bool want_clb = packed.inst(id).is_clb();
    EMUTILE_ASSERT(want_clb == device_->is_clb_site(s),
                   "instance '" << packed.inst(id).name
                                << "' on wrong site class");
  }
  std::size_t placed = 0;
  for (InstId occupant : inst_at_)
    if (occupant.valid()) ++placed;
  EMUTILE_ASSERT(placed == packed.live_insts().size(),
                 "orphan site occupancy entries");
}

void Placement::resize_for(const PackedDesign& packed) {
  if (packed.inst_bound() > site_of_.size())
    site_of_.resize(packed.inst_bound(), kInvalidSite);
  packed_ = &packed;
}

void Placement::check_compatible(InstId inst, SiteIndex site) const {
  EMUTILE_CHECK(site < inst_at_.size(), "site out of range");
  EMUTILE_CHECK(inst.value() < site_of_.size(), "instance out of range");
  const bool want_clb = packed_->inst(inst).is_clb();
  EMUTILE_CHECK(want_clb == device_->is_clb_site(site),
                "instance/site class mismatch for '"
                    << packed_->inst(inst).name << "'");
}

}  // namespace emutile
