#pragma once
/// \file placement.hpp
/// Placement state: a bijection between live packed instances and device
/// sites (CLB instances on CLB sites, IOB instances on IOB sites).

#include <vector>

#include "arch/device.hpp"
#include "synth/packer.hpp"

namespace emutile {

/// Half-open rectangle of CLB coordinates: x in [x0, x1), y in [y0, y1).
struct Rect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  [[nodiscard]] bool contains(int x, int y) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  [[nodiscard]] int width() const { return x1 - x0; }
  [[nodiscard]] int height() const { return y1 - y0; }
  [[nodiscard]] int area() const { return width() * height(); }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x0 == b.x0 && a.y0 == b.y0 && a.x1 == b.x1 && a.y1 == b.y1;
  }
};

/// Mutable instance-to-site assignment.
class Placement {
 public:
  Placement(const Device& device, const PackedDesign& packed);

  /// Rebinding copy: same assignment as `other`, but referencing the given
  /// device/packing (which must be structurally identical). Used to clone
  /// designs so ECO strategies can be compared on identical starting points.
  Placement(const Device& device, const PackedDesign& packed,
            const Placement& other);

  [[nodiscard]] const Device& device() const { return *device_; }

  [[nodiscard]] SiteIndex site_of(InstId inst) const {
    EMUTILE_ASSERT(inst.value() < site_of_.size(), "inst id out of range");
    return site_of_[inst.value()];
  }
  [[nodiscard]] InstId inst_at(SiteIndex site) const {
    EMUTILE_ASSERT(site < inst_at_.size(), "site out of range");
    return inst_at_[site];
  }
  [[nodiscard]] bool is_placed(InstId inst) const {
    return inst.value() < site_of_.size() && site_of_[inst.value()] != kInvalidSite;
  }

  /// Bind an instance to a free site (kind-compatible).
  void set(InstId inst, SiteIndex site);
  /// Unbind an instance (its site becomes free).
  void clear(InstId inst);
  /// Exchange the sites of two placed instances of the same kind class.
  void swap(InstId a, InstId b);
  /// Move a placed instance to a free site.
  void move(InstId inst, SiteIndex site);

  /// Position of an instance for wirelength purposes.
  [[nodiscard]] std::pair<double, double> position(InstId inst) const {
    return device_->site_center(site_of(inst));
  }

  /// All placed instances are on kind-compatible, mutually distinct sites.
  void validate(const PackedDesign& packed) const;

  /// Grow the instance table after pack_increment added instances.
  void resize_for(const PackedDesign& packed);

  /// Re-point the internal references after the owning aggregate moved
  /// (TiledDesign stores PackedDesign by value; its move rebinds us).
  void rebind(const Device& device, const PackedDesign& packed) {
    device_ = &device;
    packed_ = &packed;
  }

 private:
  void check_compatible(InstId inst, SiteIndex site) const;

  const Device* device_;
  const PackedDesign* packed_;
  std::vector<SiteIndex> site_of_;
  std::vector<InstId> inst_at_;
};

}  // namespace emutile
