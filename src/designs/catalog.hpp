#pragma once
/// \file catalog.hpp
/// The nine evaluation designs of the paper's Table 1, with generators that
/// rebuild functionally real stand-ins calibrated to the published CLB
/// counts (see DESIGN.md for the substitution rationale — the original MCNC
/// netlists and the BYU MIPS/DES cores are not redistributable here, but
/// real MCNC BLIF files can be fed through parse_blif_file instead).

#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace emutile {

struct PaperDesign {
  const char* name;
  int clbs;                  ///< Table 1 "# CLBs"
  double area_overhead;      ///< Table 1 "area overhead"
  double timing_overhead;    ///< Table 1 "timing overhead"
  bool sequential;
};

/// Table 1 rows, in paper order.
[[nodiscard]] std::span<const PaperDesign> paper_designs();

/// Lookup by name (throws on unknown names).
[[nodiscard]] const PaperDesign& paper_design(const std::string& name);

/// Build a synthesized (4-LUT mapped) netlist for the named design,
/// calibrated so its packed CLB count lands within ~2% of Table 1.
/// Deterministic in `seed`.
[[nodiscard]] Netlist build_paper_design(const std::string& name,
                                         std::uint64_t seed = 1);

/// Calibration helper: append filler logic cones (locality-biased inputs,
/// optionally registered) folded into a checksum output until the packed
/// design reaches `target_clbs`. Exposed for tests and custom designs.
void pad_to_clbs(Netlist& nl, int target_clbs, std::uint64_t seed,
                 double ff_fraction);

}  // namespace emutile
