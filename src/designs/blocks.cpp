#include "designs/blocks.hpp"

#include <cmath>

#include "util/check.hpp"

namespace emutile {

namespace {
NetId lut2(Netlist& nl, const TruthTable& tt, NetId a, NetId b,
           const std::string& name) {
  return nl.cell_output(nl.add_lut(name, tt, {a, b}));
}
}  // namespace

NetId b_not(Netlist& nl, NetId a, const std::string& name) {
  return nl.cell_output(nl.add_lut(name, TruthTable::inverter(), {a}));
}

NetId b_and2(Netlist& nl, NetId a, NetId b, const std::string& name) {
  return lut2(nl, TruthTable::and_all(2), a, b, name);
}

NetId b_or2(Netlist& nl, NetId a, NetId b, const std::string& name) {
  return lut2(nl, TruthTable::or_all(2), a, b, name);
}

NetId b_xor2(Netlist& nl, NetId a, NetId b, const std::string& name) {
  return lut2(nl, TruthTable::xor_all(2), a, b, name);
}

NetId b_mux2(Netlist& nl, NetId sel, NetId a, NetId b, const std::string& name) {
  return nl.cell_output(nl.add_lut(name, TruthTable::mux21(), {sel, a, b}));
}

Bus b_inputs(Netlist& nl, const std::string& base, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i)
    bus.push_back(nl.cell_output(nl.add_input(base + std::to_string(i))));
  return bus;
}

void b_outputs(Netlist& nl, const std::string& base, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    nl.add_output(base + std::to_string(i), bus[i]);
}

Bus b_register(Netlist& nl, const Bus& d, const std::string& base) {
  Bus q;
  q.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    q.push_back(nl.cell_output(nl.add_dff(base + std::to_string(i), d[i])));
  return q;
}

namespace {
Bus bitwise(Netlist& nl, const Bus& a, const Bus& b, const std::string& base,
            const TruthTable& tt) {
  EMUTILE_CHECK(a.size() == b.size(), "bus width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(lut2(nl, tt, a[i], b[i], base + std::to_string(i)));
  return out;
}
}  // namespace

Bus b_xor_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base) {
  return bitwise(nl, a, b, base, TruthTable::xor_all(2));
}

Bus b_and_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base) {
  return bitwise(nl, a, b, base, TruthTable::and_all(2));
}

Bus b_or_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base) {
  return bitwise(nl, a, b, base, TruthTable::or_all(2));
}

Bus b_mux_bus(Netlist& nl, NetId sel, const Bus& a, const Bus& b,
              const std::string& base) {
  EMUTILE_CHECK(a.size() == b.size(), "bus width mismatch");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(b_mux2(nl, sel, a[i], b[i], base + std::to_string(i)));
  return out;
}

AddResult b_adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in,
                  const std::string& base) {
  EMUTILE_CHECK(a.size() == b.size(), "bus width mismatch");
  // Full adder truth tables over (a, b, cin).
  TruthTable sum_tt(3), carry_tt(3);
  for (unsigned m = 0; m < 8; ++m) {
    const int ones = __builtin_popcount(m);
    sum_tt.set_bit(m, ones & 1);
    carry_tt.set_bit(m, ones >= 2);
  }
  AddResult r;
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string tag = base + std::to_string(i);
    r.sum.push_back(nl.cell_output(
        nl.add_lut(tag + "_s", sum_tt, {a[i], b[i], carry})));
    carry = nl.cell_output(
        nl.add_lut(tag + "_c", carry_tt, {a[i], b[i], carry}));
  }
  r.carry_out = carry;
  return r;
}

namespace {
NetId reduce_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base,
                  const TruthTable& tt2, const TruthTable& tt3,
                  const TruthTable& tt4) {
  EMUTILE_CHECK(!nets.empty(), "reduction of empty set");
  int stage = 0;
  while (nets.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < nets.size(); i += 4) {
      const std::size_t take = std::min<std::size_t>(4, nets.size() - i);
      const std::string name =
          base + "_t" + std::to_string(stage) + "_" + std::to_string(i / 4);
      if (take == 1) {
        next.push_back(nets[i]);
      } else {
        const TruthTable& tt = take == 2 ? tt2 : take == 3 ? tt3 : tt4;
        std::vector<NetId> ins(nets.begin() + static_cast<std::ptrdiff_t>(i),
                               nets.begin() + static_cast<std::ptrdiff_t>(i + take));
        next.push_back(nl.cell_output(nl.add_lut(name, tt, ins)));
      }
    }
    nets = std::move(next);
    ++stage;
  }
  return nets[0];
}
}  // namespace

NetId b_xor_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base) {
  return reduce_tree(nl, std::move(nets), base, TruthTable::xor_all(2),
                     TruthTable::xor_all(3), TruthTable::xor_all(4));
}

NetId b_and_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base) {
  return reduce_tree(nl, std::move(nets), base, TruthTable::and_all(2),
                     TruthTable::and_all(3), TruthTable::and_all(4));
}

NetId b_or_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base) {
  return reduce_tree(nl, std::move(nets), base, TruthTable::or_all(2),
                     TruthTable::or_all(3), TruthTable::or_all(4));
}

NetId b_eq_const(Netlist& nl, const Bus& a, unsigned value,
                 const std::string& base) {
  std::vector<NetId> lanes;
  lanes.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((value >> i) & 1u)
      lanes.push_back(a[i]);
    else
      lanes.push_back(b_not(nl, a[i], base + "_n" + std::to_string(i)));
  }
  return b_and_tree(nl, std::move(lanes), base);
}

NetId b_eq_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base) {
  EMUTILE_CHECK(a.size() == b.size(), "bus width mismatch");
  std::vector<NetId> same;
  TruthTable xnor2 = TruthTable::xor_all(2).complement();
  for (std::size_t i = 0; i < a.size(); ++i)
    same.push_back(lut2(nl, xnor2, a[i], b[i], base + "_e" + std::to_string(i)));
  return b_and_tree(nl, std::move(same), base);
}

Bus b_popcount(Netlist& nl, const Bus& a, const std::string& base) {
  // Reduce buses of partial counts with ripple adders.
  std::vector<Bus> counts;
  for (std::size_t i = 0; i < a.size(); ++i) counts.push_back(Bus{a[i]});
  const CellId zero_cell = nl.add_const(base + "_zero", false);
  const NetId zero = nl.cell_output(zero_cell);
  int stage = 0;
  while (counts.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < counts.size(); i += 2) {
      Bus lhs = counts[i], rhs = counts[i + 1];
      const std::size_t w = std::max(lhs.size(), rhs.size());
      while (lhs.size() < w) lhs.push_back(zero);
      while (rhs.size() < w) rhs.push_back(zero);
      AddResult r = b_adder(nl, lhs, rhs, zero,
                            base + "_a" + std::to_string(stage) + "_" +
                                std::to_string(i / 2));
      Bus sum = r.sum;
      sum.push_back(r.carry_out);
      next.push_back(std::move(sum));
    }
    if (counts.size() % 2) next.push_back(counts.back());
    counts = std::move(next);
    ++stage;
  }
  return counts[0];
}

Bus b_mux_tree(Netlist& nl, const std::vector<Bus>& options, const Bus& sel,
               const std::string& base) {
  EMUTILE_CHECK(!options.empty(), "mux tree with no options");
  EMUTILE_CHECK((options.size() & (options.size() - 1)) == 0,
                "mux tree needs a power-of-two option count");
  EMUTILE_CHECK((std::size_t{1} << sel.size()) >= options.size(),
                "select bus too narrow");
  std::vector<Bus> layer = options;
  int stage = 0;
  while (layer.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(b_mux_bus(nl, sel[static_cast<std::size_t>(stage)],
                               layer[i], layer[i + 1],
                               base + "_m" + std::to_string(stage) + "_" +
                                   std::to_string(i / 2) + "_"));
    layer = std::move(next);
    ++stage;
  }
  return layer[0];
}

Bus b_sbox(Netlist& nl, const Bus& in6, const std::array<std::uint8_t, 64>& table,
           const std::string& base) {
  EMUTILE_CHECK(in6.size() == 6, "S-box takes 6 inputs");
  Bus out;
  for (int bit = 0; bit < 4; ++bit) {
    TruthTable tt(6);
    for (unsigned m = 0; m < 64; ++m)
      tt.set_bit(m, (table[m] >> bit) & 1u);
    out.push_back(nl.cell_output(
        nl.add_lut(base + "_b" + std::to_string(bit), tt, in6)));
  }
  return out;
}

}  // namespace emutile
