#pragma once
/// \file blocks.hpp
/// Reusable structural circuit builders. The benchmark generators compose
/// these into real, simulatable datapaths (adders, comparators, S-boxes,
/// register files) rather than purely random graphs.

#include <array>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace emutile {

using Bus = std::vector<NetId>;

// ---- gates ----------------------------------------------------------------

NetId b_not(Netlist& nl, NetId a, const std::string& name);
NetId b_and2(Netlist& nl, NetId a, NetId b, const std::string& name);
NetId b_or2(Netlist& nl, NetId a, NetId b, const std::string& name);
NetId b_xor2(Netlist& nl, NetId a, NetId b, const std::string& name);
/// sel ? b : a
NetId b_mux2(Netlist& nl, NetId sel, NetId a, NetId b, const std::string& name);

// ---- word-level -----------------------------------------------------------

/// Input bus of `width` fresh primary inputs named base[0..width).
Bus b_inputs(Netlist& nl, const std::string& base, int width);

/// Expose a bus as primary outputs named base[0..width).
void b_outputs(Netlist& nl, const std::string& base, const Bus& bus);

/// Register every bit (one DFF per lane).
Bus b_register(Netlist& nl, const Bus& d, const std::string& base);

/// Bitwise ops over equal-width buses.
Bus b_xor_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base);
Bus b_and_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base);
Bus b_or_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base);
/// Per-lane 2:1 mux (sel scalar).
Bus b_mux_bus(Netlist& nl, NetId sel, const Bus& a, const Bus& b,
              const std::string& base);

/// Ripple-carry adder; returns width sum bits plus carry-out.
struct AddResult {
  Bus sum;
  NetId carry_out;
};
AddResult b_adder(Netlist& nl, const Bus& a, const Bus& b, NetId carry_in,
                  const std::string& base);

/// Balanced XOR reduction of arbitrarily many nets.
NetId b_xor_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base);

/// Balanced AND/OR reductions.
NetId b_and_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base);
NetId b_or_tree(Netlist& nl, std::vector<NetId> nets, const std::string& base);

/// a == constant (bit i of `value` against lane i).
NetId b_eq_const(Netlist& nl, const Bus& a, unsigned value,
                 const std::string& base);

/// a == b (equal widths).
NetId b_eq_bus(Netlist& nl, const Bus& a, const Bus& b, const std::string& base);

/// Population count: returns ceil(log2(width+1)) bits.
Bus b_popcount(Netlist& nl, const Bus& a, const std::string& base);

/// N-way one-hot-free mux tree: options.size() must be a power of two and
/// sel wide enough to address them.
Bus b_mux_tree(Netlist& nl, const std::vector<Bus>& options, const Bus& sel,
               const std::string& base);

/// A 6-input, 4-output S-box from a 64-entry table of 4-bit values. Emitted
/// as four 6-input LUT cells (synthesize() later Shannon-decomposes them
/// into 4-LUT trees, exactly how wide functions map onto the XC4000).
Bus b_sbox(Netlist& nl, const Bus& in6, const std::array<std::uint8_t, 64>& table,
           const std::string& base);

}  // namespace emutile
