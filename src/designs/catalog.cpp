#include "designs/catalog.hpp"

#include <array>
#include <cmath>

#include "designs/blocks.hpp"
#include "netlist/netlist_ops.hpp"
#include "synth/lut_mapper.hpp"
#include "synth/packer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace emutile {

namespace {

constexpr std::array<PaperDesign, 9> kPaperDesigns = {{
    {"9sym", 56, 0.217, -0.045, false},
    {"styr", 98, 0.210, 0.074, true},
    {"sand", 100, 0.220, 0.129, true},
    {"c499", 115, 0.223, 0.000, false},
    {"planet1", 115, 0.211, 0.137, true},
    {"c880", 135, 0.227, -0.055, false},
    {"s9234", 235, 0.205, -0.014, true},
    {"MIPS R2000", 900, 0.190, 0.047, true},
    {"DES", 1050, 0.200, 0.036, true},
}};

/// Random 3-4 input function over randomly selected nets from `pool` with a
/// strong locality bias toward recently created nets. Real circuits average
/// about three used LUT inputs with Rent exponents well below 1; without the
/// bias the filler logic dominates routing demand and distorts the channel
/// width the experiments need.
NetId random_cone(Netlist& nl, std::vector<NetId>& pool, Rng& rng,
                  const std::string& name) {
  const int k = rng.next_bool(0.3) ? 4 : 3;
  std::vector<NetId> ins;
  for (int i = 0; i < k; ++i) {
    std::size_t idx;
    if (rng.next_bool(0.85) && pool.size() > 32) {
      // Local: among the most recent 32 nets.
      idx = pool.size() - 1 - rng.next_below(32);
    } else {
      idx = rng.next_below(pool.size());
    }
    ins.push_back(pool[idx]);
  }
  TruthTable tt(k);
  do {
    for (unsigned m = 0; m < tt.num_minterms(); ++m)
      tt.set_bit(m, rng.next_bool(0.5));
  } while (tt.is_constant(false) || tt.is_constant(true));
  const CellId lut = nl.add_lut(name, tt, ins);
  const NetId out = nl.cell_output(lut);
  pool.push_back(out);
  return out;
}

// ---- the nine generators --------------------------------------------------

Netlist gen_9sym(std::uint64_t) {
  Netlist nl("9sym");
  const Bus in = b_inputs(nl, "i", 9);
  const Bus count = b_popcount(nl, in, "pc");
  // Output high when the number of ones is in [3, 6] (the symmetric
  // threshold family 9sym belongs to).
  std::vector<NetId> hits;
  for (unsigned v = 3; v <= 6; ++v)
    hits.push_back(b_eq_const(nl, count, v, "eq" + std::to_string(v)));
  nl.add_output("sym", b_or_tree(nl, std::move(hits), "any"));
  return nl;
}

Netlist gen_c499(std::uint64_t seed) {
  // Single-error-correcting code circuit in the spirit of c499: data lines
  // plus check lines; syndrome decode selects the lane to flip. Sized below
  // the Table 1 target; pad_to_clbs closes the gap.
  Netlist nl("c499");
  Rng rng(seed);
  constexpr int kData = 20, kCheck = 6;
  const Bus data = b_inputs(nl, "d", kData);
  const Bus check = b_inputs(nl, "c", kCheck);
  // Parity subsets: lane i participates in check j if bit j of code(i).
  std::vector<unsigned> code(kData);
  for (int i = 0; i < kData; ++i)
    code[static_cast<std::size_t>(i)] = static_cast<unsigned>(i) + 1;
  (void)rng;
  Bus syndrome;
  for (int j = 0; j < kCheck; ++j) {
    std::vector<NetId> taps{check[static_cast<std::size_t>(j)]};
    for (int i = 0; i < kData; ++i)
      if ((code[static_cast<std::size_t>(i)] >> j) & 1u)
        taps.push_back(data[static_cast<std::size_t>(i)]);
    syndrome.push_back(b_xor_tree(nl, std::move(taps), "syn" + std::to_string(j)));
  }
  Bus corrected;
  for (int i = 0; i < kData; ++i) {
    const NetId flip = b_eq_const(nl, syndrome, code[static_cast<std::size_t>(i)],
                                  "hit" + std::to_string(i));
    corrected.push_back(b_xor2(nl, data[static_cast<std::size_t>(i)], flip,
                               "fix" + std::to_string(i)));
  }
  b_outputs(nl, "o", corrected);
  return nl;
}

Netlist gen_c880(std::uint64_t) {
  // 8-bit ALU slice in the spirit of c880.
  Netlist nl("c880");
  const Bus a = b_inputs(nl, "a", 8);
  const Bus b = b_inputs(nl, "b", 8);
  const Bus op = b_inputs(nl, "op", 2);
  const NetId cin = nl.cell_output(nl.add_input("cin"));

  const AddResult sum = b_adder(nl, a, b, cin, "add");
  const Bus land = b_and_bus(nl, a, b, "and");
  const Bus lor = b_or_bus(nl, a, b, "or");
  const Bus lxor = b_xor_bus(nl, a, b, "xor");
  const Bus r01 = b_mux_bus(nl, op[0], sum.sum, land, "m01");
  const Bus r23 = b_mux_bus(nl, op[0], lor, lxor, "m23");
  const Bus result = b_mux_bus(nl, op[1], r01, r23, "res");
  b_outputs(nl, "y", result);
  nl.add_output("cout", sum.carry_out);
  // Zero flag.
  std::vector<NetId> lanes(result.begin(), result.end());
  nl.add_output("zero", b_not(nl, b_or_tree(nl, std::move(lanes), "nz"), "z"));
  return nl;
}

/// Moore FSM skeleton with seeded random next-state/output logic — the
/// structural class styr/sand/planet1 belong to (MCNC FSM benchmarks).
Netlist gen_fsm(const char* name, std::uint64_t seed, int state_bits,
                int in_bits, int out_bits) {
  Netlist nl(name);
  Rng rng(seed);
  const Bus in = b_inputs(nl, "x", in_bits);

  // State registers with feedback built after the logic exists: start the
  // registers from per-bit placeholder nets (inputs), then rewire.
  std::vector<NetId> pool(in.begin(), in.end());
  // Temporary state seeds: use inputs as placeholders for state in cones.
  std::vector<CellId> state_ffs;
  Bus state;
  for (int s = 0; s < state_bits; ++s) {
    const CellId ff =
        nl.add_dff(std::string("st") + std::to_string(s),
                   in[static_cast<std::size_t>(s % in_bits)]);
    state_ffs.push_back(ff);
    state.push_back(nl.cell_output(ff));
    pool.push_back(nl.cell_output(ff));
  }
  // Next-state cones (depth 2-3 of random 4-LUTs over inputs+state).
  for (int s = 0; s < state_bits; ++s) {
    NetId d = random_cone(nl, pool, rng, "ns" + std::to_string(s) + "_a");
    d = random_cone(nl, pool, rng, "ns" + std::to_string(s) + "_b");
    nl.reconnect_input(state_ffs[static_cast<std::size_t>(s)], 0, d);
  }
  // Output cones.
  for (int o = 0; o < out_bits; ++o)
    nl.add_output("y" + std::to_string(o),
                  random_cone(nl, pool, rng, "of" + std::to_string(o)));
  return nl;
}

Netlist gen_s9234(std::uint64_t seed) {
  // Large scan-sequential circuit: several interacting registered pipelines
  // plus random cones, in the structural class of s9234.
  Netlist nl("s9234");
  Rng rng(seed);
  const Bus in = b_inputs(nl, "x", 19);  // s9234 has 19 usable PIs
  std::vector<NetId> pool(in.begin(), in.end());

  Bus stage = in;
  for (int p = 0; p < 4; ++p) {
    // Random combinational layer then a register bank.
    Bus comb;
    for (int i = 0; i < 24; ++i)
      comb.push_back(random_cone(nl, pool, rng,
                                 "p" + std::to_string(p) + "_c" +
                                     std::to_string(i)));
    stage = b_register(nl, comb, "p" + std::to_string(p) + "_r");
    for (NetId q : stage) pool.push_back(q);
  }
  for (int o = 0; o < 22; ++o)
    nl.add_output("y" + std::to_string(o),
                  random_cone(nl, pool, rng, "out" + std::to_string(o)));
  return nl;
}

Netlist gen_mips(std::uint64_t seed) {
  // MIPS R2000-style datapath slice: 8x32 register file (mux-read,
  // decoded write), 32-bit ALU, PC chain, branch compare.
  Netlist nl("mips_r2000");
  Rng rng(seed);
  (void)rng;
  const Bus instr = b_inputs(nl, "ins", 16);  // opcode+rs+rt+rd fields
  const Bus imm = b_inputs(nl, "imm", 32);
  const CellId zero_c = nl.add_const("k0", false);
  const NetId zero = nl.cell_output(zero_c);

  const Bus rs(instr.begin() + 0, instr.begin() + 3);
  const Bus rt(instr.begin() + 3, instr.begin() + 6);
  const Bus rd(instr.begin() + 6, instr.begin() + 9);
  const Bus op(instr.begin() + 9, instr.begin() + 12);

  // Register file storage: 8 registers x 32 bits, write-enable decode.
  std::vector<Bus> regs;
  std::vector<std::vector<CellId>> reg_ffs(8);
  for (int r = 0; r < 8; ++r) {
    Bus q;
    for (int bit = 0; bit < 32; ++bit) {
      const CellId ff = nl.add_dff(
          "r" + std::to_string(r) + "_b" + std::to_string(bit), zero);
      reg_ffs[static_cast<std::size_t>(r)].push_back(ff);
      q.push_back(nl.cell_output(ff));
    }
    regs.push_back(std::move(q));
  }

  const Bus a = b_mux_tree(nl, regs, rs, "rda");
  const Bus bq = b_mux_tree(nl, regs, rt, "rdb");
  const Bus b = b_mux_bus(nl, op[2], bq, imm, "bsel");

  // ALU: add, and, or, xor selected by op[0..1].
  const AddResult sum = b_adder(nl, a, b, zero, "alu_add");
  const Bus land = b_and_bus(nl, a, b, "alu_and");
  const Bus lor = b_or_bus(nl, a, b, "alu_or");
  const Bus lxor = b_xor_bus(nl, a, b, "alu_xor");
  const Bus r01 = b_mux_bus(nl, op[0], sum.sum, land, "alu_m0");
  const Bus r23 = b_mux_bus(nl, op[0], lor, lxor, "alu_m1");
  const Bus alu = b_mux_bus(nl, op[1], r01, r23, "alu_out");

  // Write-back: reg[rd] <- alu when the decode hits.
  for (int r = 0; r < 8; ++r) {
    const NetId we =
        b_eq_const(nl, rd, static_cast<unsigned>(r), "wdec" + std::to_string(r));
    for (int bit = 0; bit < 32; ++bit) {
      const CellId ff = reg_ffs[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(bit)];
      const NetId d = b_mux2(nl, we, nl.cell_output(ff),
                             alu[static_cast<std::size_t>(bit)],
                             "wb" + std::to_string(r) + "_" +
                                 std::to_string(bit));
      nl.reconnect_input(ff, 0, d);
    }
  }

  // PC chain: pc' = branch && (a == b) ? pc + imm : pc + 4.
  Bus pc;
  std::vector<CellId> pc_ffs;
  for (int bit = 0; bit < 32; ++bit) {
    const CellId ff = nl.add_dff("pc" + std::to_string(bit), zero);
    pc_ffs.push_back(ff);
    pc.push_back(nl.cell_output(ff));
  }
  Bus four(32, zero);
  // +4: constant wired through the adder carry structure (bit 2 = 1).
  const CellId one_c = nl.add_const("k1", true);
  four[2] = nl.cell_output(one_c);
  const AddResult pc4 = b_adder(nl, pc, four, zero, "pc4");
  const AddResult pct = b_adder(nl, pc, imm, zero, "pct");
  const NetId taken =
      b_and2(nl, op[2], b_eq_bus(nl, a, bq, "cmp"), "taken");
  const Bus pc_next = b_mux_bus(nl, taken, pc4.sum, pct.sum, "pcm");
  for (int bit = 0; bit < 32; ++bit)
    nl.reconnect_input(pc_ffs[static_cast<std::size_t>(bit)], 0,
                       pc_next[static_cast<std::size_t>(bit)]);

  b_outputs(nl, "alu", alu);
  b_outputs(nl, "pco", Bus(pc.begin(), pc.begin() + 16));
  return nl;
}

Netlist gen_des(std::uint64_t seed) {
  // Key-specific DES in the spirit of [8]: the round keys are constants
  // folded into the datapath. Five pipelined Feistel rounds land below the
  // Table 1 size (pad_to_clbs calibrates the rest); S-box contents are
  // seeded stand-ins with the real 6->4 structure (see DESIGN.md).
  Netlist nl("des");
  Rng rng(seed);
  const Bus block = b_inputs(nl, "pt", 64);
  Bus left(block.begin(), block.begin() + 32);
  Bus right(block.begin() + 32, block.end());

  for (int round = 0; round < 5; ++round) {
    const std::string rt = "r" + std::to_string(round);
    // Expansion E: 32 -> 48 by indexing (with wraparound pairs duplicated).
    Bus expanded;
    for (int i = 0; i < 48; ++i)
      expanded.push_back(right[static_cast<std::size_t>((i * 2 + i / 6) % 32)]);
    // Key XOR: key-specific — a 1 bit becomes an inverter, a 0 a wire.
    for (int i = 0; i < 48; ++i)
      if (rng.next_bool(0.5))
        expanded[static_cast<std::size_t>(i)] =
            b_not(nl, expanded[static_cast<std::size_t>(i)],
                  rt + "_k" + std::to_string(i));
    // S-boxes.
    Bus f_out;
    for (int s = 0; s < 8; ++s) {
      std::array<std::uint8_t, 64> table{};
      for (auto& e : table) e = static_cast<std::uint8_t>(rng.next_below(16));
      const Bus in6(expanded.begin() + s * 6, expanded.begin() + s * 6 + 6);
      const Bus out4 = b_sbox(nl, in6, table, rt + "_s" + std::to_string(s));
      f_out.insert(f_out.end(), out4.begin(), out4.end());
    }
    // P permutation: fixed pseudorandom shuffle (seeded, same every round).
    Bus permuted(32);
    for (int i = 0; i < 32; ++i)
      permuted[static_cast<std::size_t>(i)] =
          f_out[static_cast<std::size_t>((i * 7 + 11) % 32)];
    // Feistel swap with pipeline registers.
    const Bus new_right =
        b_register(nl, b_xor_bus(nl, left, permuted, rt + "_x"), rt + "_R");
    const Bus new_left = b_register(nl, right, rt + "_L");
    left = new_left;
    right = new_right;
  }
  b_outputs(nl, "ct_l", left);
  b_outputs(nl, "ct_r", right);
  return nl;
}

}  // namespace

std::span<const PaperDesign> paper_designs() { return kPaperDesigns; }

const PaperDesign& paper_design(const std::string& name) {
  for (const PaperDesign& d : kPaperDesigns)
    if (name == d.name) return d;
  EMUTILE_CHECK(false, "unknown paper design '" << name << "'");
  return kPaperDesigns[0];
}

void pad_to_clbs(Netlist& nl, int target_clbs, std::uint64_t seed,
                 double ff_fraction) {
  Rng rng(seed);
  std::vector<NetId> pool = nl.live_nets();
  EMUTILE_CHECK(!pool.empty(), "cannot pad an empty netlist");

  NetId checksum;
  int batch_no = 0;
  for (;;) {
    const int current = static_cast<int>(pack(nl).num_clbs());
    if (current >= target_clbs) break;
    // Roughly 2 LUTs pack per CLB and each batch grows a checksum fold tree
    // (~batch/3 extra LUTs), so aim below the deficit and converge from
    // underneath; the final rounds add only a couple of cones.
    const int deficit = target_clbs - current;
    const int batch = std::max(2, static_cast<int>(deficit * 1.4));
    std::vector<NetId> outs;
    for (int i = 0; i < batch; ++i) {
      NetId cone = random_cone(nl, pool, rng,
                               "pad" + std::to_string(batch_no) + "_" +
                                   std::to_string(i));
      if (rng.next_bool(ff_fraction)) {
        const CellId ff = nl.add_dff("padff" + std::to_string(batch_no) + "_" +
                                         std::to_string(i),
                                     cone);
        cone = nl.cell_output(ff);
        pool.push_back(cone);
      }
      outs.push_back(cone);
    }
    // Fold the batch into the running checksum so nothing is dead logic.
    NetId folded = b_xor_tree(nl, std::move(outs),
                              "padsum" + std::to_string(batch_no));
    checksum = checksum.valid()
                   ? b_xor2(nl, checksum, folded,
                            "padacc" + std::to_string(batch_no))
                   : folded;
    pool.push_back(checksum);
    ++batch_no;
  }
  if (checksum.valid()) nl.add_output("checksum", checksum);
  nl.validate();
}

Netlist build_paper_design(const std::string& name, std::uint64_t seed) {
  Netlist nl;
  bool sequential = false;
  if (name == "9sym") {
    nl = gen_9sym(seed);
  } else if (name == "styr") {
    nl = gen_fsm("styr", seed, 5, 9, 10);
    sequential = true;
  } else if (name == "sand") {
    nl = gen_fsm("sand", seed, 5, 11, 9);
    sequential = true;
  } else if (name == "c499") {
    nl = gen_c499(seed);
  } else if (name == "planet1") {
    nl = gen_fsm("planet1", seed, 6, 7, 19);
    sequential = true;
  } else if (name == "c880") {
    nl = gen_c880(seed);
  } else if (name == "s9234") {
    nl = gen_s9234(seed);
    sequential = true;
  } else if (name == "MIPS R2000" || name == "mips") {
    nl = gen_mips(seed);
    sequential = true;
  } else if (name == "DES" || name == "des") {
    nl = gen_des(seed);
    sequential = true;
  } else {
    EMUTILE_CHECK(false, "unknown paper design '" << name << "'");
  }

  synthesize(nl);
  const PaperDesign& spec =
      paper_design(name == "mips" ? "MIPS R2000" : name == "des" ? "DES" : name);
  pad_to_clbs(nl, spec.clbs, seed ^ 0xBEEF, sequential ? 0.18 : 0.0);
  return nl;
}

}  // namespace emutile
