#pragma once
/// \file error_injector.hpp
/// Design-error models for debug experiments.
///
/// Emulation debugging hunts *design* errors (bugs that shipped in the HDL),
/// not manufacturing faults, so the injector mutates the netlist before the
/// physical build: a wrong LUT function (coding bug), an inverted function
/// (polarity bug), or a mis-wired input (connection bug). The record carries
/// enough ground truth to express the correction as an ECO later.

#include <string>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace emutile {

enum class ErrorKind : std::uint8_t {
  kLutFunction,     ///< one or two truth-table minterms flipped
  kWrongPolarity,   ///< whole function complemented
  kWrongConnection  ///< one input pin moved to a different net
};

[[nodiscard]] const char* to_string(ErrorKind kind);

struct InjectedError {
  ErrorKind kind = ErrorKind::kLutFunction;
  CellId cell;             ///< the buggy LUT
  TruthTable original;     ///< pre-error function (kLutFunction/kWrongPolarity)
  std::uint32_t port = 0;  ///< for kWrongConnection
  NetId original_net;      ///< correct net of that port
  NetId wrong_net;         ///< net it was mis-wired to
  std::string description;
};

/// Mutate one randomly chosen LUT of `nl`. Guarantees no combinational cycle
/// is created and that the mutated function actually differs. Deterministic
/// in `seed`.
[[nodiscard]] InjectedError inject_error(Netlist& nl, ErrorKind kind,
                                         std::uint64_t seed);

/// Undo an injected error on the netlist (the "correct fix"). The physical
/// design must be updated separately (ECO).
void revert_error(Netlist& nl, const InjectedError& error);

}  // namespace emutile
