#include "debug/localizer.hpp"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

#include "debug/test_logic.hpp"
#include "netlist/netlist_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "route/router.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

/// Backward sequential cone: all LUTs that can influence `net`, crossing
/// flip-flops.
std::vector<CellId> sequential_fanin_luts(const Netlist& nl, NetId net) {
  std::vector<CellId> luts;
  std::unordered_set<std::uint32_t> seen_cells;
  std::vector<NetId> stack{net};
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const CellId drv = nl.net(n).driver;
    if (!seen_cells.insert(drv.value()).second) continue;
    const Cell& c = nl.cell(drv);
    if (c.kind == CellKind::kLut) {
      luts.push_back(drv);
      for (NetId in : c.inputs) stack.push_back(in);
    } else if (c.kind == CellKind::kDff) {
      stack.push_back(c.inputs[0]);
    }
  }
  return luts;
}

/// Physically remove an observation plan: unbind instances, prune route
/// trees of the probed nets down to their remaining sinks, delete cells.
PnrEffort remove_test_logic(TiledDesign& design, const ObservationPlan& plan) {
  PnrEffort effort;

  // Nets driven by test cells lose their routing entirely.
  for (CellId c : plan.added_cells) {
    const NetId out = design.netlist.cell(c).output;
    if (out.valid()) design.routing->rip_up(out);
  }

  // Release instances: flip-flops first — a LUT may not be unbound while a
  // local FF still registers it.
  std::unordered_set<std::uint32_t> insts;
  for (int pass = 0; pass < 2; ++pass) {
    for (CellId c : plan.added_cells) {
      const bool is_ff = design.netlist.cell(c).kind == CellKind::kDff;
      if ((pass == 0) != is_ff) continue;
      const InstId inst = design.packed.inst_of_cell(c);
      if (inst.valid()) insts.insert(inst.value());
      design.packed.unbind_cell(c);
    }
  }
  for (std::uint32_t iv : insts) {
    const InstId inst{iv};
    if (design.placement->is_placed(inst)) design.placement->clear(inst);
    design.packed.remove_if_empty(inst);
  }

  // Netlist removal (breaks the signature rings internally).
  remove_added_cells(design.netlist, plan.added_cells);
  design.refresh_nets();

  // Probed nets lost their XOR sink: prune the dangling branch in place
  // (no re-routing; locked tiles stay untouched).
  for (const ProbePoint& probe : plan.probes) {
    if (!design.routing->has_tree(probe.probed)) continue;
    std::vector<RrNodeId> wanted;
    for (const PhysNet& pn : design.nets) {
      if (pn.net != probe.probed) continue;
      for (InstId s : pn.sink_insts)
        wanted.push_back(design.rr->sink(design.placement->site_of(s)));
    }
    design.routing->prune_to_sinks(probe.probed, wanted);
  }
  return effort;
}

/// Routing-only retarget ECO: compactor placement is untouched, so the
/// physical delta of re-aiming probes is purely in the probed nets' routing
/// — each `released` net is pruned back to the sinks it still drives, and
/// each `gained` net is incrementally extended to its new XOR pin with its
/// existing tree as the starting forest. Costs a handful of router
/// expansions instead of clearing and re-implementing tiles. Returns false
/// (without updating `effort`) when the incremental route fails on a
/// congested fabric; the caller falls back to the tile-clearing ECO.
bool apply_retarget_routing(TiledDesign& design,
                            const std::vector<NetId>& released,
                            const std::vector<NetId>& gained,
                            PnrEffort& effort) {
  design.refresh_nets();
  std::unordered_map<std::uint32_t, const PhysNet*> net_by_id;
  for (const PhysNet& pn : design.nets) net_by_id[pn.net.value()] = &pn;

  // Drop branches that no longer feed a sink (a swapped net can be in both
  // lists: pruning first keeps its old XOR branch from colliding with the
  // other probe's reroute).
  const auto prune_stale = [&](NetId net) {
    if (!design.routing->has_tree(net)) return;
    const auto it = net_by_id.find(net.value());
    if (it == net_by_id.end()) return;
    std::unordered_set<std::uint32_t> in_tree;
    for (RrNodeId n : design.routing->tree(net).nodes)
      in_tree.insert(n.value());
    std::vector<RrNodeId> wanted;
    for (InstId s : it->second->sink_insts) {
      const RrNodeId sink = design.rr->sink(design.placement->site_of(s));
      if (in_tree.count(sink.value())) wanted.push_back(sink);
    }
    if (wanted.empty())
      design.routing->rip_up(net);
    else
      design.routing->prune_to_sinks(net, wanted);
  };
  for (NetId net : released) prune_stale(net);
  for (NetId net : gained) prune_stale(net);

  std::vector<NetTask> tasks;
  for (NetId net : gained) {
    const auto it = net_by_id.find(net.value());
    if (it == net_by_id.end()) continue;
    const PhysNet& pn = *it->second;
    NetTask t;
    t.net = pn.net;
    t.source = design.rr->opin(design.placement->site_of(pn.src_inst),
                               pn.src_opin);
    for (InstId s : pn.sink_insts)
      t.sinks.push_back(design.rr->sink(design.placement->site_of(s)));
    if (design.routing->has_tree(pn.net)) {
      // The whole surviving tree becomes the kept source component; the
      // router only has to reach the new XOR pin from it.
      const RouteTree& tree = design.routing->tree(pn.net);
      t.kept.nodes = tree.nodes;
      t.kept.parent = tree.parent;
      t.kept.group.assign(tree.nodes.size(), 0);
      t.kept.num_orphan_groups = 0;
      design.routing->rip_up(pn.net);
    }
    tasks.push_back(std::move(t));
  }

  Router router(*design.rr);
  const RouteResult rres =
      router.route(std::move(tasks), *design.routing, RouterParams{});
  if (!rres.success) return false;
  effort.nets_routed += rres.nets_routed;
  effort.nodes_expanded += rres.nodes_expanded;
  effort.route_ms += rres.wall_ms;
  return true;
}

}  // namespace

std::vector<CellId> output_cone(const Netlist& nl, std::size_t output_index) {
  EMUTILE_CHECK(output_index < nl.primary_outputs().size(),
                "output index out of range");
  const CellId po = nl.primary_outputs()[output_index];
  return sequential_fanin_luts(nl, nl.cell(po).inputs[0]);
}

LocalizeResult localize(TiledDesign& dut, const Netlist& golden,
                        std::size_t failing_output,
                        std::span<const Pattern> patterns,
                        const LocalizerOptions& options) {
  LocalizeResult result;

  std::vector<CellId> candidates = output_cone(dut.netlist, failing_output);
  const std::size_t initial_candidates = candidates.size();

  // Persistent mode: the probe infrastructure built so far. Compactors stay
  // in the design across iterations and are retargeted to each new probe
  // set; one teardown ECO runs after the loop.
  ObservationPlan infra;

  // One golden emulation for the whole loop: every iteration used to replay
  // the golden reference from reset to recompute the soft signatures of its
  // probe set, but a signature is a pure function of a net's value sequence
  // — so fold the signature of *every* live net in a single pass up front
  // and each iteration just looks its probes up.
  std::vector<unsigned> golden_sig(golden.net_bound(), 0);
  {
    const std::vector<NetId> live = golden.live_nets();
    Simulator gold(golden);
    gold.reset();
    for (const Pattern& p : patterns) {
      gold.step(p);
      for (NetId n : live)
        golden_sig[n.value()] =
            signature_step(golden_sig[n.value()], gold.net_value(n));
    }
  }

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (candidates.size() <= options.stop_at) break;

    // Child of whatever span is active on this thread (session.phase.localize
    // when the session runs under the service).
    const ScopedSpan round_span(Tracer::global(), "localizer.round");
    LocalizeIteration it;
    it.candidates_before = candidates.size();

    // ---- choose probes: candidate outputs at level quantiles ----
    const std::vector<int> level = levelize(dut.netlist);
    std::vector<CellId> by_level = candidates;
    std::sort(by_level.begin(), by_level.end(), [&](CellId a, CellId b) {
      return level[a.value()] < level[b.value()];
    });
    const int k = std::min<int>(options.probes_per_iteration,
                                static_cast<int>(by_level.size()));
    std::unordered_set<std::uint32_t> probe_nets;
    for (int p = 0; p < k; ++p) {
      const std::size_t pos =
          (static_cast<std::size_t>(p) + 1) * by_level.size() /
          (static_cast<std::size_t>(k) + 1);
      const CellId cell = by_level[std::min(pos, by_level.size() - 1)];
      probe_nets.insert(dut.netlist.cell_output(cell).value());
    }
    std::vector<NetId> probes;
    for (std::uint32_t nv : probe_nets) probes.push_back(NetId{nv});
    it.probes = probes;

    // ---- aim observation logic at the probes (tiled ECO) ----
    // Per-iteration mode builds a fresh plan and removes it afterwards.
    // Persistent mode retargets the compactors that already exist and only
    // inserts when the probe budget outgrew the infrastructure.
    ObservationPlan iteration_plan;  // per-iteration mode only
    EcoChange change;
    std::vector<NetId> released, gained;  // persistent retarget route delta
    if (options.persistent_probes) {
      std::vector<NetId> fresh;
      for (std::size_t i = 0; i < probes.size(); ++i) {
        if (i < infra.probes.size()) {
          const NetId old = infra.probes[i].probed;
          if (retarget_probe(dut.netlist, infra.probes[i], probes[i])) {
            change.modified_cells.push_back(infra.probes[i].xor_lut);
            released.push_back(old);
            gained.push_back(probes[i]);
            ++it.probes_retargeted;
          }
        } else {
          fresh.push_back(probes[i]);
        }
      }
      if (!fresh.empty()) {
        // Probe budget grew: fall back to insertion for the extras.
        ObservationPlan extra = insert_observation(
            dut.netlist, fresh, "obs_i" + std::to_string(iter));
        it.probes_inserted = extra.probes.size();
        change.added_cells = extra.added_cells;
        infra.probes.insert(infra.probes.end(),
                            std::make_move_iterator(extra.probes.begin()),
                            std::make_move_iterator(extra.probes.end()));
        infra.added_cells.insert(infra.added_cells.end(),
                                 extra.added_cells.begin(),
                                 extra.added_cells.end());
      } else if (it.probes_retargeted > 0) {
        dut.netlist.validate();  // retargets bypass insert_observation's check
      }
    } else {
      iteration_plan = insert_observation(dut.netlist, probes,
                                          "obs_i" + std::to_string(iter));
      it.probes_inserted = iteration_plan.probes.size();
      change.added_cells = iteration_plan.added_cells;
    }
    // Pure retargets take the routing-only fast path; anything that adds
    // cells — and the rare congested-fabric retarget — pays the full
    // tile-clearing ECO.
    bool need_tile_eco =
        !change.added_cells.empty() ||
        (!options.persistent_probes && !change.modified_cells.empty());
    if (!need_tile_eco && !gained.empty()) {
      PnrEffort eff;
      if (apply_retarget_routing(dut, released, gained, eff)) {
        it.insert_effort = eff;
        result.total_effort += eff;
      } else {
        need_tile_eco = true;
      }
    }
    if (need_tile_eco &&
        (!change.added_cells.empty() || !change.modified_cells.empty())) {
      for (NetId p : probes)
        change.anchor_cells.push_back(dut.netlist.net(p).driver);
      const EcoOutcome eco =
          TilingEngine::apply_change(dut, change, options.eco);
      EMUTILE_CHECK(eco.success, "observation-logic ECO failed");
      it.insert_effort = eco.effort;
      it.tiles_affected = eco.affected.size();
      result.total_effort += eco.effort;
    }
    const std::vector<ProbePoint>& points =
        options.persistent_probes ? infra.probes : iteration_plan.probes;

    // ---- emulate and compare signatures ----
    Simulator sim(dut.netlist);
    sim.reset();
    for (const Pattern& p : patterns) sim.step(p);
    it.probe_bad.resize(probes.size());
    std::vector<NetId> bad_probes, good_probes;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const unsigned hard = read_signature(
          points[i], [&](CellId ff) { return sim.ff_state(ff); });
      const bool bad = hard != golden_sig[probes[i].value()];
      it.probe_bad[i] = bad ? 1 : 0;
      (bad ? bad_probes : good_probes).push_back(probes[i]);
    }

    // ---- remove the test logic (tiled clean-up, per-iteration mode) ----
    if (!options.persistent_probes) {
      it.remove_effort = remove_test_logic(dut, iteration_plan);
      result.total_effort += it.remove_effort;
    }

    // ---- narrow candidates ----
    std::unordered_set<std::uint32_t> cset;
    for (CellId c : candidates) cset.insert(c.value());
    const std::size_t before = cset.size();

    // Every bad probe must be explainable: intersect with each bad cone.
    for (NetId bp : bad_probes) {
      std::unordered_set<std::uint32_t> cone;
      for (CellId c : sequential_fanin_luts(dut.netlist, bp))
        cone.insert(c.value());
      for (auto sit = cset.begin(); sit != cset.end();)
        sit = cone.count(*sit) ? std::next(sit) : cset.erase(sit);
    }
    // Clean probes exonerate their cones (statistical, see header).
    if (!good_probes.empty()) {
      std::unordered_set<std::uint32_t> bad_union;
      for (NetId bp : bad_probes)
        for (CellId c : sequential_fanin_luts(dut.netlist, bp))
          bad_union.insert(c.value());
      std::unordered_set<std::uint32_t> exonerated;
      for (NetId gp : good_probes)
        for (CellId c : sequential_fanin_luts(dut.netlist, gp))
          if (bad_probes.empty() || !bad_union.count(c.value()))
            exonerated.insert(c.value());
      // Never exonerate the drivers of bad probes' cones entirely away.
      std::unordered_set<std::uint32_t> next;
      for (std::uint32_t c : cset)
        if (!exonerated.count(c)) next.insert(c);
      if (!next.empty()) cset = std::move(next);
    }

    if (cset.empty()) {
      // Overshoot — keep the previous set and stop.
      it.candidates_after = candidates.size();
      result.iterations.push_back(std::move(it));
      break;
    }
    candidates.clear();
    for (std::uint32_t c : cset) candidates.push_back(CellId{c});
    std::sort(candidates.begin(), candidates.end());
    it.candidates_after = candidates.size();
    const bool progress = candidates.size() < before;
    result.iterations.push_back(std::move(it));
    if (!progress) break;
  }

  // Persistent mode: one teardown for the whole loop instead of a removal
  // per iteration.
  if (!infra.added_cells.empty()) {
    result.teardown_effort = remove_test_logic(dut, infra);
    result.total_effort += result.teardown_effort;
  }

  result.suspects = candidates;
  result.narrowed = candidates.size() < initial_candidates;

  // Probe-ECO work counters for the fleet metrics view; the per-session
  // numbers stay in the (deterministic) result itself.
  {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.counter("localizer.iterations").add(result.iterations.size());
    std::uint64_t inserted = 0, retargeted = 0;
    for (const LocalizeIteration& iter : result.iterations) {
      inserted += iter.probes_inserted;
      retargeted += iter.probes_retargeted;
    }
    reg.counter("localizer.probes_inserted").add(inserted);
    reg.counter("localizer.probes_retargeted").add(retargeted);
    reg.counter("localizer.probe_work_units")
        .add(result.total_effort.instances_placed +
             result.total_effort.nets_routed);
  }
  return result;
}

}  // namespace emutile
