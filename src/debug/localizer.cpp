#include "debug/localizer.hpp"

#include <algorithm>
#include <unordered_set>

#include "debug/test_logic.hpp"
#include "netlist/netlist_ops.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

/// Backward sequential cone: all LUTs that can influence `net`, crossing
/// flip-flops.
std::vector<CellId> sequential_fanin_luts(const Netlist& nl, NetId net) {
  std::vector<CellId> luts;
  std::unordered_set<std::uint32_t> seen_cells;
  std::vector<NetId> stack{net};
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const CellId drv = nl.net(n).driver;
    if (!seen_cells.insert(drv.value()).second) continue;
    const Cell& c = nl.cell(drv);
    if (c.kind == CellKind::kLut) {
      luts.push_back(drv);
      for (NetId in : c.inputs) stack.push_back(in);
    } else if (c.kind == CellKind::kDff) {
      stack.push_back(c.inputs[0]);
    }
  }
  return luts;
}

/// Physically remove an observation plan: unbind instances, prune route
/// trees of the probed nets down to their remaining sinks, delete cells.
PnrEffort remove_test_logic(TiledDesign& design, const ObservationPlan& plan) {
  PnrEffort effort;

  // Nets driven by test cells lose their routing entirely.
  for (CellId c : plan.added_cells) {
    const NetId out = design.netlist.cell(c).output;
    if (out.valid()) design.routing->rip_up(out);
  }

  // Release instances: flip-flops first — a LUT may not be unbound while a
  // local FF still registers it.
  std::unordered_set<std::uint32_t> insts;
  for (int pass = 0; pass < 2; ++pass) {
    for (CellId c : plan.added_cells) {
      const bool is_ff = design.netlist.cell(c).kind == CellKind::kDff;
      if ((pass == 0) != is_ff) continue;
      const InstId inst = design.packed.inst_of_cell(c);
      if (inst.valid()) insts.insert(inst.value());
      design.packed.unbind_cell(c);
    }
  }
  for (std::uint32_t iv : insts) {
    const InstId inst{iv};
    if (design.placement->is_placed(inst)) design.placement->clear(inst);
    design.packed.remove_if_empty(inst);
  }

  // Netlist removal (breaks the signature rings internally).
  remove_added_cells(design.netlist, plan.added_cells);
  design.refresh_nets();

  // Probed nets lost their XOR sink: prune the dangling branch in place
  // (no re-routing; locked tiles stay untouched).
  for (const ProbePoint& probe : plan.probes) {
    if (!design.routing->has_tree(probe.probed)) continue;
    std::vector<RrNodeId> wanted;
    for (const PhysNet& pn : design.nets) {
      if (pn.net != probe.probed) continue;
      for (InstId s : pn.sink_insts)
        wanted.push_back(design.rr->sink(design.placement->site_of(s)));
    }
    design.routing->prune_to_sinks(probe.probed, wanted);
  }
  return effort;
}

}  // namespace

std::vector<CellId> output_cone(const Netlist& nl, std::size_t output_index) {
  EMUTILE_CHECK(output_index < nl.primary_outputs().size(),
                "output index out of range");
  const CellId po = nl.primary_outputs()[output_index];
  return sequential_fanin_luts(nl, nl.cell(po).inputs[0]);
}

LocalizeResult localize(TiledDesign& dut, const Netlist& golden,
                        std::size_t failing_output,
                        std::span<const Pattern> patterns,
                        const LocalizerOptions& options) {
  LocalizeResult result;

  std::vector<CellId> candidates = output_cone(dut.netlist, failing_output);
  const std::size_t initial_candidates = candidates.size();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (candidates.size() <= options.stop_at) break;

    LocalizeIteration it;
    it.candidates_before = candidates.size();

    // ---- choose probes: candidate outputs at level quantiles ----
    const std::vector<int> level = levelize(dut.netlist);
    std::vector<CellId> by_level = candidates;
    std::sort(by_level.begin(), by_level.end(), [&](CellId a, CellId b) {
      return level[a.value()] < level[b.value()];
    });
    const int k = std::min<int>(options.probes_per_iteration,
                                static_cast<int>(by_level.size()));
    std::unordered_set<std::uint32_t> probe_nets;
    for (int p = 0; p < k; ++p) {
      const std::size_t pos =
          (static_cast<std::size_t>(p) + 1) * by_level.size() /
          (static_cast<std::size_t>(k) + 1);
      const CellId cell = by_level[std::min(pos, by_level.size() - 1)];
      probe_nets.insert(dut.netlist.cell_output(cell).value());
    }
    std::vector<NetId> probes;
    for (std::uint32_t nv : probe_nets) probes.push_back(NetId{nv});
    it.probes = probes;

    // ---- insert observation logic as a tiled ECO ----
    const ObservationPlan plan = insert_observation(
        dut.netlist, probes, "obs_i" + std::to_string(iter));
    EcoChange change;
    change.added_cells = plan.added_cells;
    for (NetId p : probes)
      change.anchor_cells.push_back(dut.netlist.net(p).driver);
    const EcoOutcome eco =
        TilingEngine::apply_change(dut, change, options.eco);
    EMUTILE_CHECK(eco.success, "observation-logic ECO failed");
    it.insert_effort = eco.effort;
    it.tiles_affected = eco.affected.size();
    result.total_effort += eco.effort;

    // ---- emulate and compare signatures ----
    Simulator sim(dut.netlist);
    Simulator gold(golden);
    sim.reset();
    gold.reset();
    std::vector<unsigned> soft_sig(probes.size(), 0);
    for (const Pattern& p : patterns) {
      sim.step(p);
      gold.step(p);
      for (std::size_t i = 0; i < probes.size(); ++i)
        soft_sig[i] = signature_step(soft_sig[i], gold.net_value(probes[i]));
    }
    it.probe_bad.resize(probes.size());
    std::vector<NetId> bad_probes, good_probes;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      const unsigned hard = read_signature(
          plan.probes[i], [&](CellId ff) { return sim.ff_state(ff); });
      const bool bad = hard != soft_sig[i];
      it.probe_bad[i] = bad ? 1 : 0;
      (bad ? bad_probes : good_probes).push_back(probes[i]);
    }

    // ---- remove the test logic (tiled clean-up) ----
    it.remove_effort = remove_test_logic(dut, plan);
    result.total_effort += it.remove_effort;

    // ---- narrow candidates ----
    std::unordered_set<std::uint32_t> cset;
    for (CellId c : candidates) cset.insert(c.value());
    const std::size_t before = cset.size();

    // Every bad probe must be explainable: intersect with each bad cone.
    for (NetId bp : bad_probes) {
      std::unordered_set<std::uint32_t> cone;
      for (CellId c : sequential_fanin_luts(dut.netlist, bp))
        cone.insert(c.value());
      for (auto sit = cset.begin(); sit != cset.end();)
        sit = cone.count(*sit) ? std::next(sit) : cset.erase(sit);
    }
    // Clean probes exonerate their cones (statistical, see header).
    if (!good_probes.empty()) {
      std::unordered_set<std::uint32_t> bad_union;
      for (NetId bp : bad_probes)
        for (CellId c : sequential_fanin_luts(dut.netlist, bp))
          bad_union.insert(c.value());
      std::unordered_set<std::uint32_t> exonerated;
      for (NetId gp : good_probes)
        for (CellId c : sequential_fanin_luts(dut.netlist, gp))
          if (bad_probes.empty() || !bad_union.count(c.value()))
            exonerated.insert(c.value());
      // Never exonerate the drivers of bad probes' cones entirely away.
      std::unordered_set<std::uint32_t> next;
      for (std::uint32_t c : cset)
        if (!exonerated.count(c)) next.insert(c);
      if (!next.empty()) cset = std::move(next);
    }

    if (cset.empty()) {
      // Overshoot — keep the previous set and stop.
      it.candidates_after = candidates.size();
      result.iterations.push_back(std::move(it));
      break;
    }
    candidates.clear();
    for (std::uint32_t c : cset) candidates.push_back(CellId{c});
    std::sort(candidates.begin(), candidates.end());
    it.candidates_after = candidates.size();
    const bool progress = candidates.size() < before;
    result.iterations.push_back(std::move(it));
    if (!progress) break;
  }

  result.suspects = candidates;
  result.narrowed = candidates.size() < initial_candidates;
  return result;
}

}  // namespace emutile
