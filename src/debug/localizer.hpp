#pragma once
/// \file localizer.hpp
/// Iterative error localization (paper Sections 4 and 6, steps 16-20).
///
/// Each iteration: pick probe nets that bisect the candidate set, insert
/// signature compactors as a *tiled ECO* (this is where the paper's CAD-
/// effort savings appear), emulate, harvest signatures by readback, compare
/// against software-golden signatures, and narrow the candidates — bad
/// probes implicate their fan-in, clean probes exonerate theirs. The
/// exoneration is statistical (an error might not perturb a clean probe
/// under the given patterns), which mirrors real effect-cause debugging;
/// localize() falls back to the previous candidate set if narrowing
/// overshoots to the empty set.

#include <span>
#include <vector>

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "sim/patterns.hpp"

namespace emutile {

struct LocalizerOptions {
  int probes_per_iteration = 6;
  int max_iterations = 10;
  std::size_t stop_at = 2;     ///< stop when this few candidates remain
  std::uint64_t seed = 17;
  EcoOptions eco;              ///< engine knobs for the test-logic ECOs
  /// Keep the probe infrastructure alive across iterations: instead of the
  /// insert-ECO/remove-ECO pair every iteration, existing signature
  /// compactors are *retargeted* to the next probe set (one net edit per
  /// moved probe), and insertion only happens when the probe budget grows.
  /// One teardown ECO runs after the loop. This is the amortization overlay-
  /// based debug systems rely on; disable to get the one-shot pre-batching
  /// behavior for comparison benches.
  bool persistent_probes = true;
};

struct LocalizeIteration {
  std::vector<NetId> probes;
  std::vector<std::uint8_t> probe_bad;  ///< per probe: signature mismatch
  std::size_t candidates_before = 0;
  std::size_t candidates_after = 0;
  std::size_t tiles_affected = 0;
  std::size_t probes_inserted = 0;      ///< compactors newly built this iter
  std::size_t probes_retargeted = 0;    ///< compactors re-aimed, not rebuilt
  PnrEffort insert_effort;   ///< tiled ECO to add/retarget the probes
  PnrEffort remove_effort;   ///< tiled clean-up (per-iteration mode only)
};

struct LocalizeResult {
  bool narrowed = false;                ///< candidate set actually shrank
  std::vector<CellId> suspects;         ///< final candidates (LUT cells)
  std::vector<LocalizeIteration> iterations;
  PnrEffort total_effort;
  /// Final removal of the persistent probe infrastructure (already included
  /// in total_effort; zero in per-iteration mode, which removes as it goes).
  PnrEffort teardown_effort;
};

/// Run the localization loop on a tiled design whose netlist misbehaves on
/// `patterns` at primary output `failing_output` (from detect_errors).
/// `golden` is the reference netlist (same cell/net ids, pre-error).
[[nodiscard]] LocalizeResult localize(TiledDesign& dut, const Netlist& golden,
                                      std::size_t failing_output,
                                      std::span<const Pattern> patterns,
                                      const LocalizerOptions& options);

/// Sequential cone of influence of a primary output: every LUT that can
/// reach it combinationally or through flip-flops.
[[nodiscard]] std::vector<CellId> output_cone(const Netlist& nl,
                                              std::size_t output_index);

}  // namespace emutile
