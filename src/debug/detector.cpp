#include "debug/detector.hpp"

#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace emutile {

DetectResult detect_errors(const Netlist& dut, const Netlist& golden,
                           std::span<const Pattern> patterns) {
  EMUTILE_CHECK(dut.primary_inputs().size() == golden.primary_inputs().size(),
                "DUT and golden input counts differ");
  const std::size_t num_pos = std::min(dut.primary_outputs().size(),
                                       golden.primary_outputs().size());

  Simulator sim_dut(dut);
  Simulator sim_gold(golden);
  sim_dut.reset();
  sim_gold.reset();

  DetectResult result;
  for (const Pattern& p : patterns) {
    const auto out_dut = sim_dut.step(p);
    const auto out_gold = sim_gold.step(p);
    for (std::size_t i = 0; i < num_pos; ++i) {
      if ((out_dut[i] != 0) != (out_gold[i] != 0)) {
        result.error_detected = true;
        result.first_fail_cycle = result.cycles_run;
        result.failing_output = i;
        ++result.cycles_run;
        return result;
      }
    }
    ++result.cycles_run;
  }
  return result;
}

}  // namespace emutile
