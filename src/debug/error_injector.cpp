#include "debug/error_injector.hpp"

#include <algorithm>
#include <unordered_set>

#include "netlist/netlist_ops.hpp"
#include "util/check.hpp"

namespace emutile {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kLutFunction: return "lut-function";
    case ErrorKind::kWrongPolarity: return "wrong-polarity";
    case ErrorKind::kWrongConnection: return "wrong-connection";
  }
  return "?";
}

InjectedError inject_error(Netlist& nl, ErrorKind kind, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CellId> luts;
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kLut &&
        nl.cell(id).function.num_inputs() >= 1)
      luts.push_back(id);
  EMUTILE_CHECK(!luts.empty(), "no LUTs to inject an error into");

  InjectedError err;
  err.kind = kind;

  for (int attempt = 0; attempt < 256; ++attempt) {
    const CellId victim = luts[rng.next_below(luts.size())];
    const Cell& c = nl.cell(victim);
    err.cell = victim;
    err.original = c.function;

    switch (kind) {
      case ErrorKind::kLutFunction: {
        TruthTable tt = c.function;
        const unsigned flips = 1 + static_cast<unsigned>(rng.next_below(2));
        for (unsigned f = 0; f < flips; ++f) {
          const unsigned m =
              static_cast<unsigned>(rng.next_below(tt.num_minterms()));
          tt.set_bit(m, !tt.bit(m));
        }
        if (tt == c.function) continue;  // flipped the same bit twice
        nl.set_lut_function(victim, tt);
        err.description = "function bits flipped in '" + c.name + "'";
        return err;
      }
      case ErrorKind::kWrongPolarity: {
        nl.set_lut_function(victim, c.function.complement());
        err.description = "output inverted in '" + c.name + "'";
        return err;
      }
      case ErrorKind::kWrongConnection: {
        const std::uint32_t port =
            static_cast<std::uint32_t>(rng.next_below(c.inputs.size()));
        const NetId old_net = c.inputs[port];
        // The replacement must not be a current input and must not close a
        // combinational cycle (its driver must be outside our fanout cone).
        std::unordered_set<std::uint32_t> forbidden_cells;
        forbidden_cells.insert(victim.value());
        for (CellId f : fanout_cone(nl, c.output))
          forbidden_cells.insert(f.value());

        const std::vector<NetId> nets = nl.live_nets();
        for (int pick = 0; pick < 64; ++pick) {
          const NetId cand = nets[rng.next_below(nets.size())];
          if (cand == old_net) continue;
          if (std::find(c.inputs.begin(), c.inputs.end(), cand) !=
              c.inputs.end())
            continue;
          const Cell& drv = nl.cell(nl.net(cand).driver);
          if (drv.kind == CellKind::kOutput) continue;
          if (drv.kind == CellKind::kConst0 || drv.kind == CellKind::kConst1)
            continue;
          if (drv.kind == CellKind::kLut &&
              forbidden_cells.count(nl.net(cand).driver.value()))
            continue;
          nl.reconnect_input(victim, port, cand);
          err.port = port;
          err.original_net = old_net;
          err.wrong_net = cand;
          err.description = "input " + std::to_string(port) + " of '" +
                            c.name + "' mis-wired to '" + nl.net(cand).name +
                            "'";
          return err;
        }
        continue;  // try another victim
      }
    }
  }
  EMUTILE_CHECK(false, "could not inject a " << to_string(kind) << " error");
  return err;
}

void revert_error(Netlist& nl, const InjectedError& error) {
  switch (error.kind) {
    case ErrorKind::kLutFunction:
    case ErrorKind::kWrongPolarity:
      nl.set_lut_function(error.cell, error.original);
      break;
    case ErrorKind::kWrongConnection:
      nl.reconnect_input(error.cell, error.port, error.original_net);
      break;
  }
}

}  // namespace emutile
