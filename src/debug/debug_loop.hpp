#pragma once
/// \file debug_loop.hpp
/// The complete emulation debugging cycle of paper Section 3.1: build with
/// tiling, generate patterns, detect, localize, correct, re-verify — with
/// the back-end CAD effort of every iteration metered.

#include <cstdint>

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "debug/corrector.hpp"
#include "debug/detector.hpp"
#include "debug/error_injector.hpp"
#include "debug/localizer.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

struct DebugSessionOptions {
  ErrorKind error_kind = ErrorKind::kWrongPolarity;
  std::uint64_t seed = 1;
  std::size_t num_patterns = 512;
  TilingParams tiling;
  LocalizerOptions localizer;
  EcoOptions eco;
};

struct DebugSessionReport {
  InjectedError injected;
  DetectResult detection;
  LocalizeResult localization;
  CorrectionResult correction;
  bool final_clean = false;     ///< re-verification after correction
  PnrEffort build_effort;       ///< initial tiled implementation
  PnrEffort debug_effort;       ///< all debugging-iteration ECOs
  std::size_t design_clbs = 0;
};

/// Run one full debugging session on (a copy of) `golden_netlist`:
/// inject an error, implement with tiling, then detect/localize/correct.
/// Deterministic in options.seed.
[[nodiscard]] DebugSessionReport run_debug_session(
    const Netlist& golden_netlist, const DebugSessionOptions& options);

}  // namespace emutile
