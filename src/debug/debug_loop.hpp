#pragma once
/// \file debug_loop.hpp
/// The complete emulation debugging cycle of paper Section 3.1: build with
/// tiling, generate patterns, detect, localize, correct, re-verify — with
/// the back-end CAD effort of every iteration metered.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "debug/corrector.hpp"
#include "debug/detector.hpp"
#include "debug/error_injector.hpp"
#include "debug/localizer.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

/// The phases of one debugging session, in execution order. Reported to
/// SessionHooks::on_phase just before each phase starts.
enum class SessionPhase : std::uint8_t {
  kInject,    ///< mutate the DUT netlist with the design error
  kBuild,     ///< initial tiled implementation (steps 1-8)
  kDetect,    ///< pattern emulation vs. golden (step 10)
  kLocalize,  ///< iterative probe insertion (steps 16-21)
  kCorrect,   ///< candidate fixes as tiled ECOs (Section 5)
  kVerify     ///< final re-emulation of the corrected design
};

[[nodiscard]] const char* to_string(SessionPhase phase);

/// Number of SessionPhase values — sizes the per-phase timing arrays.
inline constexpr std::size_t kNumSessionPhases = 6;

/// Observation and cancellation hooks for a running session. Drivers that
/// run thousands of sessions (the campaign engine) use these for progress
/// reporting and cooperative early termination; both default to no-ops.
struct SessionHooks {
  /// Called at each phase boundary. Return false to cancel the session:
  /// the report is returned as-is with `cancelled` set and the remaining
  /// phases skipped. Must be safe to call from whichever thread runs the
  /// session.
  std::function<bool(SessionPhase)> on_phase;
};

struct DebugSessionOptions {
  ErrorKind error_kind = ErrorKind::kWrongPolarity;
  /// Session seed: drives error injection, test patterns, and the localizer.
  /// The physical build is seeded by `tiling.seed` (NOT this), so sessions
  /// that differ only in the injected error share one implementation — the
  /// basis of warm-started campaigns.
  std::uint64_t seed = 1;
  std::size_t num_patterns = 512;
  TilingParams tiling;
  LocalizerOptions localizer;
  EcoOptions eco;
  SessionHooks hooks;
  /// Warm-start baseline: a tiled implementation of the *golden* netlist
  /// built with exactly `tiling`. When the injected error is a pure LUT
  /// reconfiguration (function/polarity bugs — the physical flow never reads
  /// truth tables), the build phase clones this instead of re-running the
  /// full place-and-route, with a bit-identical physical result; errors that
  /// change connectivity fall back to a cold build automatically. Campaign
  /// drivers share one baseline across every session of a (design, tiling)
  /// pair (see TiledBaselineCache).
  std::shared_ptr<const TiledDesign> warm_baseline;
};

struct DebugSessionReport {
  InjectedError injected;
  DetectResult detection;
  LocalizeResult localization;
  CorrectionResult correction;
  bool final_clean = false;     ///< re-verification after correction
  bool cancelled = false;       ///< a hook stopped the session early
  bool warm_started = false;    ///< build phase cloned the shared baseline
  PnrEffort build_effort;       ///< initial tiled implementation
  PnrEffort debug_effort;       ///< all debugging-iteration ECOs
  std::size_t design_clbs = 0;
  /// Wall-clock seconds spent per phase, and their sum. Nondeterministic by
  /// nature: campaign aggregation reports these only through the timing
  /// emitters (timing_csv/timing_json, print_summary) and benches, never
  /// through the byte-deterministic to_csv/to_json.
  std::array<double, kNumSessionPhases> phase_seconds{};
  double wall_seconds = 0.0;
};

/// Run one full debugging session on (a copy of) `golden_netlist`:
/// inject an error, implement with tiling, then detect/localize/correct.
/// Deterministic in (options.seed, options.tiling.seed) — everything except
/// the wall-clock phase timings.
[[nodiscard]] DebugSessionReport run_debug_session(
    const Netlist& golden_netlist, const DebugSessionOptions& options);

}  // namespace emutile
