#pragma once
/// \file debug_loop.hpp
/// The complete emulation debugging cycle of paper Section 3.1: build with
/// tiling, generate patterns, detect, localize, correct, re-verify — with
/// the back-end CAD effort of every iteration metered.

#include <cstdint>
#include <functional>

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "debug/corrector.hpp"
#include "debug/detector.hpp"
#include "debug/error_injector.hpp"
#include "debug/localizer.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

/// The phases of one debugging session, in execution order. Reported to
/// SessionHooks::on_phase just before each phase starts.
enum class SessionPhase : std::uint8_t {
  kInject,    ///< mutate the DUT netlist with the design error
  kBuild,     ///< initial tiled implementation (steps 1-8)
  kDetect,    ///< pattern emulation vs. golden (step 10)
  kLocalize,  ///< iterative probe insertion (steps 16-21)
  kCorrect,   ///< candidate fixes as tiled ECOs (Section 5)
  kVerify     ///< final re-emulation of the corrected design
};

[[nodiscard]] const char* to_string(SessionPhase phase);

/// Observation and cancellation hooks for a running session. Drivers that
/// run thousands of sessions (the campaign engine) use these for progress
/// reporting and cooperative early termination; both default to no-ops.
struct SessionHooks {
  /// Called at each phase boundary. Return false to cancel the session:
  /// the report is returned as-is with `cancelled` set and the remaining
  /// phases skipped. Must be safe to call from whichever thread runs the
  /// session.
  std::function<bool(SessionPhase)> on_phase;
};

struct DebugSessionOptions {
  ErrorKind error_kind = ErrorKind::kWrongPolarity;
  std::uint64_t seed = 1;
  std::size_t num_patterns = 512;
  TilingParams tiling;
  LocalizerOptions localizer;
  EcoOptions eco;
  SessionHooks hooks;
};

struct DebugSessionReport {
  InjectedError injected;
  DetectResult detection;
  LocalizeResult localization;
  CorrectionResult correction;
  bool final_clean = false;     ///< re-verification after correction
  bool cancelled = false;       ///< a hook stopped the session early
  PnrEffort build_effort;       ///< initial tiled implementation
  PnrEffort debug_effort;       ///< all debugging-iteration ECOs
  std::size_t design_clbs = 0;
};

/// Run one full debugging session on (a copy of) `golden_netlist`:
/// inject an error, implement with tiling, then detect/localize/correct.
/// Deterministic in options.seed.
[[nodiscard]] DebugSessionReport run_debug_session(
    const Netlist& golden_netlist, const DebugSessionOptions& options);

}  // namespace emutile
