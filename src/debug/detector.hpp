#pragma once
/// \file detector.hpp
/// Error detection: run the emulated design against golden simulation over a
/// pattern set and find the first output mismatch (paper Section 4.1).

#include <cstddef>
#include <span>

#include "netlist/netlist.hpp"
#include "sim/patterns.hpp"

namespace emutile {

struct DetectResult {
  bool error_detected = false;
  std::size_t first_fail_cycle = 0;
  std::size_t failing_output = 0;  ///< index into primary_outputs()
  std::size_t cycles_run = 0;
};

/// Compare `dut` against `golden` cycle by cycle. Both netlists must have
/// the same primary inputs; the comparison covers the outputs they share by
/// position (the DUT may carry extra test logic, which never adds outputs).
[[nodiscard]] DetectResult detect_errors(const Netlist& dut,
                                         const Netlist& golden,
                                         std::span<const Pattern> patterns);

}  // namespace emutile
