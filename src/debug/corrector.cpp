#include "debug/corrector.hpp"

#include "debug/detector.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

/// What a fix changed, so it can be reverted.
struct AppliedFix {
  CellId cell;
  bool function_changed = false;
  TruthTable old_function;
  std::vector<std::pair<std::uint32_t, NetId>> rewired;  // (port, old net)
};

/// Make `cell` in `dut` match its golden counterpart. Returns nullopt if it
/// already matches.
std::optional<AppliedFix> apply_fix(Netlist& dut, const Netlist& golden,
                                    CellId cell) {
  const Cell& d = dut.cell(cell);
  const Cell& g = golden.cell(cell);
  EMUTILE_CHECK(d.kind == CellKind::kLut && g.kind == CellKind::kLut,
                "corrector handles LUT suspects");
  AppliedFix fix;
  fix.cell = cell;
  if (d.function != g.function) {
    fix.function_changed = true;
    fix.old_function = d.function;
    dut.set_lut_function(cell, g.function);
  }
  for (std::uint32_t p = 0; p < d.inputs.size(); ++p) {
    // Golden net ids are valid in the DUT: the DUT netlist only ever gained
    // (and lost) test cells beyond the golden baseline.
    if (d.inputs[p] != g.inputs[p]) {
      fix.rewired.emplace_back(p, d.inputs[p]);
      dut.reconnect_input(cell, p, g.inputs[p]);
    }
  }
  if (!fix.function_changed && fix.rewired.empty()) return std::nullopt;
  return fix;
}

void revert_fix(Netlist& dut, const AppliedFix& fix) {
  if (fix.function_changed) dut.set_lut_function(fix.cell, fix.old_function);
  for (const auto& [port, old_net] : fix.rewired)
    dut.reconnect_input(fix.cell, port, old_net);
}

}  // namespace

CorrectionResult correct_design(TiledDesign& dut, const Netlist& golden,
                                std::span<const CellId> suspects,
                                std::span<const Pattern> patterns,
                                const EcoOptions& options) {
  CorrectionResult result;
  for (CellId suspect : suspects) {
    auto fix = apply_fix(dut.netlist, golden, suspect);
    if (!fix) continue;  // structurally identical to spec — not the bug
    ++result.attempts;

    // Physical update: the paper's flow clears and re-implements the tile
    // holding the change (steps 17-20).
    EcoChange change;
    change.modified_cells = {suspect};
    const EcoOutcome eco = TilingEngine::apply_change(dut, change, options);
    EMUTILE_CHECK(eco.success, "correction ECO failed");
    result.total_effort += eco.effort;

    const DetectResult check = detect_errors(dut.netlist, golden, patterns);
    if (!check.error_detected) {
      result.corrected = true;
      result.fixed_cell = suspect;
      return result;
    }

    // Wrong suspect: revert (another debugging iteration's worth of effort).
    revert_fix(dut.netlist, *fix);
    EcoChange undo;
    undo.modified_cells = {suspect};
    const EcoOutcome back = TilingEngine::apply_change(dut, undo, options);
    EMUTILE_CHECK(back.success, "correction revert ECO failed");
    result.total_effort += back.effort;
  }
  return result;
}

}  // namespace emutile
