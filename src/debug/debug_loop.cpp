#include "debug/debug_loop.hpp"

#include "sim/patterns.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/phase_timer.hpp"

namespace emutile {

const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kInject: return "inject";
    case SessionPhase::kBuild: return "build";
    case SessionPhase::kDetect: return "detect";
    case SessionPhase::kLocalize: return "localize";
    case SessionPhase::kCorrect: return "correct";
    case SessionPhase::kVerify: return "verify";
  }
  return "?";
}

namespace {

using SessionTimer = PhaseTimer<kNumSessionPhases>;

/// Phase-boundary hook check; true means "keep going". On "go", the timer
/// switches to the new phase.
bool enter_phase(const SessionHooks& hooks, SessionPhase phase,
                 DebugSessionReport& report, SessionTimer& timer) {
  if (hooks.on_phase && !hooks.on_phase(phase)) {
    report.cancelled = true;
    return false;
  }
  timer.begin(static_cast<std::size_t>(phase));
  return true;
}

/// Session body; separated so the early returns all flow through the
/// timing epilogue in run_debug_session.
void run_session_phases(const Netlist& golden_netlist,
                        const DebugSessionOptions& options,
                        DebugSessionReport& report, SessionTimer& timer) {
  const SessionHooks& hooks = options.hooks;

  // The design under test: golden plus one injected design error (the bug
  // "shipped" in the HDL, so it is part of the original implementation).
  if (!enter_phase(hooks, SessionPhase::kInject, report, timer)) return;
  Netlist dut_netlist = golden_netlist;
  report.injected =
      inject_error(dut_netlist, options.error_kind, options.seed);

  // Steps 1-8: implement with resource slack and locked tiles. A warm
  // baseline (the golden netlist's tiled implementation) short-circuits the
  // build whenever the injected error is a pure LUT reconfiguration — the
  // cloned physical state is bit-identical to what a cold build of the
  // injected netlist would produce, because the flow never reads truth
  // tables. Connectivity-changing errors build cold.
  if (!enter_phase(hooks, SessionPhase::kBuild, report, timer)) return;
  TiledDesign dut;
  if (options.warm_baseline &&
      TilingEngine::lut_reconfig_equivalent(options.warm_baseline->netlist,
                                            dut_netlist)) {
    dut = TilingEngine::rebase(*options.warm_baseline, std::move(dut_netlist));
    report.warm_started = true;
  } else {
    dut = TilingEngine::build(std::move(dut_netlist), options.tiling);
  }
  report.build_effort = dut.build_effort;
  report.design_clbs = dut.packed.num_clbs();

  // Step 10: test patterns (software).
  if (!enter_phase(hooks, SessionPhase::kDetect, report, timer)) return;
  const std::vector<Pattern> patterns = random_patterns(
      golden_netlist.primary_inputs().size(), options.num_patterns,
      options.seed ^ 0xA5A5ULL);

  // Detection.
  report.detection = detect_errors(dut.netlist, golden_netlist, patterns);
  if (!report.detection.error_detected) {
    EMUTILE_INFO("injected error not excited by " << patterns.size()
                                                  << " patterns");
    return;
  }

  // Localization (steps 16-21, iterated).
  if (!enter_phase(hooks, SessionPhase::kLocalize, report, timer)) return;
  LocalizerOptions lo = options.localizer;
  lo.eco = options.eco;
  report.localization = localize(dut, golden_netlist,
                                 report.detection.failing_output, patterns, lo);
  report.debug_effort += report.localization.total_effort;

  // Correction (Section 5) and re-verification.
  if (!enter_phase(hooks, SessionPhase::kCorrect, report, timer)) return;
  report.correction =
      correct_design(dut, golden_netlist, report.localization.suspects,
                     patterns, options.eco);
  report.debug_effort += report.correction.total_effort;

  if (report.correction.corrected) {
    if (!enter_phase(hooks, SessionPhase::kVerify, report, timer)) return;
    const DetectResult final_check =
        detect_errors(dut.netlist, golden_netlist, patterns);
    report.final_clean = !final_check.error_detected;
    dut.validate();
  }
}

}  // namespace

DebugSessionReport run_debug_session(const Netlist& golden_netlist,
                                     const DebugSessionOptions& options) {
  DebugSessionReport report;
  SessionTimer timer;
  run_session_phases(golden_netlist, options, report, timer);
  timer.stop();
  report.phase_seconds = timer.seconds();
  report.wall_seconds = timer.total();
  return report;
}

}  // namespace emutile
