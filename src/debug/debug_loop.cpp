#include "debug/debug_loop.hpp"

#include "sim/patterns.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

DebugSessionReport run_debug_session(const Netlist& golden_netlist,
                                     const DebugSessionOptions& options) {
  DebugSessionReport report;

  // The design under test: golden plus one injected design error (the bug
  // "shipped" in the HDL, so it is part of the original implementation).
  Netlist dut_netlist = golden_netlist;
  report.injected =
      inject_error(dut_netlist, options.error_kind, options.seed);

  // Steps 1-8: implement with resource slack and locked tiles.
  TilingParams tp = options.tiling;
  tp.seed = options.seed;
  TiledDesign dut = TilingEngine::build(std::move(dut_netlist), tp);
  report.build_effort = dut.build_effort;
  report.design_clbs = dut.packed.num_clbs();

  // Step 10: test patterns (software).
  const std::vector<Pattern> patterns = random_patterns(
      golden_netlist.primary_inputs().size(), options.num_patterns,
      options.seed ^ 0xA5A5ULL);

  // Detection.
  report.detection = detect_errors(dut.netlist, golden_netlist, patterns);
  if (!report.detection.error_detected) {
    EMUTILE_INFO("injected error not excited by " << patterns.size()
                                                  << " patterns");
    return report;
  }

  // Localization (steps 16-21, iterated).
  LocalizerOptions lo = options.localizer;
  lo.eco = options.eco;
  report.localization = localize(dut, golden_netlist,
                                 report.detection.failing_output, patterns, lo);
  report.debug_effort += report.localization.total_effort;

  // Correction (Section 5) and re-verification.
  report.correction =
      correct_design(dut, golden_netlist, report.localization.suspects,
                     patterns, options.eco);
  report.debug_effort += report.correction.total_effort;

  if (report.correction.corrected) {
    const DetectResult final_check =
        detect_errors(dut.netlist, golden_netlist, patterns);
    report.final_clean = !final_check.error_detected;
    dut.validate();
  }
  return report;
}

}  // namespace emutile
