#include "debug/debug_loop.hpp"

#include "sim/patterns.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace emutile {

const char* to_string(SessionPhase phase) {
  switch (phase) {
    case SessionPhase::kInject: return "inject";
    case SessionPhase::kBuild: return "build";
    case SessionPhase::kDetect: return "detect";
    case SessionPhase::kLocalize: return "localize";
    case SessionPhase::kCorrect: return "correct";
    case SessionPhase::kVerify: return "verify";
  }
  return "?";
}

namespace {
/// Phase-boundary hook check; true means "keep going".
bool enter_phase(const SessionHooks& hooks, SessionPhase phase,
                 DebugSessionReport& report) {
  if (!hooks.on_phase) return true;
  if (hooks.on_phase(phase)) return true;
  report.cancelled = true;
  return false;
}
}  // namespace

DebugSessionReport run_debug_session(const Netlist& golden_netlist,
                                     const DebugSessionOptions& options) {
  DebugSessionReport report;
  const SessionHooks& hooks = options.hooks;

  // The design under test: golden plus one injected design error (the bug
  // "shipped" in the HDL, so it is part of the original implementation).
  if (!enter_phase(hooks, SessionPhase::kInject, report)) return report;
  Netlist dut_netlist = golden_netlist;
  report.injected =
      inject_error(dut_netlist, options.error_kind, options.seed);

  // Steps 1-8: implement with resource slack and locked tiles.
  if (!enter_phase(hooks, SessionPhase::kBuild, report)) return report;
  TilingParams tp = options.tiling;
  tp.seed = options.seed;
  TiledDesign dut = TilingEngine::build(std::move(dut_netlist), tp);
  report.build_effort = dut.build_effort;
  report.design_clbs = dut.packed.num_clbs();

  // Step 10: test patterns (software).
  if (!enter_phase(hooks, SessionPhase::kDetect, report)) return report;
  const std::vector<Pattern> patterns = random_patterns(
      golden_netlist.primary_inputs().size(), options.num_patterns,
      options.seed ^ 0xA5A5ULL);

  // Detection.
  report.detection = detect_errors(dut.netlist, golden_netlist, patterns);
  if (!report.detection.error_detected) {
    EMUTILE_INFO("injected error not excited by " << patterns.size()
                                                  << " patterns");
    return report;
  }

  // Localization (steps 16-21, iterated).
  if (!enter_phase(hooks, SessionPhase::kLocalize, report)) return report;
  LocalizerOptions lo = options.localizer;
  lo.eco = options.eco;
  report.localization = localize(dut, golden_netlist,
                                 report.detection.failing_output, patterns, lo);
  report.debug_effort += report.localization.total_effort;

  // Correction (Section 5) and re-verification.
  if (!enter_phase(hooks, SessionPhase::kCorrect, report)) return report;
  report.correction =
      correct_design(dut, golden_netlist, report.localization.suspects,
                     patterns, options.eco);
  report.debug_effort += report.correction.total_effort;

  if (report.correction.corrected) {
    if (!enter_phase(hooks, SessionPhase::kVerify, report)) return report;
    const DetectResult final_check =
        detect_errors(dut.netlist, golden_netlist, patterns);
    report.final_clean = !final_check.error_detected;
    dut.validate();
  }
  return report;
}

}  // namespace emutile
