#include "debug/test_logic.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace emutile {

ObservationPlan insert_observation(Netlist& nl,
                                   const std::vector<NetId>& probes,
                                   const std::string& tag) {
  ObservationPlan plan;
  int idx = 0;
  for (NetId probe : probes) {
    const std::string base = tag + "_p" + std::to_string(idx++);
    ProbePoint pp;
    pp.probed = probe;

    // Ring: ff0 <- xor(ff3, probe); ff1 <- ff0; ff2 <- ff1; ff3 <- ff2.
    // Create the XOR first with a placeholder second input (the probe twice),
    // then rewire once ff3 exists — keeps construction single-pass safe.
    const CellId xor_lut = nl.add_lut(base + "_x", TruthTable::xor_all(2),
                                      {probe, probe});
    const CellId ff0 = nl.add_dff(base + "_s0", nl.cell_output(xor_lut));
    const CellId ff1 = nl.add_dff(base + "_s1", nl.cell_output(ff0));
    const CellId ff2 = nl.add_dff(base + "_s2", nl.cell_output(ff1));
    const CellId ff3 = nl.add_dff(base + "_s3", nl.cell_output(ff2));
    nl.reconnect_input(xor_lut, 1, nl.cell_output(ff3));

    pp.xor_lut = xor_lut;
    pp.sig_ffs = {ff0, ff1, ff2, ff3};
    plan.added_cells.insert(plan.added_cells.end(),
                            {xor_lut, ff0, ff1, ff2, ff3});
    plan.probes.push_back(std::move(pp));
  }
  nl.validate();
  return plan;
}

bool retarget_probe(Netlist& nl, ProbePoint& probe, NetId net) {
  if (probe.probed == net) return false;
  nl.reconnect_input(probe.xor_lut, 0, net);
  probe.probed = net;
  return true;
}

ControlPoint insert_control(Netlist& nl, NetId net, const std::string& tag) {
  ControlPoint cp;
  cp.controlled = net;

  // Snapshot the sinks to be rewired before adding any test logic.
  std::vector<PinRef> old_sinks = nl.net(net).sinks;

  // 4-bit LFSR (x^4 + x^3 + 1): fb = q3 ^ q2; q0 <- fb; qi <- q(i-1).
  const CellId fb = nl.add_lut(tag + "_fb", TruthTable::xor_all(2),
                               {net, net});  // placeholder inputs
  const CellId q0 = nl.add_dff(tag + "_q0", nl.cell_output(fb));
  const CellId q1 = nl.add_dff(tag + "_q1", nl.cell_output(q0));
  const CellId q2 = nl.add_dff(tag + "_q2", nl.cell_output(q1));
  const CellId q3 = nl.add_dff(tag + "_q3", nl.cell_output(q2));
  nl.reconnect_input(fb, 0, nl.cell_output(q3));
  nl.reconnect_input(fb, 1, nl.cell_output(q2));
  // An all-zero LFSR stays zero; inject a constant-escape: q0's D is
  // fb XOR NOT(q0 | q1 | q2 | q3) would cost another LUT — instead make the
  // feedback LUT 3-input: fb = q3 ^ q2 ^ NOR(q3, q2). Truth: for (a=q3,b=q2):
  // f = a^b^!(a|b) -> 00:1, 01:1, 10:1, 11:0 -> NAND. That self-starts.
  {
    TruthTable nand2 = TruthTable::nand_all(2);
    nl.set_lut_function(fb, nand2);
  }

  // 3-bit trigger counter; sel = AND(c0, c1, c2) (1 cycle in 8).
  const CellId c0_lut = nl.add_lut(tag + "_c0n", TruthTable::inverter(),
                                   {nl.cell_output(q0)});  // placeholder input
  const CellId c0 = nl.add_dff(tag + "_c0", nl.cell_output(c0_lut));
  nl.reconnect_input(c0_lut, 0, nl.cell_output(c0));
  // c1 toggles when c0 is 1: c1' = c1 ^ c0.
  const CellId c1_lut = nl.add_lut(tag + "_c1x", TruthTable::xor_all(2),
                                   {nl.cell_output(c0), nl.cell_output(c0)});
  const CellId c1 = nl.add_dff(tag + "_c1", nl.cell_output(c1_lut));
  nl.reconnect_input(c1_lut, 1, nl.cell_output(c1));
  // c2' = c2 ^ (c0 & c1).
  TruthTable c2_tt(3);  // inputs (c0, c1, c2): f = c2 ^ (c0 & c1)
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = m & 1u, b = (m >> 1) & 1u, c = (m >> 2) & 1u;
    c2_tt.set_bit(m, c ^ (a && b));
  }
  const CellId c2_lut =
      nl.add_lut(tag + "_c2x", c2_tt,
                 {nl.cell_output(c0), nl.cell_output(c1), nl.cell_output(c1)});
  const CellId c2 = nl.add_dff(tag + "_c2", nl.cell_output(c2_lut));
  nl.reconnect_input(c2_lut, 2, nl.cell_output(c2));

  const CellId sel = nl.add_lut(
      tag + "_sel", TruthTable::and_all(3),
      {nl.cell_output(c0), nl.cell_output(c1), nl.cell_output(c2)});

  // Mux: inputs (sel, original, injected) -> sel ? injected : original.
  const CellId mux =
      nl.add_lut(tag + "_mux", TruthTable::mux21(),
                 {nl.cell_output(sel), net, nl.cell_output(q0)});
  cp.mux_lut = mux;

  // Rewire the original sinks onto the mux output.
  std::unordered_set<std::uint32_t> rewired;
  for (const PinRef& pin : old_sinks) {
    nl.reconnect_input(pin.cell, pin.port, nl.cell_output(mux));
    if (rewired.insert(pin.cell.value()).second)
      cp.rewired.push_back(pin.cell);
  }

  cp.added_cells = {fb, q0, q1, q2, q3, c0_lut, c0,  c1_lut,
                    c1, c2_lut, c2, sel, mux};
  nl.validate();
  return cp;
}

void remove_added_cells(Netlist& nl, const std::vector<CellId>& added) {
  std::unordered_set<std::uint32_t> pending;
  for (CellId c : added) pending.insert(c.value());
  EMUTILE_CHECK(!nl.primary_inputs().empty(),
                "removal needs a parking net (no primary inputs)");
  const NetId park = nl.cell_output(nl.primary_inputs().front());

  while (!pending.empty()) {
    // Peel cells whose outputs have no remaining sinks.
    bool progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const CellId id{*it};
      const Cell& c = nl.cell(id);
      if (!c.output.valid() || nl.net(c.output).sinks.empty()) {
        nl.remove_cell(id);
        it = pending.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    if (progress) continue;

    // Stuck: the test logic contains feedback (e.g. the signature ring).
    // Break one internal edge by parking a pending-to-pending input on a
    // neutral net; the cells are about to be deleted, so the temporary
    // rewiring never becomes observable.
    bool broke = false;
    for (std::uint32_t cv : pending) {
      const CellId id{cv};
      const Cell& c = nl.cell(id);
      for (std::uint32_t port = 0; port < c.inputs.size() && !broke; ++port) {
        const NetId in = c.inputs[port];
        if (in == park) continue;
        if (pending.count(nl.net(in).driver.value())) {
          nl.reconnect_input(id, port, park);
          broke = true;
        }
      }
      if (broke) break;
    }
    EMUTILE_CHECK(broke,
                  "test-logic removal stuck: a listed cell still has "
                  "external fanout");
  }
  nl.validate();
}

void remove_control(Netlist& nl, const ControlPoint& cp) {
  // Restore the original connectivity before deleting the test hardware.
  for (CellId sink : cp.rewired) {
    const Cell& c = nl.cell(sink);
    for (std::uint32_t port = 0; port < c.inputs.size(); ++port)
      if (c.inputs[port] == nl.cell_output(cp.mux_lut))
        nl.reconnect_input(sink, port, cp.controlled);
  }
  remove_added_cells(nl, cp.added_cells);
}

}  // namespace emutile
