#pragma once
/// \file test_logic.hpp
/// Control and observation logic (paper Section 4).
///
/// Observation: each probed net gets a 4-bit signature compactor (a small
/// MISR): one XOR LUT folding the probe into a 4-stage flip-flop ring. After
/// an emulation run the signature is harvested by readback and compared with
/// a software-computed golden signature — the paper's "logic which
/// automatically detects an error upon its occurrence".
///
/// Control: a probed net can be overridden through an inserted 2:1 mux fed
/// by an on-chip pattern source (4-bit LFSR) and gated by a trigger counter,
/// the paper's "logic inputs specific state to suspected design error
/// areas". Inserting the mux rewires every sink of the controlled net, so
/// control points affect every tile those sinks occupy — exactly the
/// distributed-test-point cost the paper discusses for Figure 4.

#include <vector>

#include "netlist/netlist.hpp"

namespace emutile {

/// One probe's observation hardware.
struct ProbePoint {
  NetId probed;
  CellId xor_lut;               ///< folds probe into the ring
  std::vector<CellId> sig_ffs;  ///< 4 flip-flops; [0] is the XOR'd stage
};

/// Result of inserting observation logic.
struct ObservationPlan {
  std::vector<ProbePoint> probes;
  std::vector<CellId> added_cells;  ///< everything, for EcoChange/removal
};

/// Bits per signature compactor.
inline constexpr int kSignatureBits = 4;

/// Insert a signature compactor on every net in `probes`.
/// `tag` disambiguates cell names across iterations.
[[nodiscard]] ObservationPlan insert_observation(Netlist& nl,
                                                 const std::vector<NetId>& probes,
                                                 const std::string& tag);

/// Point an existing compactor at a different net: only the XOR's probe
/// input (port 0) is rewired, the 4-FF ring stays intact, so the *physical*
/// delta is one net losing a sink and one gaining it — far cheaper than the
/// insert/remove ECO pair per localization iteration. Returns true when the
/// netlist changed (false: the compactor already watches `net`). The caller
/// batches validate() and the tiled ECO for the whole retargeted set.
bool retarget_probe(Netlist& nl, ProbePoint& probe, NetId net);

/// Software model of the compactor (must mirror the hardware exactly):
/// state' = shift left, stage0 = old stage3 XOR probe.
[[nodiscard]] inline unsigned signature_step(unsigned state, bool probe) {
  return ((state << 1) & 0xEu) | (((state >> 3) & 1u) ^ (probe ? 1u : 0u));
}

/// Read the hardware signature from flip-flop states (bit i = sig_ffs[i]).
template <typename FfReader>
[[nodiscard]] unsigned read_signature(const ProbePoint& probe,
                                      FfReader&& ff_state) {
  unsigned sig = 0;
  for (int i = 0; i < kSignatureBits; ++i)
    if (ff_state(probe.sig_ffs[static_cast<std::size_t>(i)])) sig |= 1u << i;
  return sig;
}

/// One control point's hardware.
struct ControlPoint {
  NetId controlled;              ///< original net
  CellId mux_lut;                ///< sel ? injected : original
  std::vector<CellId> rewired;   ///< sink cells moved onto the mux output
  std::vector<CellId> added_cells;
};

/// Insert a controllability mux on `net`, driven by a fresh 4-bit LFSR and a
/// 3-bit trigger counter (asserts injection 1 cycle in 8).
[[nodiscard]] ControlPoint insert_control(Netlist& nl, NetId net,
                                          const std::string& tag);

/// Remove previously added test cells from the netlist (reverse dependency
/// order; the physical clean-up is the caller's ECO). For control points use
/// remove_control, which first restores the original connectivity.
void remove_added_cells(Netlist& nl, const std::vector<CellId>& added);

/// Undo a control point: rewire its sinks back to the controlled net, then
/// delete the mux/LFSR/counter cells.
void remove_control(Netlist& nl, const ControlPoint& cp);

}  // namespace emutile
