#pragma once
/// \file corrector.hpp
/// Error correction (paper Section 5): express a candidate fix as a netlist
/// edit, apply it through the tiling engine (steps 17-20), and verify by
/// re-emulation. Suspects are tried in order; a fix that does not make the
/// design match golden behaviour is reverted (another tiled ECO).
///
/// The reference netlist stands in for designer knowledge of the intended
/// behaviour: a suspect's fix is "make this cell match the specification".

#include <span>

#include "core/tiled_design.hpp"
#include "core/tiling_engine.hpp"
#include "sim/patterns.hpp"

namespace emutile {

struct CorrectionResult {
  bool corrected = false;
  CellId fixed_cell;
  int attempts = 0;          ///< suspects tried
  PnrEffort total_effort;    ///< all fix/revert ECOs
};

/// Try to repair `dut` so it matches `golden` on `patterns`. Returns after
/// the first verified fix. Suspects whose netlist view already matches
/// golden are skipped for free.
[[nodiscard]] CorrectionResult correct_design(TiledDesign& dut,
                                              const Netlist& golden,
                                              std::span<const CellId> suspects,
                                              std::span<const Pattern> patterns,
                                              const EcoOptions& options);

}  // namespace emutile
