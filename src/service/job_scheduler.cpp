#include "service/job_scheduler.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {
/// Scheduler metrics, resolved once: submit/pick are the service hot path.
struct SchedulerMetrics {
  MetricGauge& queue_depth =
      MetricsRegistry::global().gauge("scheduler.queue_depth");
  MetricHistogram& ticket_wait_us =
      MetricsRegistry::global().histogram("scheduler.ticket_wait_us");
  MetricCounter& units_completed =
      MetricsRegistry::global().counter("scheduler.units_completed");
  static SchedulerMetrics& get() {
    static SchedulerMetrics m;
    return m;
  }
};
}  // namespace

JobScheduler::JobScheduler(std::size_t num_threads) : pool_(num_threads) {}

JobScheduler::~JobScheduler() { wait_all(); }

std::size_t JobScheduler::num_threads() const { return pool_.num_threads(); }

JobScheduler::StreamId JobScheduler::open_stream(int priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  const StreamId id = next_id_++;
  streams_[id].priority = priority;
  return id;
}

void JobScheduler::submit(StreamId stream, Unit unit) {
  EMUTILE_CHECK(unit, "cannot submit an empty unit");
  // The scheduler mutex is held across the pool enqueue (the pool has its
  // own lock; workers take ours only inside run_ticket, never inside
  // pool_.submit), so the unit and its ticket appear atomically: the pool
  // can only throw before its queue push, and the catch withdraws the unit,
  // keeping the 1:1 ticket/unit invariant and the wait ledgers intact.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  EMUTILE_CHECK(it != streams_.end(), "unknown stream " << stream);
  it->second.pending.push_back(
      PendingUnit{std::move(unit), std::chrono::steady_clock::now()});
  try {
    pool_.submit([this] { run_ticket(); });
  } catch (...) {
    it->second.pending.pop_back();
    throw;
  }
  SchedulerMetrics::get().queue_depth.add();
}

void JobScheduler::cancel(StreamId stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  EMUTILE_CHECK(it != streams_.end(), "unknown stream " << stream);
  it->second.cancelled = true;
}

bool JobScheduler::is_cancelled(StreamId stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream);
  EMUTILE_CHECK(it != streams_.end(), "unknown stream " << stream);
  return it->second.cancelled;
}

JobScheduler::Stream* JobScheduler::pick_best_locked() {
  Stream* best = nullptr;
  for (auto& [id, stream] : streams_) {
    if (stream.pending.empty()) continue;
    if (best == nullptr || stream.priority > best->priority ||
        (stream.priority == best->priority && stream.started < best->started))
      best = &stream;
  }
  return best;
}

void JobScheduler::run_ticket() {
  Unit unit;
  bool cancelled = false;
  Stream* stream = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stream = pick_best_locked();
    // Tickets and pending units are created 1:1 and only this function
    // consumes either, so a ticket always finds work.
    EMUTILE_ASSERT(stream != nullptr, "scheduler ticket found no pending unit");
    PendingUnit pending = std::move(stream->pending.front());
    stream->pending.pop_front();
    ++stream->started;
    ++stream->running;
    cancelled = stream->cancelled;
    unit = std::move(pending.unit);
    SchedulerMetrics& metrics = SchedulerMetrics::get();
    metrics.queue_depth.sub();
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - pending.enqueued);
    metrics.ticket_wait_us.record(
        waited.count() < 0 ? 0 : static_cast<std::uint64_t>(waited.count()));
  }
  // Units must not throw (see Unit), but restore the running ledger through
  // a scope guard anyway so wait()/wait_all() cannot block forever while an
  // escaping exception takes the process down.
  struct RunningGuard {
    JobScheduler& scheduler;
    Stream& stream;
    ~RunningGuard() {
      {
        std::lock_guard<std::mutex> lock(scheduler.mutex_);
        --stream.running;
      }
      scheduler.idle_.notify_all();
    }
  } guard{*this, *stream};
  unit(cancelled);
  SchedulerMetrics::get().units_completed.add();
}

void JobScheduler::wait(StreamId stream) {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] {
    const auto it = streams_.find(stream);
    EMUTILE_CHECK(it != streams_.end(), "unknown stream " << stream);
    return it->second.pending.empty() && it->second.running == 0;
  });
}

void JobScheduler::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [&] {
    for (const auto& [id, stream] : streams_)
      if (!stream.pending.empty() || stream.running > 0) return false;
    return true;
  });
}

}  // namespace emutile
