#include "service/service_endpoint.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "service/session_service.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

namespace emutile {

namespace {

/// How long the server waits for a request to arrive in full. A client that
/// connects and never writes (or never half-closes) must not pin a
/// connection forever — that would also block ~ServiceEndpoint, which drains
/// in-flight connections.
constexpr int kRequestReadTimeoutMs = 30'000;

/// An idle persistent connection is allowed to sit longer than a one-shot
/// request read (a coordinator's poll tick may be lazy), but not forever:
/// past this it is silently closed and the client re-dials transparently.
constexpr int kPersistentIdleTimeoutMs = 4 * kRequestReadTimeoutMs;

/// Parked-WAIT re-poll cadence in the reactor (matches the legacy WAIT
/// handler's 100 ms wait_for slices).
constexpr auto kWaitRetryInterval = std::chrono::milliseconds(100);

/// Commands get their own endpoint.requests.<CMD>/endpoint.request_us.<CMD>
/// series; anything unrecognized (including garbage) is folded into one
/// "OTHER" pair so a misbehaving client cannot mint unbounded metric names.
bool known_command(const std::string& command) {
  return command == "HELLO" || command == "PING" || command == "SUBMIT" ||
         command == "STATUS" || command == "LIST" || command == "CANCEL" ||
         command == "WAIT" || command == "SHARDREPORT" ||
         command == "CACHE" || command == "METRICS" ||
         command == "TRACESPANS" || command == "DRAIN" ||
         command == "SHUTDOWN";
}

/// Observability-plane commands are not themselves traced: the console and
/// the coordinator poll them continuously, and a tracer tracing its own
/// export only buries the spans operators care about. HELLO is a transport
/// probe, not work.
bool traced_command(const std::string& series) {
  return series != "PING" && series != "HELLO" && series != "METRICS" &&
         series != "TRACESPANS";
}

std::string status_line(const CampaignStatus& s) {
  std::ostringstream os;
  os << s.id << " " << to_string(s.state) << " " << s.sessions_done << "/"
     << s.sessions_total << " hits=" << s.cache_hits
     << " misses=" << s.cache_misses << " snapshots=" << s.snapshots
     << " replayed=" << s.replayed;
  return os.str();
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort; fails harmlessly on Unix-domain sockets.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::string local_instance_id() {
  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) != 0 || host[0] == '\0')
    std::strcpy(host, "localhost");
  return std::string(host) + "-" + std::to_string(::getpid());
}

}  // namespace

/// One client connection in the reactor: its fd, the request being buffered,
/// the response being flushed, and the state-machine bookkeeping. The
/// reactor thread owns every Conn; a worker touches one only between the
/// exec-ring hand-off and the done-ring hand-back (the rings' release/acquire
/// publication orders those accesses).
struct ServiceEndpoint::Conn {
  enum class St : std::uint8_t {
    kReading,    ///< buffering the request (one-shot: until the client
                 ///< half-closes; persistent: until a full line arrives)
    kExecuting,  ///< queued for / running on a worker / in the done ring
    kParked,     ///< a WAIT whose campaign is not yet terminal
    kWriting,    ///< flushing the response
  };

  int fd = -1;
  St state = St::kReading;
  std::string request;
  std::string response;
  std::size_t write_off = 0;
  std::chrono::steady_clock::time_point read_deadline{};
  std::chrono::steady_clock::time_point retry_at{};
  /// Set by the worker before the done-ring hand-back: true when a WAIT
  /// must park instead of completing.
  bool parked = false;
  // Persistent-connection state (the PERSIST handshake): the connection
  // outlives each exchange, requests are single lines, and responses are
  // length-framed so the client can delimit them without a half-close.
  bool persistent = false;
  /// Frame the next response as `#<bytes>\n<payload>` (every persistent
  /// exchange after the handshake ack).
  bool frame_response = false;
  /// Bytes received beyond the line being executed (a pipelining client).
  std::string pending;
  // First-execution bookkeeping, so a WAIT that parks N times still counts
  // one request and one latency sample spanning the whole wait.
  bool counted = false;
  std::string series;
  std::string wait_id;
  std::chrono::steady_clock::time_point exec_start{};
  std::uint64_t exec_start_journal_us = 0;
};

ServiceEndpoint::ServiceEndpoint(SessionService& service,
                                 std::filesystem::path socket_path,
                                 EndpointOptions options)
    : service_(service),
      socket_path_(std::move(socket_path)),
      options_(options),
      instance_id_(local_instance_id()) {
  const bool reactor = options_.mode == EndpointMode::kReactor;
  // The reactor never blocks in accept/read/write, so its sockets are
  // non-blocking from birth (accepted fds get the flag via accept4).
  const int backlog = reactor ? 512 : 16;
  listen_fd_ = listen_service_address(
      ServiceAddress::unix_socket(socket_path_), backlog, reactor);
  if (options_.tcp) {
    EMUTILE_CHECK(options_.tcp->kind == AddressKind::kTcp,
                  "EndpointOptions::tcp must be a tcp address, got "
                      << options_.tcp->to_string());
    try {
      tcp_listen_fd_ = listen_service_address(*options_.tcp, backlog, reactor);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
    tcp_address_ = bound_service_address(*options_.tcp, tcp_listen_fd_);
  }
  if (!reactor) {
    accept_thread_ = std::thread([this] { accept_loop(); });
    return;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const int err = errno;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
    EMUTILE_CHECK(false, "cannot set up reactor: " << std::strerror(err));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  if (tcp_listen_fd_ >= 0) {
    ev.data.fd = tcp_listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_listen_fd_, &ev);
  }
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  exec_queue_ = std::make_unique<MpmcQueue<Conn*>>(options_.queue_capacity);
  done_queue_ = std::make_unique<MpmcQueue<Conn*>>(options_.queue_capacity);
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  worker_threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    worker_threads_.emplace_back([this] { worker_loop(); });
  reactor_thread_ = std::thread([this] { reactor_loop(); });
}

ServiceEndpoint::~ServiceEndpoint() {
  stopping_.store(true);
  if (options_.mode == EndpointMode::kReactor) {
    // Nudge the reactor so it sees the stop flag immediately, then let it
    // run the drain: in-flight executions finish and flush, readers and
    // parked waiters get a terminal ERR, every conn fd is closed.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
    if (reactor_thread_.joinable()) reactor_thread_.join();
    // Workers next: the reactor drained every conn, so the exec ring is
    // empty; pop_wait observes the stop flag and exits.
    workers_stop_.store(true);
    exec_queue_->notify_all();
    done_queue_->notify_all();
    for (std::thread& t : worker_threads_) t.join();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);  // normally closed by the drain
    if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  } else {
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
    // Connection threads are detached; wait for the in-flight ones to finish
    // (they hold `this` only until they decrement the counter).
    std::unique_lock<std::mutex> lock(active_mutex_);
    active_drained_.wait(lock, [this] { return active_connections_ == 0; });
  }
  std::error_code ec;
  std::filesystem::remove(socket_path_, ec);
}

// ---- legacy thread-per-connection mode -------------------------------------

void ServiceEndpoint::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {tcp_listen_fd_, POLLIN, 0}};
    const nfds_t nfds = tcp_listen_fd_ >= 0 ? 2 : 1;
    const int ready = ::poll(pfds, nfds, 100);  // 100 ms stop-flag cadence
    if (ready <= 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if (!(pfds[i].revents & POLLIN)) continue;
      const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      set_nodelay(fd);
      MetricsRegistry::global().counter("endpoint.connections").add();
      {
        // Registered before the thread exists so the destructor can never
        // observe zero while a connection is starting up.
        std::lock_guard<std::mutex> lock(active_mutex_);
        ++active_connections_;
      }
      MetricsRegistry::global().gauge("endpoint.connections_active").add();
      try {
        std::thread([this, fd] { serve_connection(fd); }).detach();
      } catch (const std::system_error&) {
        {
          std::lock_guard<std::mutex> lock(active_mutex_);
          --active_connections_;
        }
        MetricsRegistry::global().gauge("endpoint.connections_active").sub();
        ::close(fd);
      }
    }
  }
}

void ServiceEndpoint::serve_connection(int fd) {
  std::string request;
  std::string response = "ERR request read failed\n";
  if (fd_read_all(fd, request, kRequestReadTimeoutMs, &stopping_)) {
    const auto start = std::chrono::steady_clock::now();
    try {
      response = handle_request(request);
    } catch (const std::exception& e) {
      MetricsRegistry::global().counter("endpoint.errors").add();
      response = std::string("ERR ") + e.what() + "\n";
    }
    const auto elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (elapsed_us > slow_request_us_.load()) {
      std::istringstream line(request);
      std::string command;
      line >> command;
      MetricsRegistry::global().counter("endpoint.slow_requests").add();
      EMUTILE_WARN("slow request: " << command << " took "
                                    << elapsed_us / 1000 << " ms (threshold "
                                    << slow_request_us_.load() / 1000
                                    << " ms)");
    }
  } else {
    MetricsRegistry::global().counter("endpoint.read_timeouts").add();
  }
  fd_write_all(fd, response);
  ::close(fd);
  MetricsRegistry::global().gauge("endpoint.connections_active").sub();
  std::lock_guard<std::mutex> lock(active_mutex_);
  --active_connections_;
  active_drained_.notify_all();
}

// ---- reactor mode ----------------------------------------------------------

void ServiceEndpoint::reactor_loop() {
  std::vector<epoll_event> events(128);
  for (;;) {
    if (stopping_.load()) {
      reactor_shutdown_drain();
      return;
    }
    reactor_flush_exec_overflow();
    // A fixed 100 ms tick bounds how stale read deadlines and parked-WAIT
    // retries can get; actual IO and completions wake the loop immediately.
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0 && errno != EINTR) {
      EMUTILE_WARN("endpoint reactor: epoll_wait failed: "
                   << std::strerror(errno));
      continue;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_ || (tcp_listen_fd_ >= 0 && fd == tcp_listen_fd_)) {
        reactor_accept(fd);
      } else if (fd == wake_fd_) {
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &v, sizeof v);
        reactor_drain_done();
      } else {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;  // already closed this tick
        Conn& conn = *it->second;
        if (conn.state == Conn::St::kReading)
          reactor_readable(conn);
        else if (conn.state == Conn::St::kWriting)
          reactor_writable(conn);
      }
    }
    reactor_drain_done();
    reactor_expire_and_retry();
  }
}

void ServiceEndpoint::reactor_accept(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->read_deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kRequestReadTimeoutMs);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    MetricsRegistry::global().counter("endpoint.connections").add();
    MetricsRegistry::global().gauge("endpoint.connections_active").add();
    conns_.emplace(fd, std::move(conn));
  }
}

void ServiceEndpoint::reactor_readable(Conn& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n > 0) {
      conn.request.append(buf, static_cast<std::size_t>(n));
      if (!conn.persistent && conn.request.size() >= 8 &&
          conn.request.compare(0, 8, "PERSIST\n") == 0) {
        // The persistent handshake: ack it, then serve one single-line
        // request per exchange with length-framed responses.
        conn.persistent = true;
        conn.pending = conn.request.substr(8);
        conn.request.clear();
        conn.response = "OK persist\n";
        conn.frame_response = false;
        MetricsRegistry::global().counter("endpoint.persistent").add();
        reactor_finish(conn);
        return;
      }
      if (conn.persistent) {
        reactor_persistent_dispatch(conn);
        if (conn.state != Conn::St::kReading) return;
      }
      continue;
    }
    if (n == 0) {
      if (conn.persistent) {
        // The client hung up between exchanges: a normal persistent close.
        reactor_close(conn);
        return;
      }
      // EOF: the client half-closed, the request is complete. The fd goes
      // quiet in epoll until the response is ready.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      conn.state = Conn::St::kExecuting;
      reactor_queue_exec(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // more later
    reactor_close(conn);
    return;
  }
}

void ServiceEndpoint::reactor_persistent_dispatch(Conn& conn) {
  const std::size_t eol = conn.request.find('\n');
  if (eol == std::string::npos) return;  // line still incomplete
  conn.pending = conn.request.substr(eol + 1);
  conn.request.resize(eol + 1);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  conn.state = Conn::St::kExecuting;
  conn.frame_response = true;
  reactor_queue_exec(conn);
}

void ServiceEndpoint::reactor_persistent_reset(Conn& conn) {
  conn.state = Conn::St::kReading;
  conn.response.clear();
  conn.write_off = 0;
  conn.parked = false;
  conn.counted = false;
  conn.series.clear();
  conn.wait_id.clear();
  conn.request = std::move(conn.pending);
  conn.pending.clear();
  conn.read_deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(kPersistentIdleTimeoutMs);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0 &&
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
    reactor_close(conn);
    return;
  }
  // A pipelining client may have delivered the next line already.
  reactor_persistent_dispatch(conn);
}

void ServiceEndpoint::reactor_queue_exec(Conn& conn) {
  if (!exec_queue_->try_push(&conn)) exec_overflow_.push_back(&conn);
}

void ServiceEndpoint::reactor_flush_exec_overflow() {
  while (!exec_overflow_.empty()) {
    if (!exec_queue_->try_push(exec_overflow_.front())) return;
    exec_overflow_.pop_front();
  }
}

void ServiceEndpoint::reactor_drain_done() {
  while (std::optional<Conn*> done = done_queue_->try_pop()) {
    Conn& conn = **done;
    if (conn.parked && !stopping_.load()) {
      conn.state = Conn::St::kParked;
      conn.retry_at = std::chrono::steady_clock::now() + kWaitRetryInterval;
      parked_.push_back(&conn);
    } else if (conn.parked) {
      // Stopping: a parked WAIT cannot be satisfied anymore.
      conn.parked = false;
      conn.response = "ERR service shutting down\n";
      reactor_finish(conn);
    } else {
      reactor_finish(conn);
    }
  }
}

void ServiceEndpoint::reactor_finish(Conn& conn) {
  if (conn.persistent && conn.frame_response) {
    // Length-frame so the client can delimit the response without the
    // one-shot protocol's close-on-done.
    conn.response = "#" + std::to_string(conn.response.size()) + "\n" +
                    conn.response;
    conn.frame_response = false;
  }
  conn.state = Conn::St::kWriting;
  conn.write_off = 0;
  epoll_event ev{};
  ev.events = EPOLLOUT;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
    // The fd may still be registered (read-deadline path): try MOD.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
      reactor_close(conn);
      return;
    }
  }
  reactor_writable(conn);  // usually flushes in one go
}

void ServiceEndpoint::reactor_writable(Conn& conn) {
  while (conn.write_off < conn.response.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.response.data() + conn.write_off,
               conn.response.size() - conn.write_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT later
      reactor_close(conn);
      return;
    }
    conn.write_off += static_cast<std::size_t>(n);
  }
  if (conn.persistent && !stopping_.load()) {
    reactor_persistent_reset(conn);  // next exchange on the same fd
    return;
  }
  reactor_close(conn);  // one-shot protocol: reply flushed, done
}

void ServiceEndpoint::reactor_close(Conn& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  MetricsRegistry::global().gauge("endpoint.connections_active").sub();
  conns_.erase(conn.fd);  // frees the Conn
}

void ServiceEndpoint::reactor_expire_and_retry() {
  const auto now = std::chrono::steady_clock::now();
  // Re-poll parked WAITs whose interval elapsed.
  for (std::size_t i = 0; i < parked_.size();) {
    Conn& conn = *parked_[i];
    if (conn.retry_at <= now || stopping_.load()) {
      parked_[i] = parked_.back();
      parked_.pop_back();
      conn.state = Conn::St::kExecuting;
      reactor_queue_exec(conn);
    } else {
      ++i;
    }
  }
  // Expire readers that never delivered a complete request. Collect first:
  // finishing may close (and erase) the conn.
  std::vector<Conn*> expired;
  for (const auto& [fd, conn] : conns_)
    if (conn->state == Conn::St::kReading && conn->read_deadline <= now)
      expired.push_back(conn.get());
  for (Conn* conn : expired) {
    if (conn->persistent) {
      // Idle persistent connection: close silently, the client re-dials.
      reactor_close(*conn);
      continue;
    }
    MetricsRegistry::global().counter("endpoint.read_timeouts").add();
    conn->response = "ERR request read failed\n";
    reactor_finish(*conn);
  }
}

void ServiceEndpoint::reactor_shutdown_drain() {
  // No new connections.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, tcp_listen_fd_, nullptr);
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  // Readers cannot complete anymore; answer like the legacy stop path.
  // Persistent connections between exchanges just close — their client
  // treats a dropped channel as "re-dial later" anyway.
  std::vector<Conn*> readers;
  for (const auto& [fd, conn] : conns_)
    if (conn->state == Conn::St::kReading) readers.push_back(conn.get());
  for (Conn* conn : readers) {
    if (conn->persistent) {
      reactor_close(*conn);
      continue;
    }
    conn->response = "ERR request read failed\n";
    reactor_finish(*conn);
  }
  // Parked WAITs get a terminal answer.
  std::vector<Conn*> parked;
  parked.swap(parked_);
  for (Conn* conn : parked) {
    conn->response = "ERR service shutting down\n";
    reactor_finish(*conn);
  }
  // Drain: every queued/running execution finishes (WAITs observe the stop
  // flag and answer immediately, every other handler is bounded), then the
  // responses get a bounded window to flush. Conn objects referenced by
  // workers are never freed here — only kWriting stragglers are forced.
  std::vector<epoll_event> events(128);
  auto flush_deadline = std::chrono::steady_clock::now();
  for (;;) {
    reactor_flush_exec_overflow();
    reactor_drain_done();
    bool executing = false;
    bool writing = false;
    for (const auto& [fd, conn] : conns_) {
      executing = executing || conn->state == Conn::St::kExecuting;
      writing = writing || conn->state == Conn::St::kWriting;
    }
    const auto now = std::chrono::steady_clock::now();
    if (executing)
      flush_deadline = now + std::chrono::seconds(2);
    if (!executing && (!writing || now > flush_deadline)) break;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), 10);
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &v, sizeof v);
        continue;
      }
      const auto it = conns_.find(fd);
      if (it != conns_.end() && it->second->state == Conn::St::kWriting)
        reactor_writable(*it->second);
    }
  }
  // Whatever is left is a peer that stopped reading its reply: close it.
  while (!conns_.empty()) reactor_close(*conns_.begin()->second);
}

void ServiceEndpoint::worker_loop() {
  while (std::optional<Conn*> next = exec_queue_->pop_wait(workers_stop_)) {
    Conn& conn = **next;
    conn.parked = !execute(conn);
    if (!done_queue_->push_wait(&conn, workers_stop_)) return;
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

bool ServiceEndpoint::execute(Conn& conn) {
  MetricsRegistry& reg = MetricsRegistry::global();
  if (!conn.counted) {
    // First execution of this request: per-command accounting starts here
    // and — for WAITs, which may park many times — ends only when the
    // response is produced, so the latency sample spans the whole wait.
    const std::size_t eol = conn.request.find('\n');
    std::istringstream line(eol == std::string::npos
                                ? conn.request
                                : conn.request.substr(0, eol));
    std::string command;
    line >> command;
    conn.series = known_command(command) ? command : "OTHER";
    conn.counted = true;
    conn.exec_start = std::chrono::steady_clock::now();
    conn.exec_start_journal_us = journal_now_us();
    if (conn.series == "WAIT") {
      reg.counter("endpoint.requests.WAIT").add();
      line >> conn.wait_id;
    }
  }
  if (conn.series == "WAIT") {
    // Never block a worker: probe, and park when not yet terminal.
    if (conn.wait_id.empty()) {
      conn.response = "ERR WAIT needs a campaign id\n";
    } else {
      try {
        if (!service_.wait_for(conn.wait_id, std::chrono::milliseconds(0))) {
          if (!stopping_.load()) return false;  // park: reactor re-polls
          conn.response = "ERR service shutting down\n";
        } else {
          const std::optional<CampaignStatus> s =
              service_.status(conn.wait_id);
          conn.response =
              std::string("OK ") + (s ? to_string(s->state) : "unknown") +
              "\n";
        }
      } catch (const std::exception& e) {
        reg.counter("endpoint.errors").add();
        conn.response = std::string("ERR ") + e.what() + "\n";
      }
    }
  } else {
    try {
      conn.response = handle_request(conn.request);
    } catch (const std::exception& e) {
      reg.counter("endpoint.errors").add();
      conn.response = std::string("ERR ") + e.what() + "\n";
    }
  }
  const auto elapsed_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - conn.exec_start)
          .count());
  if (conn.series == "WAIT") {
    // handle_request records the other commands' latency itself; the WAIT
    // fast path above bypasses it, so record (and trace) here, covering
    // park time.
    reg.histogram("endpoint.request_us.WAIT").record(elapsed_us);
    if (Tracer::enabled())
      Tracer::global().record_span(
          "endpoint.request.WAIT", Tracer::global().child_context({}), 0,
          conn.exec_start_journal_us, elapsed_us);
  }
  if (elapsed_us > slow_request_us_.load()) {
    reg.counter("endpoint.slow_requests").add();
    EMUTILE_WARN("slow request: " << conn.series << " took "
                                  << elapsed_us / 1000 << " ms (threshold "
                                  << slow_request_us_.load() / 1000 << " ms)");
  }
  return true;
}

// ---- the protocol ----------------------------------------------------------

std::string ServiceEndpoint::handle_request(const std::string& request) {
  const std::size_t eol = request.find('\n');
  const std::string first =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::string body =
      eol == std::string::npos ? "" : request.substr(eol + 1);
  std::istringstream line(first);
  std::string command;
  line >> command;

  // Per-command request accounting. The latency probe covers the whole
  // handler, including service calls and disk reads — what a client feels.
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::string series = known_command(command) ? command : "OTHER";
  // Reactor-mode WAITs are counted by execute() (they never reach here).
  reg.counter("endpoint.requests." + series).add();
  const ScopedLatency latency(reg.histogram("endpoint.request_us." + series));

  // The request span. A SUBMIT carrying a traceparent token joins the
  // submitter's trace; everything else roots a trace of its own.
  TraceContext span_parent{};
  int priority = 0;
  std::string name_hint;
  std::uint64_t deadline_ms = 0;
  if (command == "SUBMIT") {
    line >> priority;
    std::string token;
    while (line >> token) {
      if (token.rfind("traceparent=", 0) == 0) {
        if (const auto ctx =
                parse_traceparent(token.substr(std::strlen("traceparent="))))
          span_parent = *ctx;
      } else if (token.rfind("deadline_ms=", 0) == 0) {
        try {
          deadline_ms = std::stoull(token.substr(std::strlen("deadline_ms=")));
        } catch (const std::exception&) {
          return "ERR SUBMIT deadline_ms must be a non-negative integer\n";
        }
      } else if (name_hint.empty()) {
        name_hint = token;
      }
    }
  }
  std::optional<ScopedSpan> span;
  if (Tracer::enabled() && traced_command(series))
    span.emplace(Tracer::global(), "endpoint.request." + series, span_parent);

  if (command == "PING") {
    return "OK pong\n";
  } else if (command == "HELLO") {
    // The transport probe: protocol version, a stable instance id, and the
    // capability list a client keys transport decisions on. Pre-HELLO
    // daemons answer `ERR unknown command 'HELLO'` and clients fall back to
    // the v1 subset — rolling upgrades degrade explicitly, not accidentally.
    std::ostringstream os;
    os << "OK proto=" << kWireProtocolVersion << " id=" << instance_id_
       << " mode="
       << (options_.mode == EndpointMode::kReactor ? "reactor" : "legacy")
       << " caps=oneshot";
    if (options_.mode == EndpointMode::kReactor) os << ",persist";
    if (tcp_address_) os << ",tcp";
    os << "\n";
    return os.str();
  } else if (command == "SUBMIT") {
    try {
      const std::string id = service_.submit_text(
          body, priority, name_hint,
          span ? span->context() : TraceContext{}, deadline_ms);
      return "OK " + id + "\n";
    } catch (const ServiceOverdeadlineError& e) {
      // Distinguished first tokens: clients branch on these stable codes to
      // back off (`busy`), route elsewhere permanently (`draining` — this
      // instance will never admit again), or relax the deadline
      // (`overdeadline`), instead of treating the spec as malformed.
      return std::string("ERR overdeadline ") + e.what() + "\n";
    } catch (const ServiceBusyError& e) {
      if (service_.draining())
        return std::string("ERR draining ") + e.what() + "\n";
      return std::string("ERR busy ") + e.what() + "\n";
    }
  } else if (command == "STATUS") {
    std::string id;
    if (!(line >> id)) return "ERR STATUS needs a campaign id\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    if (!s) return "ERR unknown campaign '" + id + "'\n";
    std::ostringstream os;
    os << "OK " << status_line(*s) << " uptime_s=" << service_.uptime_seconds()
       << " queued=" << service_.queued_count()
       << " running=" << service_.running_count()
       << " draining=" << (service_.draining() ? 1 : 0) << "\n";
    return os.str();
  } else if (command == "LIST") {
    const std::vector<CampaignStatus> all = service_.list();
    std::ostringstream os;
    os << "OK " << all.size() << "\n";
    for (const CampaignStatus& s : all) os << status_line(s) << "\n";
    return os.str();
  } else if (command == "CANCEL") {
    std::string id;
    if (!(line >> id)) return "ERR CANCEL needs a campaign id\n";
    if (!service_.cancel(id)) return "ERR unknown campaign '" + id + "'\n";
    return "OK cancelled\n";
  } else if (command == "WAIT") {
    std::string id;
    if (!(line >> id)) return "ERR WAIT needs a campaign id\n";
    // Legacy mode only (the reactor parks WAITs in execute() instead). Poll
    // so ~ServiceEndpoint (which drains this connection thread) can
    // interrupt the wait: with the daemon tearing down before the service,
    // the waited-on state change may only happen after the endpoint is gone
    // — blocking here indefinitely would deadlock shutdown.
    while (!service_.wait_for(id, std::chrono::milliseconds(100)))
      if (stopping_.load()) return "ERR service shutting down\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    return std::string("OK ") + (s ? to_string(s->state) : "unknown") + "\n";
  } else if (command == "SHARDREPORT") {
    std::string id;
    if (!(line >> id)) return "ERR SHARDREPORT needs a campaign id\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    if (!s) return "ERR unknown campaign '" + id + "'\n";
    if (s->state == CampaignState::kFailed)
      return "ERR campaign '" + id + "' failed: " + s->error + "\n";
    if (s->state != CampaignState::kFinished &&
        s->state != CampaignState::kCancelled)
      return "ERR campaign '" + id + "' is still " + to_string(s->state) +
             " — WAIT for it first\n";
    // finalize() published the mergeable form before the state flipped
    // terminal, so a terminal campaign always has it on disk.
    try {
      return "OK " + id + "\n" + read_file(s->out_dir / "report.shard");
    } catch (const std::exception& e) {
      return std::string("ERR shard report unreadable: ") + e.what() + "\n";
    }
  } else if (command == "CACHE") {
    ResultCache* cache = service_.cache();
    if (!cache) return "ERR result cache disabled\n";
    std::ostringstream os;
    os << "OK entries=" << cache->entries() << " bytes=" << cache->bytes()
       << " hits=" << cache->hits() << " misses=" << cache->misses()
       << " stores=" << cache->stores()
       << " evictions=" << cache->evictions()
       << " index_hits=" << cache->index_hits()
       << " index_misses=" << cache->index_misses()
       << " index_stores=" << cache->index_stores()
       << " index_entries=" << cache->index_entries() << "\n";
    return os.str();
  } else if (command == "METRICS") {
    // The whole process-wide registry, either as the stable text exposition
    // (what parse_metrics_text and the coordinator's fleet merge consume) or
    // as JSON for humans and dashboards. The first reply line carries a
    // token after "OK " so ServiceClient::expect_ok stays happy; the payload
    // follows verbatim.
    std::string format;
    line >> format;
    const MetricsSnapshot snap = reg.snapshot();
    if (format == "json") return "OK json\n" + snap.to_json();
    if (!format.empty() && format != "text")
      return "ERR METRICS takes no argument, 'text', or 'json'\n";
    return "OK text\n" + snap.to_text();
  } else if (command == "TRACESPANS") {
    // Everything the tracer has buffered, open spans included (the console's
    // "slowest open spans" view needs them; the coordinator's stitcher drops
    // them). now_us lets the fetcher midpoint-correct for clock offset.
    const std::vector<TraceSpan> spans = Tracer::global().collect(true);
    std::ostringstream os;
    os << "OK now_us=" << journal_now_us() << " spans=" << spans.size()
       << "\n"
       << trace_spans_to_text(spans);
    return os.str();
  } else if (command == "DRAIN") {
    // The rolling-upgrade handoff: stop admitting (submits shed with a
    // "draining" error the coordinator understands), let in-flight
    // campaigns finish or journal, then the daemon exits 0 once drained.
    service_.begin_drain();
    std::ostringstream os;
    os << "OK draining queued=" << service_.queued_count()
       << " running=" << service_.running_count() << "\n";
    return os.str();
  } else if (command == "SHUTDOWN") {
    shutdown_requested_.store(true);
    return "OK bye\n";
  }
  reg.counter("endpoint.errors").add();
  return "ERR unknown command '" + command + "'\n";
}

std::string endpoint_request(const ServiceAddress& address,
                             const std::string& request, int timeout_ms) {
  const int fd = dial_service_address(address);
  std::string response;
  const bool sent = fd_write_all(fd, request);
  if (sent) ::shutdown(fd, SHUT_WR);  // half-close delimits the request
  const bool received = sent && fd_read_all(fd, response, timeout_ms);
  ::close(fd);
  EMUTILE_CHECK(sent && received, "request to " << address.to_string()
                                                << " failed mid-flight"
                                                << (timeout_ms >= 0
                                                        ? " or timed out"
                                                        : ""));
  return response;
}

std::string endpoint_request(const std::filesystem::path& socket_path,
                             const std::string& request, int timeout_ms) {
  return endpoint_request(ServiceAddress::unix_socket(socket_path), request,
                          timeout_ms);
}

}  // namespace emutile
