#include "service/service_endpoint.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "service/session_service.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

namespace emutile {

namespace {

/// How long the server waits for a request to arrive in full. A client that
/// connects and never writes (or never half-closes) must not pin a detached
/// connection thread forever — that would also block ~ServiceEndpoint, which
/// drains those threads.
constexpr int kRequestReadTimeoutMs = 30'000;

/// Read until EOF (the peer half-closed). Returns false on read errors, or —
/// when `timeout_ms` is non-negative — if EOF has not arrived by the
/// deadline or `*stop` became true (polled in short slices, so shutdown is
/// not held up by the full deadline). Negative timeout means block
/// indefinitely (clients waiting on WAIT).
bool read_all(int fd, std::string& out, int timeout_ms = -1,
              const std::atomic<bool>* stop = nullptr) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  for (;;) {
    if (timeout_ms >= 0) {
      if (stop && stop->load()) return false;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return false;
      pollfd pfd{fd, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining, 100)));
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;  // re-check stop + deadline, poll again
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that closed before reading the reply must yield
    // EPIPE here, not a process-killing SIGPIPE (the daemon installs no
    // handler for it).
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Commands get their own endpoint.requests.<CMD>/endpoint.request_us.<CMD>
/// series; anything unrecognized (including garbage) is folded into one
/// "OTHER" pair so a misbehaving client cannot mint unbounded metric names.
bool known_command(const std::string& command) {
  return command == "PING" || command == "SUBMIT" || command == "STATUS" ||
         command == "LIST" || command == "CANCEL" || command == "WAIT" ||
         command == "SHARDREPORT" || command == "CACHE" ||
         command == "METRICS" || command == "TRACESPANS" ||
         command == "SHUTDOWN";
}

/// Observability-plane commands are not themselves traced: the console and
/// the coordinator poll them continuously, and a tracer tracing its own
/// export only buries the spans operators care about.
bool traced_command(const std::string& series) {
  return series != "PING" && series != "METRICS" && series != "TRACESPANS";
}

std::string status_line(const CampaignStatus& s) {
  std::ostringstream os;
  os << s.id << " " << to_string(s.state) << " " << s.sessions_done << "/"
     << s.sessions_total << " hits=" << s.cache_hits
     << " misses=" << s.cache_misses << " snapshots=" << s.snapshots;
  return os.str();
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  EMUTILE_CHECK(p.size() < sizeof addr.sun_path,
                "socket path too long (" << p.size() << " bytes): " << p);
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  return addr;
}

}  // namespace

ServiceEndpoint::ServiceEndpoint(SessionService& service,
                                 std::filesystem::path socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {
  const sockaddr_un addr = make_address(socket_path_);
  std::filesystem::remove(socket_path_);  // replace a stale socket file
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMUTILE_CHECK(listen_fd_ >= 0,
                "cannot create socket: " << std::strerror(errno));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    EMUTILE_CHECK(false, "cannot listen on " << socket_path_ << ": "
                                             << std::strerror(err));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServiceEndpoint::~ServiceEndpoint() {
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // Connection threads are detached; wait for the in-flight ones to finish
  // (they hold `this` only until they decrement the counter).
  std::unique_lock<std::mutex> lock(active_mutex_);
  active_drained_.wait(lock, [this] { return active_connections_ == 0; });
  std::error_code ec;
  std::filesystem::remove(socket_path_, ec);
}

void ServiceEndpoint::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms stop-flag cadence
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      // Registered before the thread exists so the destructor can never
      // observe zero while a connection is starting up.
      std::lock_guard<std::mutex> lock(active_mutex_);
      ++active_connections_;
    }
    try {
      std::thread([this, fd] { serve_connection(fd); }).detach();
    } catch (const std::system_error&) {
      std::lock_guard<std::mutex> lock(active_mutex_);
      --active_connections_;
      ::close(fd);
    }
  }
}

void ServiceEndpoint::serve_connection(int fd) {
  std::string request;
  std::string response = "ERR request read failed\n";
  if (read_all(fd, request, kRequestReadTimeoutMs, &stopping_)) {
    const auto start = std::chrono::steady_clock::now();
    try {
      response = handle_request(request);
    } catch (const std::exception& e) {
      MetricsRegistry::global().counter("endpoint.errors").add();
      response = std::string("ERR ") + e.what() + "\n";
    }
    const auto elapsed_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    if (elapsed_us > slow_request_us_.load()) {
      std::istringstream line(request);
      std::string command;
      line >> command;
      MetricsRegistry::global().counter("endpoint.slow_requests").add();
      EMUTILE_WARN("slow request: " << command << " took "
                                    << elapsed_us / 1000 << " ms (threshold "
                                    << slow_request_us_.load() / 1000
                                    << " ms)");
    }
  }
  write_all(fd, response);
  ::close(fd);
  std::lock_guard<std::mutex> lock(active_mutex_);
  --active_connections_;
  active_drained_.notify_all();
}

std::string ServiceEndpoint::handle_request(const std::string& request) {
  const std::size_t eol = request.find('\n');
  const std::string first =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::string body =
      eol == std::string::npos ? "" : request.substr(eol + 1);
  std::istringstream line(first);
  std::string command;
  line >> command;

  // Per-command request accounting. The latency probe covers the whole
  // handler, including service calls and disk reads — what a client feels.
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::string series = known_command(command) ? command : "OTHER";
  reg.counter("endpoint.requests." + series).add();
  const ScopedLatency latency(reg.histogram("endpoint.request_us." + series));

  // The request span. A SUBMIT carrying a traceparent token joins the
  // submitter's trace; everything else roots a trace of its own.
  TraceContext span_parent{};
  int priority = 0;
  std::string name_hint;
  if (command == "SUBMIT") {
    line >> priority;
    std::string token;
    while (line >> token) {
      if (token.rfind("traceparent=", 0) == 0) {
        if (const auto ctx =
                parse_traceparent(token.substr(std::strlen("traceparent="))))
          span_parent = *ctx;
      } else if (name_hint.empty()) {
        name_hint = token;
      }
    }
  }
  std::optional<ScopedSpan> span;
  if (Tracer::enabled() && traced_command(series))
    span.emplace(Tracer::global(), "endpoint.request." + series, span_parent);

  if (command == "PING") {
    return "OK pong\n";
  } else if (command == "SUBMIT") {
    try {
      const std::string id = service_.submit_text(
          body, priority, name_hint,
          span ? span->context() : TraceContext{});
      return "OK " + id + "\n";
    } catch (const ServiceBusyError& e) {
      // A distinguished first token: clients branch on `ERR busy` to back
      // off or re-dispatch instead of treating the spec as malformed.
      return std::string("ERR busy ") + e.what() + "\n";
    }
  } else if (command == "STATUS") {
    std::string id;
    if (!(line >> id)) return "ERR STATUS needs a campaign id\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    if (!s) return "ERR unknown campaign '" + id + "'\n";
    std::ostringstream os;
    os << "OK " << status_line(*s) << " uptime_s=" << service_.uptime_seconds()
       << " queued=" << service_.queued_count()
       << " running=" << service_.running_count() << "\n";
    return os.str();
  } else if (command == "LIST") {
    const std::vector<CampaignStatus> all = service_.list();
    std::ostringstream os;
    os << "OK " << all.size() << "\n";
    for (const CampaignStatus& s : all) os << status_line(s) << "\n";
    return os.str();
  } else if (command == "CANCEL") {
    std::string id;
    if (!(line >> id)) return "ERR CANCEL needs a campaign id\n";
    if (!service_.cancel(id)) return "ERR unknown campaign '" + id + "'\n";
    return "OK cancelled\n";
  } else if (command == "WAIT") {
    std::string id;
    if (!(line >> id)) return "ERR WAIT needs a campaign id\n";
    // Poll so ~ServiceEndpoint (which drains this connection thread) can
    // interrupt the wait: with the daemon tearing down before the service,
    // the waited-on state change may only happen after the endpoint is gone
    // — blocking here indefinitely would deadlock shutdown.
    while (!service_.wait_for(id, std::chrono::milliseconds(100)))
      if (stopping_.load()) return "ERR service shutting down\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    return std::string("OK ") + (s ? to_string(s->state) : "unknown") + "\n";
  } else if (command == "SHARDREPORT") {
    std::string id;
    if (!(line >> id)) return "ERR SHARDREPORT needs a campaign id\n";
    const std::optional<CampaignStatus> s = service_.status(id);
    if (!s) return "ERR unknown campaign '" + id + "'\n";
    if (s->state == CampaignState::kFailed)
      return "ERR campaign '" + id + "' failed: " + s->error + "\n";
    if (s->state != CampaignState::kFinished &&
        s->state != CampaignState::kCancelled)
      return "ERR campaign '" + id + "' is still " + to_string(s->state) +
             " — WAIT for it first\n";
    // finalize() published the mergeable form before the state flipped
    // terminal, so a terminal campaign always has it on disk.
    try {
      return "OK " + id + "\n" + read_file(s->out_dir / "report.shard");
    } catch (const std::exception& e) {
      return std::string("ERR shard report unreadable: ") + e.what() + "\n";
    }
  } else if (command == "CACHE") {
    ResultCache* cache = service_.cache();
    if (!cache) return "ERR result cache disabled\n";
    std::ostringstream os;
    os << "OK entries=" << cache->entries() << " bytes=" << cache->bytes()
       << " hits=" << cache->hits() << " misses=" << cache->misses()
       << " stores=" << cache->stores()
       << " evictions=" << cache->evictions() << "\n";
    return os.str();
  } else if (command == "METRICS") {
    // The whole process-wide registry, either as the stable text exposition
    // (what parse_metrics_text and the coordinator's fleet merge consume) or
    // as JSON for humans and dashboards. The first reply line carries a
    // token after "OK " so ServiceClient::expect_ok stays happy; the payload
    // follows verbatim.
    std::string format;
    line >> format;
    const MetricsSnapshot snap = reg.snapshot();
    if (format == "json") return "OK json\n" + snap.to_json();
    if (!format.empty() && format != "text")
      return "ERR METRICS takes no argument, 'text', or 'json'\n";
    return "OK text\n" + snap.to_text();
  } else if (command == "TRACESPANS") {
    // Everything the tracer has buffered, open spans included (the console's
    // "slowest open spans" view needs them; the coordinator's stitcher drops
    // them). now_us lets the fetcher midpoint-correct for clock offset.
    const std::vector<TraceSpan> spans = Tracer::global().collect(true);
    std::ostringstream os;
    os << "OK now_us=" << journal_now_us() << " spans=" << spans.size()
       << "\n"
       << trace_spans_to_text(spans);
    return os.str();
  } else if (command == "SHUTDOWN") {
    shutdown_requested_.store(true);
    return "OK bye\n";
  }
  reg.counter("endpoint.errors").add();
  return "ERR unknown command '" + command + "'\n";
}

std::string endpoint_request(const std::filesystem::path& socket_path,
                             const std::string& request, int timeout_ms) {
  const sockaddr_un addr = make_address(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMUTILE_CHECK(fd >= 0, "cannot create socket: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    EMUTILE_CHECK(false, "cannot connect to " << socket_path << ": "
                                              << std::strerror(err));
  }
  std::string response;
  const bool sent = write_all(fd, request);
  if (sent) ::shutdown(fd, SHUT_WR);  // half-close delimits the request
  const bool received = sent && read_all(fd, response, timeout_ms);
  ::close(fd);
  EMUTILE_CHECK(sent && received, "request to " << socket_path
                                                << " failed mid-flight"
                                                << (timeout_ms >= 0
                                                        ? " or timed out"
                                                        : ""));
  return response;
}

}  // namespace emutile
