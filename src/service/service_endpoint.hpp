#pragma once
/// \file service_endpoint.hpp
/// Local control endpoint for the session service: a Unix-domain stream
/// socket speaking a one-shot, line-oriented text protocol (one request per
/// connection; the client half-closes after writing, the server replies and
/// closes — so the connection itself delimits both sides).
///
/// Requests (first line; SUBMIT carries the spec text as the body):
///
///   PING                         -> OK pong
///   SUBMIT <priority> [<name>] [traceparent=<t>-<s>]
///                                -> OK <campaign-id>      (body = spec text)
///                                   `ERR busy ...` when the bounded campaign
///                                   queue (ServiceConfig::max_pending) is
///                                   full — resubmit later or elsewhere. The
///                                   optional traceparent token (see
///                                   obs/trace.hpp) parents the daemon's
///                                   campaign spans on the submitter's trace.
///   STATUS <id>                  -> OK <id> <state> <done>/<total>
///                                   hits=<n> misses=<n> snapshots=<n>
///   LIST                         -> OK <count>  (+ one status line per
///                                   campaign)
///   CANCEL <id>                  -> OK cancelled
///   WAIT <id>                    -> OK <terminal-state>   (blocks)
///   SHARDREPORT <id>             -> OK <id>  (+ the campaign's mergeable
///                                   report, campaign_report_io format; only
///                                   after the campaign is terminal — a
///                                   coordinator merges these shard reports
///                                   into the fleet-wide result)
///   CACHE                        -> OK entries=<n> bytes=<n> hits=<n>
///                                   misses=<n> stores=<n> evictions=<n>
///                                   (result-cache stats since daemon start;
///                                   `ERR` when the cache is disabled)
///   TRACESPANS                   -> OK now_us=<n> spans=<n>  (+ the
///                                   instance's buffered trace spans in the
///                                   emutile-trace text format, open spans
///                                   included; now_us is the instance's
///                                   journal clock at reply time, which the
///                                   coordinator's clock-offset stitching
///                                   reads)
///   SHUTDOWN                     -> OK bye  (sets shutdown_requested)
///
/// Errors answer `ERR <message>`. Each connection is served on its own
/// thread, so a blocking WAIT never stalls other clients. The server applies
/// a receive deadline to each request, so a client that connects and never
/// writes (or never half-closes) gets `ERR` instead of pinning a connection
/// thread and blocking daemon shutdown. Requests slower than the slow-request
/// threshold (set_slow_request_ms, default 1000) log a WARN with the command
/// and duration and count into `endpoint.slow_requests`.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

namespace emutile {

class SessionService;

class ServiceEndpoint {
 public:
  /// Bind and listen on `socket_path` (an existing stale socket file is
  /// replaced) and start accepting. Throws CheckError on bind failures.
  ServiceEndpoint(SessionService& service, std::filesystem::path socket_path);

  /// Stops accepting, waits for in-flight connections, unlinks the socket.
  ~ServiceEndpoint();

  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return socket_path_;
  }

  /// True once a client sent SHUTDOWN. The daemon's main loop polls this.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load();
  }

  /// Requests slower than this WARN and count into `endpoint.slow_requests`.
  /// Fractional milliseconds are honored (tests set 0 to trip on any
  /// request); the comparison is strict, so 0 still requires a measurable
  /// duration.
  void set_slow_request_ms(double ms) {
    slow_request_us_.store(
        ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0));
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::string handle_request(const std::string& request);

  SessionService& service_;
  std::filesystem::path socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> slow_request_us_{1'000'000};
  std::thread accept_thread_;
  // Connection threads are detached so a long-lived daemon never accumulates
  // joinable threads; this counter lets the destructor drain them.
  std::mutex active_mutex_;
  std::condition_variable active_drained_;
  std::size_t active_connections_ = 0;
};

/// Client side of the protocol: connect to `socket_path`, send `request`
/// (first line + optional body), half-close, and return the full response.
/// Throws CheckError on connection errors, or when the response has not
/// arrived in full within `timeout_ms` (negative blocks indefinitely — only
/// appropriate for WAIT against a trusted daemon; a coordinator polling many
/// instances must bound every exchange so one hung daemon cannot wedge it).
[[nodiscard]] std::string endpoint_request(
    const std::filesystem::path& socket_path, const std::string& request,
    int timeout_ms = -1);

}  // namespace emutile
