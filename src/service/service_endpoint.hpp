#pragma once
/// \file service_endpoint.hpp
/// Control endpoint for the session service: a Unix-domain stream socket —
/// and, optionally, a TCP listener alongside it for cross-host fleets — both
/// speaking the same one-shot, line-oriented text protocol (one request per
/// connection; the client half-closes after writing, the server replies and
/// closes — so the connection itself delimits both sides).
///
/// Requests (first line; SUBMIT carries the spec text as the body):
///
///   HELLO                        -> OK proto=2 id=<instance-id>
///                                   mode=<reactor|legacy> caps=<c1,c2,...>
///                                   (protocol version, stable instance id,
///                                   transport capabilities: `oneshot`
///                                   always, `persist` in reactor mode,
///                                   `tcp` when a TCP listener is active.
///                                   Clients probe once per address and
///                                   degrade gracefully when a pre-HELLO
///                                   daemon answers `ERR unknown command` —
///                                   version skew during rolling upgrades is
///                                   explicit, not accidental)
///   PING                         -> OK pong
///   SUBMIT <priority> [<name>] [traceparent=<t>-<s>] [deadline_ms=<n>]
///                                -> OK <campaign-id>      (body = spec text)
///                                   `ERR busy ...` when the bounded campaign
///                                   queue (ServiceConfig::max_pending) is
///                                   full or the spec exceeds the per-campaign
///                                   session quota — resubmit later, smaller,
///                                   or elsewhere. `ERR draining ...` once
///                                   DRAIN/SIGUSR2 stopped admission — this
///                                   instance will never admit again; route
///                                   elsewhere. `ERR overdeadline ...` when
///                                   admission control concludes the requested
///                                   relative deadline cannot be met given the
///                                   observed session-latency p99 and the work
///                                   already queued. The optional traceparent
///                                   token (see obs/trace.hpp) parents the
///                                   daemon's campaign spans on the
///                                   submitter's trace.
///   STATUS <id>                  -> OK <id> <state> <done>/<total>
///                                   hits=<n> misses=<n> snapshots=<n>
///                                   replayed=<n> uptime_s=<n> queued=<n>
///                                   running=<n> draining=<0|1>
///                                   (replayed counts sessions a reattach
///                                   restored from the journal + cache;
///                                   draining=1 once DRAIN/SIGUSR2 stopped
///                                   admission)
///   LIST                         -> OK <count>  (+ one status line per
///                                   campaign)
///   CANCEL <id>                  -> OK cancelled
///   WAIT <id>                    -> OK <terminal-state>   (blocks)
///   SHARDREPORT <id>             -> OK <id>  (+ the campaign's mergeable
///                                   report, campaign_report_io format; only
///                                   after the campaign is terminal — a
///                                   coordinator merges these shard reports
///                                   into the fleet-wide result)
///   CACHE                        -> OK entries=<n> bytes=<n> hits=<n>
///                                   misses=<n> stores=<n> evictions=<n>
///                                   index_hits=<n> index_misses=<n>
///                                   index_stores=<n> index_entries=<n>
///                                   (result-cache stats since daemon start;
///                                   `ERR` when the cache is disabled)
///   TRACESPANS                   -> OK now_us=<n> spans=<n>  (+ the
///                                   instance's buffered trace spans in the
///                                   emutile-trace text format, open spans
///                                   included; now_us is the instance's
///                                   journal clock at reply time, which the
///                                   coordinator's clock-offset stitching
///                                   reads)
///   DRAIN                        -> OK draining queued=<n> running=<n>
///                                   (stop admitting: later SUBMITs answer
///                                   `ERR draining ...`; in-flight campaigns
///                                   finish or journal, and the daemon exits
///                                   0 once drained — the rolling-upgrade
///                                   handoff)
///   SHUTDOWN                     -> OK bye  (sets shutdown_requested)
///
/// Errors answer `ERR <message>`. The first token after ERR is a stable
/// machine code for the distinguished sheds (`busy`, `draining`,
/// `overdeadline`) — ServiceClient maps them onto ServiceErrorCode.
///
/// Persistent connections (reactor mode only, advertised as the `persist`
/// HELLO capability): a client that opens with the line `PERSIST\n` gets
/// `OK persist\n` back and the connection then stays open, carrying one
/// single-line request per exchange (no SUBMIT bodies). Each response is
/// length-framed as `#<bytes>\n<payload>` so the client can delimit it
/// without a half-close. This is what spares a coordinator's STATUS polling
/// loop a dial per tick on TCP.
///
/// Two connection-handling modes, byte-identical on the wire:
///
///   kReactor (default)  One epoll-multiplexed reactor thread owns every fd:
///                       non-blocking accept/read/write, a per-connection
///                       state machine buffering partial requests, and a
///                       small worker pool executing complete requests
///                       (handed over through lock-free MPMC rings, woken by
///                       an eventfd). Blocking WAITs never pin a worker:
///                       they "park" in the reactor and are re-polled on a
///                       ~100 ms cadence, so thousands of simultaneous
///                       clients (waiters included) fit in a handful of
///                       threads. On stop the reactor drains: in-flight
///                       executions finish and flush, readers and parked
///                       waiters get a terminal ERR, and every fd the
///                       endpoint ever owned is provably closed.
///
///   kThreadPerConnection  The original accept-thread + thread-per-connection
///                       server. Kept as the A/B baseline for the
///                       submit-storm bench and the cross-mode byte-identity
///                       test. One-shot only (no PERSIST — the capability is
///                       absent from its HELLO).
///
/// The server applies a receive deadline to each request, so a client that
/// connects and never writes (or never half-closes) gets dropped (counted in
/// `endpoint.read_timeouts`) instead of pinning a connection and blocking
/// daemon shutdown; an idle persistent connection is silently closed after a
/// longer deadline (the client re-dials transparently). Requests slower than
/// the slow-request threshold (set_slow_request_ms, default 1000) log a WARN
/// with the command and duration and count into `endpoint.slow_requests`.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/address.hpp"
#include "util/mpmc_queue.hpp"

namespace emutile {

class SessionService;

/// Version advertised by HELLO. v2 added HELLO itself, the distinguished
/// `ERR draining` token, and PERSIST framing; v1 daemons answer HELLO with
/// `ERR unknown command` and clients fall back to the v1 subset.
inline constexpr int kWireProtocolVersion = 2;

enum class EndpointMode : std::uint8_t {
  kReactor,              ///< epoll reactor + worker pool (default)
  kThreadPerConnection,  ///< legacy: one detached thread per connection
};

struct EndpointOptions {
  EndpointMode mode = EndpointMode::kReactor;
  /// Request-execution worker threads (reactor mode only). Small on
  /// purpose: requests are short (WAIT parks instead of blocking), so a
  /// handful of workers saturate the service core.
  std::size_t workers = 4;
  /// Capacity of the reactor<->worker MPMC rings (rounded up to a power of
  /// two). A full execution ring briefly queues inside the reactor; a full
  /// completion ring briefly blocks a worker — neither drops a request.
  std::size_t queue_capacity = 4096;
  /// When set (must be kTcp), listen on this TCP address alongside the Unix
  /// socket — same protocol, byte-identical. Port 0 takes an ephemeral port;
  /// read the bound one back with ServiceEndpoint::tcp_address().
  std::optional<ServiceAddress> tcp;
};

class ServiceEndpoint {
 public:
  /// Bind and listen on `socket_path` (an existing stale socket file is
  /// replaced) — plus `options.tcp` when set — and start serving. Throws
  /// CheckError on bind failures.
  ServiceEndpoint(SessionService& service, std::filesystem::path socket_path,
                  EndpointOptions options = {});

  /// Stops accepting, drains in-flight connections, closes every owned fd,
  /// unlinks the socket.
  ~ServiceEndpoint();

  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return socket_path_;
  }

  /// The TCP address actually bound (real port filled in for :0 requests);
  /// nullopt when the endpoint is Unix-only.
  [[nodiscard]] const std::optional<ServiceAddress>& tcp_address() const {
    return tcp_address_;
  }

  /// Stable id this instance announces in HELLO (hostname-pid).
  [[nodiscard]] const std::string& instance_id() const {
    return instance_id_;
  }

  [[nodiscard]] EndpointMode mode() const { return options_.mode; }

  /// True once a client sent SHUTDOWN. The daemon's main loop polls this.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load();
  }

  /// Requests slower than this WARN and count into `endpoint.slow_requests`.
  /// Fractional milliseconds are honored (tests set 0 to trip on any
  /// request); the comparison is strict, so 0 still requires a measurable
  /// duration.
  void set_slow_request_ms(double ms) {
    slow_request_us_.store(
        ms <= 0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0));
  }

 private:
  // ---- shared (both modes) ----
  [[nodiscard]] std::string handle_request(const std::string& request);

  // ---- legacy thread-per-connection mode ----
  void accept_loop();
  void serve_connection(int fd);

  // ---- reactor mode ----
  /// Per-connection state machine, owned by the reactor. Workers touch a
  /// connection only between kExecuting hand-off and done-ring hand-back.
  struct Conn;
  void reactor_loop();
  void worker_loop();
  /// Execute a complete request on a worker. Returns true when the
  /// connection produced a response (kWriting next), false when a WAIT
  /// parked (the reactor re-queues it on a ~100 ms cadence).
  [[nodiscard]] bool execute(Conn& conn);
  void reactor_accept(int listen_fd);
  void reactor_readable(Conn& conn);
  void reactor_writable(Conn& conn);
  void reactor_close(Conn& conn);
  void reactor_finish(Conn& conn);  ///< response ready -> start writing
  /// A persistent connection flushed its response: reset for the next
  /// single-line request (and dispatch one if it is already buffered).
  void reactor_persistent_reset(Conn& conn);
  /// Queue the next buffered line of a persistent connection, if complete.
  void reactor_persistent_dispatch(Conn& conn);
  void reactor_drain_done();
  void reactor_queue_exec(Conn& conn);
  void reactor_flush_exec_overflow();
  void reactor_expire_and_retry();
  void reactor_shutdown_drain();

  SessionService& service_;
  std::filesystem::path socket_path_;
  EndpointOptions options_;
  std::optional<ServiceAddress> tcp_address_;
  std::string instance_id_;
  int listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> slow_request_us_{1'000'000};

  // Legacy mode.
  std::thread accept_thread_;
  // Connection threads are detached so a long-lived daemon never accumulates
  // joinable threads; this counter lets the destructor drain them.
  std::mutex active_mutex_;
  std::condition_variable active_drained_;
  std::size_t active_connections_ = 0;

  // Reactor mode. The reactor thread owns epoll_fd_, wake_fd_, the listen
  // fds, and every connection fd; workers never see an fd.
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: workers nudge the reactor
  std::thread reactor_thread_;
  std::vector<std::thread> worker_threads_;
  std::atomic<bool> workers_stop_{false};
  std::unique_ptr<MpmcQueue<Conn*>> exec_queue_;  ///< reactor -> workers
  std::unique_ptr<MpmcQueue<Conn*>> done_queue_;  ///< workers -> reactor
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  ///< by fd
  std::deque<Conn*> exec_overflow_;  ///< exec ring full: retry next tick
  std::vector<Conn*> parked_;        ///< WAITs awaiting their next poll
};

/// Client side of the protocol: dial `address` (kUnix or kTcp), send
/// `request` (first line + optional body), half-close, and return the full
/// response. Throws CheckError on connection errors, or when the response
/// has not arrived in full within `timeout_ms` (negative blocks indefinitely
/// — only appropriate for WAIT against a trusted daemon; a coordinator
/// polling many instances must bound every exchange so one hung daemon
/// cannot wedge it).
[[nodiscard]] std::string endpoint_request(const ServiceAddress& address,
                                           const std::string& request,
                                           int timeout_ms = -1);

/// Legacy form: a bare path is a Unix socket.
[[nodiscard]] std::string endpoint_request(
    const std::filesystem::path& socket_path, const std::string& request,
    int timeout_ms = -1);

}  // namespace emutile
