#pragma once
/// \file service_endpoint.hpp
/// Local control endpoint for the session service: a Unix-domain stream
/// socket speaking a one-shot, line-oriented text protocol (one request per
/// connection; the client half-closes after writing, the server replies and
/// closes — so the connection itself delimits both sides).
///
/// Requests (first line; SUBMIT carries the spec text as the body):
///
///   PING                         -> OK pong
///   SUBMIT <priority> [<name>]   -> OK <campaign-id>      (body = spec text)
///                                   `ERR busy ...` when the bounded campaign
///                                   queue (ServiceConfig::max_pending) is
///                                   full — resubmit later or elsewhere
///   STATUS <id>                  -> OK <id> <state> <done>/<total>
///                                   hits=<n> misses=<n> snapshots=<n>
///   LIST                         -> OK <count>  (+ one status line per
///                                   campaign)
///   CANCEL <id>                  -> OK cancelled
///   WAIT <id>                    -> OK <terminal-state>   (blocks)
///   SHARDREPORT <id>             -> OK <id>  (+ the campaign's mergeable
///                                   report, campaign_report_io format; only
///                                   after the campaign is terminal — a
///                                   coordinator merges these shard reports
///                                   into the fleet-wide result)
///   CACHE                        -> OK entries=<n> bytes=<n> hits=<n>
///                                   misses=<n> stores=<n> evictions=<n>
///                                   (result-cache stats since daemon start;
///                                   `ERR` when the cache is disabled)
///   SHUTDOWN                     -> OK bye  (sets shutdown_requested)
///
/// Errors answer `ERR <message>`. Each connection is served on its own
/// thread, so a blocking WAIT never stalls other clients. The server applies
/// a receive deadline to each request, so a client that connects and never
/// writes (or never half-closes) gets `ERR` instead of pinning a connection
/// thread and blocking daemon shutdown.

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

namespace emutile {

class SessionService;

class ServiceEndpoint {
 public:
  /// Bind and listen on `socket_path` (an existing stale socket file is
  /// replaced) and start accepting. Throws CheckError on bind failures.
  ServiceEndpoint(SessionService& service, std::filesystem::path socket_path);

  /// Stops accepting, waits for in-flight connections, unlinks the socket.
  ~ServiceEndpoint();

  ServiceEndpoint(const ServiceEndpoint&) = delete;
  ServiceEndpoint& operator=(const ServiceEndpoint&) = delete;

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return socket_path_;
  }

  /// True once a client sent SHUTDOWN. The daemon's main loop polls this.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_requested_.load();
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  [[nodiscard]] std::string handle_request(const std::string& request);

  SessionService& service_;
  std::filesystem::path socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;
  // Connection threads are detached so a long-lived daemon never accumulates
  // joinable threads; this counter lets the destructor drain them.
  std::mutex active_mutex_;
  std::condition_variable active_drained_;
  std::size_t active_connections_ = 0;
};

/// Client side of the protocol: connect to `socket_path`, send `request`
/// (first line + optional body), half-close, and return the full response.
/// Throws CheckError on connection errors, or when the response has not
/// arrived in full within `timeout_ms` (negative blocks indefinitely — only
/// appropriate for WAIT against a trusted daemon; a coordinator polling many
/// instances must bound every exchange so one hung daemon cannot wedge it).
[[nodiscard]] std::string endpoint_request(
    const std::filesystem::path& socket_path, const std::string& request,
    int timeout_ms = -1);

}  // namespace emutile
