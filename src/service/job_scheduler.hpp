#pragma once
/// \file job_scheduler.hpp
/// Priority + fair-share scheduling of many job streams over one shared
/// ThreadPool.
///
/// The pool itself is FIFO; the scheduler layers policy on top with a
/// ticket scheme: every submitted unit enqueues one generic pool task, and
/// when a ticket runs it picks the *best* pending unit at that moment —
/// highest stream priority first, then the stream that has started the
/// fewest units (fair interleaving among equals), then the oldest stream.
/// Tickets and units are 1:1 in count but deliberately not in identity, so
/// a unit submitted to a starved stream can be executed by a ticket that a
/// busier stream paid for.
///
/// Cancellation is cooperative and prompt: cancel(stream) marks the stream,
/// and every still-queued unit runs immediately-ish with cancelled=true so
/// drivers can account for it (never silently dropped). Units already
/// running are the driver's job to stop (e.g. via a cancel flag polled at
/// phase boundaries).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>

#include "util/thread_pool.hpp"

namespace emutile {

class JobScheduler {
 public:
  using StreamId = std::uint64_t;
  /// A schedulable unit. `cancelled` is true when the stream was cancelled
  /// while the unit was still queued. Units must not throw: they run on
  /// ThreadPool workers whose tasks must not throw, so an escaping exception
  /// terminates the process (the scheduler's ledger stays balanced either
  /// way, so waiters are never deadlocked on the way down).
  using Unit = std::function<void(bool cancelled)>;

  /// Schedule over an internal pool of `num_threads` workers.
  explicit JobScheduler(std::size_t num_threads);

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Drains: blocks until every submitted unit has run.
  ~JobScheduler();

  [[nodiscard]] std::size_t num_threads() const;

  /// Open a stream (e.g. one campaign). Higher priority preempts queued
  /// units of lower-priority streams.
  [[nodiscard]] StreamId open_stream(int priority = 0);

  /// Enqueue a unit on `stream`. Units may submit further units (including
  /// to their own stream) while running.
  void submit(StreamId stream, Unit unit);

  /// Mark `stream` cancelled: queued units run with cancelled=true.
  void cancel(StreamId stream);

  [[nodiscard]] bool is_cancelled(StreamId stream) const;

  /// Block until `stream` has no queued or running units.
  void wait(StreamId stream);

  /// Block until no stream has queued or running units.
  void wait_all();

 private:
  /// A queued unit plus its enqueue instant, so the scheduler can report the
  /// time units spend waiting for a ticket (scheduler.ticket_wait_us).
  struct PendingUnit {
    Unit unit;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct Stream {
    int priority = 0;
    std::deque<PendingUnit> pending;
    std::size_t started = 0;   ///< units handed to workers so far
    std::size_t running = 0;   ///< units currently executing
    bool cancelled = false;
  };

  void run_ticket();
  [[nodiscard]] Stream* pick_best_locked();

  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::map<StreamId, Stream> streams_;  // ordered => oldest-stream tie-break
  StreamId next_id_ = 1;
  ThreadPool pool_;
};

}  // namespace emutile
