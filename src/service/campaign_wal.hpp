#pragma once
/// \file campaign_wal.hpp
/// Per-campaign write-ahead journal (`out/<id>/journal.wal`): the scheduling
/// state a restarted daemon needs to resume a campaign mid-stream. The
/// result cache already memoizes completed session *results*; the WAL closes
/// the gap by recording *which* sessions completed, so a re-attach replays
/// exactly the remaining ones.
///
/// Format: line-oriented text, one record per line, each line carrying its
/// own FNV-1a checksum so torn and corrupted appends are distinguishable:
///
///   emutile-wal v1 <campaign-id> spec=<16-hex> priority=<p> #<8-hex>
///   session <job-index> <cache-key-16-hex|-> #<8-hex>
///   complete <state> #<8-hex>
///
/// `spec=` is spec_content_hash_hex of the accepted spec — re-attach refuses
/// to resume against a spec.txt whose content hash differs (the journal
/// would describe a different campaign). A `session` line is appended only
/// *after* the session's result is durably in the result cache, so a record
/// without its cache entry merely costs a deterministic re-run, never a
/// wrong report. `complete` is appended after the final report artifacts are
/// on disk.
///
/// Crash semantics of the parser: a malformed or checksum-failing *last*
/// line is a torn append (the writer died mid-write) — it is dropped and the
/// journal is otherwise trusted. The same damage anywhere *before* the last
/// line cannot be a torn append and marks the whole journal poisoned:
/// parsing fails and the caller falls back to a clean re-run. Duplicate
/// session indices are tolerated (a resumed campaign re-appends sessions it
/// had to re-run); last record wins.
///
/// The writer follows the EventJournal discipline: append-open, one flushed
/// write per record under a mutex, inert on IO failure — journaling trouble
/// degrades durability, it never takes down the campaign.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace emutile {

/// One replayable completion record.
struct WalSessionRecord {
  std::size_t index = 0;     ///< job index within the expanded job list
  std::uint64_t key = 0;     ///< result-cache key; valid iff has_key
  bool has_key = false;      ///< false: completed but not memoizable ("-")
};

/// Parsed journal contents.
struct CampaignWal {
  std::string campaign_id;
  std::string spec_hash;  ///< 16-hex spec_content_hash of the accepted spec
  int priority = 0;
  std::vector<WalSessionRecord> sessions;  ///< deduped (last wins), by index
  bool complete = false;
  std::string final_state;  ///< finished|cancelled|failed when complete
};

class CampaignWalWriter {
 public:
  /// Append-opens `path`, creating parent directories. A writer that fails
  /// to open goes inert (ok() false) rather than throwing.
  explicit CampaignWalWriter(const std::filesystem::path& path);

  CampaignWalWriter(const CampaignWalWriter&) = delete;
  CampaignWalWriter& operator=(const CampaignWalWriter&) = delete;

  /// Write the header record. Call once, for a freshly created journal only
  /// (a resumed campaign appends to its surviving journal instead).
  void begin(const std::string& campaign_id, const std::string& spec_hash,
             int priority);

  /// Record one completed session. `has_key` false emits "-" (completed but
  /// not memoizable — replay will re-run it deterministically).
  void session(std::size_t index, std::uint64_t key, bool has_key);

  /// Record the terminal state, after the report artifacts are on disk.
  void complete(const char* state);

  [[nodiscard]] bool ok() const { return ok_; }

 private:
  void append(const std::string& body);

  std::ofstream out_;
  std::mutex mutex_;
  bool ok_ = false;
};

/// Parse journal text. Returns nullopt (with a reason in *error when given)
/// on a poisoned journal: missing/bad header, or a damaged non-final line.
/// A damaged final line is dropped as a torn append.
[[nodiscard]] std::optional<CampaignWal> parse_campaign_wal(
    const std::string& text, std::string* error = nullptr);

/// Read and parse `path`. Missing or unreadable files report as errors too.
[[nodiscard]] std::optional<CampaignWal> load_campaign_wal(
    const std::filesystem::path& path, std::string* error = nullptr);

}  // namespace emutile
