#include "service/campaign_wal.hpp"

#include <cstdio>

#include <algorithm>
#include <sstream>
#include <system_error>
#include <unordered_map>

#include "campaign/campaign_spec_io.hpp"
#include "util/file_io.hpp"

namespace emutile {

namespace {

// Per-line checksum: low 32 bits of FNV-1a over the record body, rendered
// as exactly 8 hex digits and appended as " #xxxxxxxx".
std::string line_checksum(const std::string& body) {
  const std::uint64_t h = fnv1a64(body) & 0xffffffffull;
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

// Split "body #xxxxxxxx" and verify the checksum. Empty return: damaged.
bool split_checked_line(const std::string& line, std::string* body) {
  const std::size_t mark = line.rfind(" #");
  if (mark == std::string::npos) return false;
  const std::string sum = line.substr(mark + 2);
  if (sum.size() != 8) return false;
  *body = line.substr(0, mark);
  return line_checksum(*body) == sum;
}

bool parse_u64_hex(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

// Parse one verified record body into `wal`. `first` is true for the line
// that must be the header.
bool parse_record(const std::string& body, bool first, CampaignWal* wal,
                  std::string* error) {
  std::istringstream in(body);
  std::string kind;
  in >> kind;
  if (first) {
    std::string version, id, spec, priority;
    if (kind != "emutile-wal" || !(in >> version >> id >> spec >> priority) ||
        version != "v1" || spec.rfind("spec=", 0) != 0 ||
        priority.rfind("priority=", 0) != 0) {
      return fail(error, "bad header: " + body);
    }
    wal->campaign_id = id;
    wal->spec_hash = spec.substr(5);
    std::uint64_t ignored = 0;
    if (wal->spec_hash.size() != 16 ||
        !parse_u64_hex(wal->spec_hash, &ignored)) {
      return fail(error, "bad spec hash: " + body);
    }
    try {
      wal->priority = std::stoi(priority.substr(9));
    } catch (const std::exception&) {
      return fail(error, "bad priority: " + body);
    }
    return true;
  }
  if (kind == "session") {
    WalSessionRecord rec;
    std::string index, key;
    if (!(in >> index >> key)) return fail(error, "bad session: " + body);
    try {
      rec.index = static_cast<std::size_t>(std::stoull(index));
    } catch (const std::exception&) {
      return fail(error, "bad session index: " + body);
    }
    if (key != "-") {
      if (!parse_u64_hex(key, &rec.key)) {
        return fail(error, "bad session key: " + body);
      }
      rec.has_key = true;
    }
    wal->sessions.push_back(rec);
    return true;
  }
  if (kind == "complete") {
    std::string state;
    if (!(in >> state)) return fail(error, "bad complete: " + body);
    wal->complete = true;
    wal->final_state = state;
    return true;
  }
  return fail(error, "unknown record: " + body);
}

}  // namespace

CampaignWalWriter::CampaignWalWriter(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  out_.open(path, std::ios::app);
  ok_ = out_.is_open();
}

void CampaignWalWriter::begin(const std::string& campaign_id,
                              const std::string& spec_hash, int priority) {
  append("emutile-wal v1 " + campaign_id + " spec=" + spec_hash +
         " priority=" + std::to_string(priority));
}

void CampaignWalWriter::session(std::size_t index, std::uint64_t key,
                                bool has_key) {
  append("session " + std::to_string(index) + " " +
         (has_key ? format_u64_hex(key) : std::string("-")));
}

void CampaignWalWriter::complete(const char* state) {
  append(std::string("complete ") + state);
}

void CampaignWalWriter::append(const std::string& body) {
  if (!ok_) return;
  const std::string line = body + " #" + line_checksum(body) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.flush();
  if (out_.fail()) ok_ = false;
}

std::optional<CampaignWal> parse_campaign_wal(const std::string& text,
                                              std::string* error) {
  // Collect lines first so "last line" is well-defined: only the final line
  // may be damaged (torn append); damage anywhere else poisons the journal.
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    if (error != nullptr) *error = "empty journal";
    return std::nullopt;
  }

  CampaignWal wal;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = (i + 1 == lines.size());
    std::string body;
    if (!split_checked_line(lines[i], &body)) {
      if (last && i > 0) break;  // torn final append — drop it
      if (error != nullptr) {
        *error = (i == 0 ? "damaged header line" : "damaged journal line") +
                 std::string(": ") + lines[i];
      }
      return std::nullopt;
    }
    std::string record_error;
    if (!parse_record(body, i == 0, &wal, &record_error)) {
      // A verified checksum with an unparseable body is corruption, not a
      // torn append — reject even on the last line (checksums don't tear).
      if (error != nullptr) *error = record_error;
      return std::nullopt;
    }
  }

  // Deduplicate session records (last wins) and return them sorted by job
  // index, so callers see one deterministic view regardless of the append
  // interleaving the worker threads produced.
  std::unordered_map<std::size_t, WalSessionRecord> by_index;
  for (const WalSessionRecord& rec : wal.sessions) by_index[rec.index] = rec;
  std::vector<WalSessionRecord> deduped;
  deduped.reserve(by_index.size());
  for (const auto& [index, rec] : by_index) deduped.push_back(rec);
  std::sort(deduped.begin(), deduped.end(),
            [](const WalSessionRecord& a, const WalSessionRecord& b) {
              return a.index < b.index;
            });
  wal.sessions = std::move(deduped);
  return wal;
}

std::optional<CampaignWal> load_campaign_wal(const std::filesystem::path& path,
                                             std::string* error) {
  std::string text;
  try {
    text = read_file(path);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
  return parse_campaign_wal(text, error);
}

}  // namespace emutile
