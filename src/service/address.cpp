#include "service/address.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace emutile {

namespace {

sockaddr_un make_unix_sockaddr(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  EMUTILE_CHECK(p.size() < sizeof addr.sun_path,
                "socket path too long (" << p.size() << " bytes): " << p);
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  return addr;
}

/// getaddrinfo wrapper; caller frees with freeaddrinfo. `passive` asks for
/// bindable addresses (listeners), otherwise connectable ones.
addrinfo* resolve_tcp(const ServiceAddress& address, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.empty() ? nullptr
                                                    : address.host.c_str(),
                               port.c_str(), &hints, &result);
  EMUTILE_CHECK(rc == 0, "cannot resolve " << address.to_string() << ": "
                                           << ::gai_strerror(rc));
  return result;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: fails (harmlessly) on non-TCP sockets.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

const char* to_string(AddressKind kind) {
  switch (kind) {
    case AddressKind::kUnix: return "unix";
    case AddressKind::kTcp: return "tcp";
    case AddressKind::kSpool: return "spool";
  }
  return "?";
}

ServiceAddress ServiceAddress::unix_socket(std::filesystem::path p) {
  ServiceAddress a;
  a.kind = AddressKind::kUnix;
  a.path = std::move(p);
  return a;
}

ServiceAddress ServiceAddress::tcp(std::string host, std::uint16_t port) {
  ServiceAddress a;
  a.kind = AddressKind::kTcp;
  a.host = std::move(host);
  a.port = port;
  return a;
}

ServiceAddress ServiceAddress::spool(std::filesystem::path root) {
  ServiceAddress a;
  a.kind = AddressKind::kSpool;
  a.path = std::move(root);
  return a;
}

std::string ServiceAddress::to_string() const {
  switch (kind) {
    case AddressKind::kUnix: return "unix:" + path.string();
    case AddressKind::kTcp:
      return "tcp:" + host + ":" + std::to_string(port);
    case AddressKind::kSpool: return "spool:" + path.string();
  }
  return "?";
}

ServiceAddress parse_service_address(const std::string& text,
                                     AddressKind bare_kind) {
  EMUTILE_CHECK(!text.empty(), "empty service address");
  const auto with_path = [&](AddressKind kind, const std::string& rest) {
    EMUTILE_CHECK(!rest.empty(), "service address '"
                                     << text << "' needs a path after '"
                                     << to_string(kind) << ":'");
    ServiceAddress a;
    a.kind = kind;
    a.path = rest;
    return a;
  };
  if (text.rfind("unix:", 0) == 0)
    return with_path(AddressKind::kUnix, text.substr(5));
  if (text.rfind("spool:", 0) == 0)
    return with_path(AddressKind::kSpool, text.substr(6));
  if (text.rfind("tcp:", 0) == 0) {
    const std::string rest = text.substr(4);
    // host:port, splitting at the last colon so IPv6 literals keep theirs.
    const std::size_t colon = rest.rfind(':');
    EMUTILE_CHECK(colon != std::string::npos && colon > 0 &&
                      colon + 1 < rest.size(),
                  "tcp service address '" << text
                                          << "' must be tcp:host:port");
    const std::string port_text = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    EMUTILE_CHECK(end != port_text.c_str() && *end == '\0' && port <= 65535,
                  "bad tcp port '" << port_text << "' in '" << text << "'");
    return ServiceAddress::tcp(rest.substr(0, colon),
                               static_cast<std::uint16_t>(port));
  }
  EMUTILE_CHECK(text.find(':') == std::string::npos || text[0] == '/' ||
                    text.rfind("./", 0) == 0,
                "unknown address scheme in '"
                    << text << "' (unix:/path, tcp:host:port, spool:/dir)");
  EMUTILE_CHECK(bare_kind != AddressKind::kTcp,
                "tcp addresses have no bare form — use tcp:host:port");
  return with_path(bare_kind, text);
}

int dial_service_address(const ServiceAddress& address) {
  EMUTILE_CHECK(address.is_wire(), "spool address "
                                       << address.to_string()
                                       << " has no wire protocol to dial");
  if (address.kind == AddressKind::kUnix) {
    const sockaddr_un addr = make_unix_sockaddr(address.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EMUTILE_CHECK(fd >= 0, "cannot create socket: " << std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      EMUTILE_CHECK(false, "cannot connect to " << address.to_string() << ": "
                                                << std::strerror(err));
    }
    return fd;
  }
  addrinfo* candidates = resolve_tcp(address, /*passive=*/false);
  int last_err = 0;
  for (const addrinfo* ai = candidates; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family,
                            ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(candidates);
      set_nodelay(fd);
      return fd;
    }
    last_err = errno;
    ::close(fd);
  }
  ::freeaddrinfo(candidates);
  EMUTILE_CHECK(false, "cannot connect to " << address.to_string() << ": "
                                            << std::strerror(last_err));
  return -1;  // unreachable
}

int listen_service_address(const ServiceAddress& address, int backlog,
                           bool nonblocking) {
  EMUTILE_CHECK(address.is_wire(), "spool address "
                                       << address.to_string()
                                       << " cannot be listened on");
  const int type = SOCK_STREAM | SOCK_CLOEXEC |
                   (nonblocking ? SOCK_NONBLOCK : 0);
  if (address.kind == AddressKind::kUnix) {
    const sockaddr_un addr = make_unix_sockaddr(address.path);
    std::filesystem::remove(address.path);  // replace a stale socket file
    const int fd = ::socket(AF_UNIX, type, 0);
    EMUTILE_CHECK(fd >= 0, "cannot create socket: " << std::strerror(errno));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(fd, backlog) != 0) {
      const int err = errno;
      ::close(fd);
      EMUTILE_CHECK(false, "cannot listen on " << address.to_string() << ": "
                                               << std::strerror(err));
    }
    return fd;
  }
  addrinfo* candidates = resolve_tcp(address, /*passive=*/true);
  int last_err = 0;
  for (const addrinfo* ai = candidates; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | type,
                            ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      ::freeaddrinfo(candidates);
      return fd;
    }
    last_err = errno;
    ::close(fd);
  }
  ::freeaddrinfo(candidates);
  EMUTILE_CHECK(false, "cannot listen on " << address.to_string() << ": "
                                           << std::strerror(last_err));
  return -1;  // unreachable
}

ServiceAddress bound_service_address(const ServiceAddress& requested,
                                     int listen_fd) {
  if (requested.kind != AddressKind::kTcp || requested.port != 0)
    return requested;
  sockaddr_storage storage{};
  socklen_t len = sizeof storage;
  ServiceAddress bound = requested;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&storage), &len) !=
      0)
    return requested;
  if (storage.ss_family == AF_INET)
    bound.port =
        ntohs(reinterpret_cast<const sockaddr_in*>(&storage)->sin_port);
  else if (storage.ss_family == AF_INET6)
    bound.port =
        ntohs(reinterpret_cast<const sockaddr_in6*>(&storage)->sin6_port);
  return bound;
}

bool fd_read_all(int fd, std::string& out, int timeout_ms,
                 const std::atomic<bool>* stop) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char buf[4096];
  for (;;) {
    if (timeout_ms >= 0) {
      if (stop && stop->load()) return false;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining <= 0) return false;
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1, static_cast<int>(std::min<long long>(remaining, 100)));
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;  // re-check stop + deadline, poll again
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) return true;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
}

bool fd_write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that closed before reading must yield EPIPE, not
    // a process-killing SIGPIPE (the daemon installs no handler for it).
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace emutile
