#pragma once
/// \file session_service.hpp
/// The campaign session service: a long-lived engine that accepts
/// CampaignSpec submissions, schedules their sessions concurrently on one
/// shared worker pool (per-campaign priorities, fair interleaving,
/// cooperative cancellation), streams incremental CampaignReport snapshots,
/// and memoizes session results on disk.
///
/// Directory layout under ServiceConfig::root:
///
///   spool/              file-queue intake: drop `<name>.spec` files here
///   spool/archive/      accepted spec files, moved after parsing
///   spool/rejected/     malformed spec files + `<name>.error` sidecars
///   cache/              the shared session ResultCache
///   out/<id>/spec.txt   canonical serialization of the accepted spec
///   out/<id>/journal.wal  per-campaign write-ahead journal (campaign_wal):
///                         spec hash + per-session completion records, what
///                         reattach() replays after a crash
///   out/<id>/snapshot-NNN.json   streamed partial reports (every
///                                snapshot_every completed sessions)
///   out/<id>/report.json|.csv    final deterministic report
///   out/<id>/report.shard        mergeable form (campaign_report_io) served
///                                over the SHARDREPORT wire command
///   out/<id>/error.txt  present iff the campaign failed outright
///   out/<id>.stale/     a surviving dir reattach() could not validate
///                       (no/poisoned journal, spec-hash mismatch), archived
///                       out of the way instead of silently shadowed
///
/// Determinism contract: out/<id>/report.json and report.csv are
/// byte-identical to to_json()/to_csv() of a direct run_campaign() of the
/// same spec, regardless of worker count, concurrent campaigns, or whether
/// sessions came from the cache. Snapshots are partial aggregates over
/// whichever sessions had finished and therefore may vary run to run — but
/// their session counts grow monotonically within a campaign.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_engine.hpp"
#include "campaign/result_cache.hpp"
#include "core/tiled_baseline_cache.hpp"
#include "obs/event_journal.hpp"
#include "obs/trace.hpp"
#include "service/job_scheduler.hpp"
#include "util/check.hpp"
#include "util/mpmc_queue.hpp"

namespace emutile {

struct ServiceConfig {
  std::filesystem::path root;   ///< spool/, cache/, and out/ live here
  std::size_t num_threads = 2;  ///< shared worker pool size
  /// Stream a snapshot every this many completed sessions (0 disables
  /// intermediate snapshots; the final report is always written).
  std::size_t snapshot_every = 8;
  bool enable_cache = true;
  /// Size bound for the result cache (ResultCache::set_max_bytes): after a
  /// store pushes the cache past this many bytes of entries, oldest-mtime
  /// entries are evicted until it fits. 0 means unbounded.
  std::size_t cache_max_bytes = 0;
  /// Backpressure: when more than this many campaigns are queued or running,
  /// submit() throws ServiceBusyError (the endpoint answers `ERR busy`)
  /// instead of accepting — a misbehaving submitter cannot OOM the daemon.
  /// 0 means unbounded.
  std::size_t max_pending = 0;
  /// Bound on the warm-start baseline cache (pre-injection tiled designs
  /// shared by every session of a (design, tiling) pair, across campaigns):
  /// least-recently-used entries are dropped past this count. A tiled
  /// baseline of a big design is tens of MB, so the default stays small.
  /// 0 means unbounded.
  std::size_t baseline_cache_entries = 8;
  /// Write an append-only `out/<id>/events.jsonl` audit journal per campaign
  /// (submit/schedule/session-start/cache-hit/finalize records). The journal
  /// carries wall-progression timestamps and therefore lives strictly
  /// outside the deterministic report artifacts.
  bool enable_journal = true;
  /// Write the per-campaign `out/<id>/journal.wal` write-ahead journal
  /// (campaign_wal.hpp) that reattach() replays after a crash. Campaigns
  /// without a canonical spec form (custom builders) never get one — they
  /// cannot be validated against a surviving directory anyway.
  bool enable_wal = true;
  /// Slow-span watchdog: WARN (with the span path) when a session's wall
  /// time exceeds this multiple of the running `session.wall_us` p99, once
  /// at least 20 sessions have been recorded. Counted as
  /// `service.slow_sessions`. <= 0 disables the watchdog.
  double slow_session_multiple = 4.0;
  /// QoS: the largest campaign (spec.num_sessions()) one submit may carry.
  /// Over-quota campaigns are shed with ServiceBusyError (the endpoint
  /// answers `ERR busy`) and counted as `service.sheds_quota`. 0 disables.
  std::size_t session_quota = 0;
  /// QoS: default relative deadline applied to submits that carry none.
  /// When a deadline is in force and the observed `session.wall_us` p99
  /// (>= 20 samples) times the work already queued says it cannot be met,
  /// the submit is shed with ServiceOverdeadlineError (`ERR overdeadline`,
  /// counted as `service.sheds_overdeadline`). 0 means no default deadline.
  std::uint64_t deadline_default_ms = 0;
  /// Capacity of the lock-free intake ring between submit() and the
  /// dispatcher thread that performs spec persistence + scheduling. Rounded
  /// up to a power of two. A full ring backpressures submit() (bounded
  /// blocking), which cannot happen while max_pending <= intake_capacity.
  std::size_t intake_capacity = 1024;
};

/// Thrown by submit() when the bounded campaign queue (max_pending) is full
/// or the spec exceeds the per-campaign session quota. The spec was not
/// accepted; resubmit later, smaller, or to another instance.
class ServiceBusyError : public CheckError {
 public:
  using CheckError::CheckError;
};

/// Thrown by submit() when admission control concludes the requested
/// relative deadline cannot be met given the observed session-latency p99
/// and the work already queued. The spec was not accepted.
class ServiceOverdeadlineError : public CheckError {
 public:
  using CheckError::CheckError;
};

enum class CampaignState : std::uint8_t {
  kQueued,    ///< accepted, waiting for its first unit to run
  kRunning,   ///< sessions in flight
  kFinished,  ///< final report written
  kCancelled, ///< cancelled; report written with cancelled sessions counted
  kFailed     ///< spec expansion or every-design build failed outright
};

[[nodiscard]] const char* to_string(CampaignState state);

/// A point-in-time view of one campaign.
struct CampaignStatus {
  std::string id;
  CampaignState state = CampaignState::kQueued;
  int priority = 0;
  std::size_t sessions_done = 0;
  std::size_t sessions_total = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t snapshots = 0;  ///< intermediate snapshots streamed so far
  /// Sessions restored from the journal + result cache by a reattach()
  /// resume instead of being re-executed. Zero for campaigns born in this
  /// process.
  std::size_t replayed = 0;
  std::string error;          ///< nonempty iff state == kFailed
  std::filesystem::path out_dir;
};

/// What reattach() did with the surviving output directories.
struct ReattachStats {
  std::size_t resumed = 0;      ///< unfinished campaigns rescheduled mid-stream
  std::size_t completed = 0;    ///< terminal campaigns re-registered for STATUS/WAIT
  std::size_t archived = 0;     ///< unvalidatable dirs moved to out/<id>.stale
  std::size_t resubmitted = 0;  ///< archived specs re-run as fresh campaigns
};

class SessionService {
 public:
  explicit SessionService(ServiceConfig config);

  /// Cancels everything still queued and drains in-flight work.
  ~SessionService();

  SessionService(const SessionService&) = delete;
  SessionService& operator=(const SessionService&) = delete;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// Accept a campaign: run admission control (max_pending, session quota,
  /// deadline feasibility), allocate an id, register the campaign, and hand
  /// it to the dispatcher thread which persists the canonical spec and
  /// schedules it — submit() itself does no disk writes, so SUBMIT latency
  /// is decoupled from spec persistence and scheduling. Returns the
  /// campaign id immediately; execution is asynchronous. `name_hint` seeds
  /// the id (sanitized). A valid `trace` parents the campaign's spans on
  /// the submitter's span (the endpoint passes its request span); an
  /// invalid one roots a fresh trace for the campaign. `deadline_ms` is the
  /// relative completion deadline for admission control (0 = use
  /// config.deadline_default_ms; both 0 = no deadline).
  std::string submit(const CampaignSpec& spec, int priority = 0,
                     const std::string& name_hint = "",
                     TraceContext trace = {}, std::uint64_t deadline_ms = 0);

  /// Parse `text` as a campaign spec and submit it. Throws CheckError on
  /// malformed input (nothing is scheduled in that case).
  std::string submit_text(const std::string& text, int priority = 0,
                          const std::string& name_hint = "",
                          TraceContext trace = {},
                          std::uint64_t deadline_ms = 0);

  /// Scan spool/ once: every `*.spec` file is parsed and submitted (then
  /// moved to spool/archive/), malformed ones are moved to spool/rejected/
  /// with an `.error` sidecar. Returns the number of accepted campaigns.
  std::size_t poll_spool();

  [[nodiscard]] std::optional<CampaignStatus> status(
      const std::string& id) const;

  /// Status of every campaign, in submission order.
  [[nodiscard]] std::vector<CampaignStatus> list() const;

  /// Cooperatively cancel a campaign: queued sessions are recorded as
  /// cancelled, running sessions stop at their next phase boundary, and the
  /// final report still gets written. Returns false for unknown ids.
  bool cancel(const std::string& id);

  /// Block until the campaign reaches a terminal state. Throws CheckError
  /// for unknown ids.
  void wait(const std::string& id);

  /// Like wait(), but gives up after `timeout`; returns true iff the
  /// campaign is terminal. Lets callers that must stay interruptible (e.g.
  /// the endpoint's WAIT handler during daemon shutdown) poll instead of
  /// blocking indefinitely.
  [[nodiscard]] bool wait_for(const std::string& id,
                              std::chrono::milliseconds timeout);

  /// Block until every submitted campaign reaches a terminal state.
  void drain();

  /// Re-attach to the output directories a previous daemon left under
  /// root/out: a dir whose journal validates against its spec.txt is either
  /// re-registered terminal (journal complete — STATUS/WAIT answer for it
  /// again) or resumed mid-stream (journaled sessions replay through the
  /// result cache, only the remainder re-executes); anything unvalidatable
  /// is archived to out/<id>.stale and, when its spec still parses,
  /// resubmitted as a fresh campaign. Call once, after construction and
  /// before serving clients — it assumes an empty registry.
  ReattachStats reattach();

  /// Stop admitting work: every later submit()/submit_text() is shed with
  /// ServiceBusyError("draining: ..."). In-flight campaigns keep running —
  /// pair with drain() for the rolling-upgrade handoff (the daemon's
  /// SIGUSR2/DRAIN path). Irreversible for this instance.
  void begin_drain();

  /// True once begin_drain() was called.
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// The shared session cache (nullptr when disabled).
  [[nodiscard]] ResultCache* cache() { return cache_.get(); }

  /// Whole seconds since this service was constructed (daemon uptime).
  [[nodiscard]] std::uint64_t uptime_seconds() const;

  /// Campaigns currently in kQueued state.
  [[nodiscard]] std::size_t queued_count() const;

  /// Campaigns currently in kRunning state.
  [[nodiscard]] std::size_t running_count() const;

 private:
  struct Campaign;

  struct SnapshotData;

  /// Dispatcher thread body: pops admitted campaigns off the intake ring
  /// and runs dispatch_campaign on each; drains the ring before exiting.
  void dispatch_loop();
  /// The half of submission that touches disk: create the out dir, persist
  /// spec.txt, open the journal, schedule. Failures mark the campaign
  /// kFailed (terminal) — asynchronous submitters see it via status/wait.
  void dispatch_campaign(Campaign& c);
  /// Transition a campaign's state, keeping the O(1) queued/running
  /// counters truthful. Caller holds mutex_.
  void set_state_locked(Campaign& c, CampaignState next);
  [[nodiscard]] Campaign* find_locked(const std::string& id) const;
  void schedule(Campaign& c);
  void prepare_unit(Campaign& c, bool cancelled);
  /// `enqueued_us` is the journal stamp taken when the unit entered the
  /// scheduler queue — the synthesized `scheduler.queue_wait` span runs
  /// from it to the unit's actual start.
  void session_unit(Campaign& c, std::size_t job_slot, bool cancelled,
                    std::uint64_t enqueued_us);
  void baseline_unit(Campaign& c, std::size_t pair_index, bool cancelled);
  /// Count one finished unit; true when it was the campaign's last (the
  /// caller must then run finalize() after releasing the lock).
  [[nodiscard]] bool unit_finished_locked(Campaign& c);
  /// Build and persist the final report. Called exactly once per campaign,
  /// by its last unit, outside the service mutex (all workers are done with
  /// the campaign, so its bulk state has no writers left).
  void finalize(Campaign& c);
  /// One reattach() directory: validate journal ↔ spec.txt ↔ report
  /// artifacts, then re-register terminal, resume, or archive(+resubmit).
  void reattach_dir(const std::filesystem::path& dir, ReattachStats& stats);
  [[nodiscard]] SnapshotData capture_snapshot_locked(Campaign& c);
  void write_snapshot(const Campaign& c, const SnapshotData& data);
  [[nodiscard]] CampaignStatus status_locked(const Campaign& c) const;

  ServiceConfig config_;
  std::unique_ptr<ResultCache> cache_;
  /// Warm-start baselines shared across campaigns. Content-keyed on
  /// (catalog design, design seed, full tiling params incl. the pair build
  /// seed), so reuse happens between campaigns that share a master seed —
  /// re-submissions, shards of one campaign, and adaptive rounds, the
  /// traffic a resident daemon actually sees. Different master seeds build
  /// genuinely different baselines and correctly miss.
  TiledBaselineCache baselines_;
  std::unique_ptr<JobScheduler> scheduler_;

  mutable std::mutex mutex_;  // campaign registry + per-campaign state
  std::condition_variable state_changed_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;  // submission order
  /// id -> campaign, so status/wait/cancel stay O(1) when thousands of
  /// campaigns have passed through (entries live as long as campaigns_).
  std::unordered_map<std::string, Campaign*> by_id_;
  /// O(1) state tallies so admission control never scans the registry.
  std::size_t queued_campaigns_ = 0;
  std::size_t running_campaigns_ = 0;
  std::size_t next_seq_ = 1;
  /// Lock-free handoff from submit() to the dispatcher thread. Holds
  /// registered campaigns (owned by campaigns_) awaiting persistence +
  /// scheduling; drained, never dropped, on shutdown.
  MpmcQueue<Campaign*> intake_;
  std::atomic<bool> intake_stop_{false};
  /// begin_drain() flips this once; submit paths shed on it lock-free.
  std::atomic<bool> draining_{false};
  std::thread dispatcher_;
  std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
};

/// Adaptive-round executor backed by a resident SessionService: each round's
/// spec is submitted (catalog designs only — rounds travel the wire format),
/// waited to a terminal state, and its mergeable out/<id>/report.shard
/// loaded back. Rounds ride the service's result cache, so re-running an
/// adaptive campaign against a warm cache re-submits its scenarios nearly
/// for free. Throws CheckError when a round ends failed or cancelled.
[[nodiscard]] AdaptiveRoundExecutor make_adaptive_executor(
    SessionService& service, int priority = 0);

}  // namespace emutile
