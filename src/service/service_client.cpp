#include "service/service_client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/trace_io.hpp"
#include "service/service_endpoint.hpp"
#include "util/file_io.hpp"

namespace emutile {

namespace {

/// Parse `key=<number>` where the token is known to start with `key=`.
std::size_t keyed_count(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  EMUTILE_CHECK(token.rfind(prefix, 0) == 0,
                "malformed status token '" << token << "' (expected " << key
                                           << "=...)");
  return static_cast<std::size_t>(
      std::strtoull(token.c_str() + prefix.size(), nullptr, 10));
}

/// First line of a (possibly multi-line) response, for error messages.
std::string first_line(const std::string& response) {
  const std::size_t eol = response.find('\n');
  return eol == std::string::npos ? response : response.substr(0, eol);
}

}  // namespace

const char* to_string(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kBusy: return "busy";
    case ServiceErrorCode::kOverdeadline: return "overdeadline";
    case ServiceErrorCode::kDraining: return "draining";
    case ServiceErrorCode::kProtocol: return "protocol";
    case ServiceErrorCode::kIo: return "io";
  }
  return "?";
}

bool ServiceHello::has_cap(const std::string& cap) const {
  return std::find(caps.begin(), caps.end(), cap) != caps.end();
}

ServiceClient::ServiceClient(ServiceAddress address, int timeout_ms)
    : address_(std::move(address)), timeout_ms_(timeout_ms) {
  EMUTILE_CHECK(address_.is_wire(),
                "ServiceClient cannot dial spool address "
                    << address_.to_string()
                    << " — spool instances have no wire protocol");
}

ServiceClient::ServiceClient(std::filesystem::path socket_path, int timeout_ms)
    : ServiceClient(ServiceAddress::unix_socket(std::move(socket_path)),
                    timeout_ms) {}

ServiceClient::~ServiceClient() { close_persistent(); }

const ServiceHello& ServiceClient::hello() const {
  if (hello_) return *hello_;
  ServiceHello h;
  std::string response;
  try {
    response = endpoint_request(address_, "HELLO\n", timeout_ms_);
  } catch (const std::exception&) {
    hello_ = h;  // unreachable instance: not supported, retry via new client
    return *hello_;
  }
  // `OK proto=<n> id=<id> mode=<mode> caps=<c1,c2,...>`. Anything else —
  // notably a pre-v2 daemon's `ERR unknown command 'HELLO'` — reads as the
  // v1 one-shot-only subset.
  if (response.rfind("OK ", 0) == 0) {
    h.supported = true;
    std::istringstream in(first_line(response).substr(3));
    std::string token;
    while (in >> token) {
      if (token.rfind("proto=", 0) == 0)
        h.proto = static_cast<int>(keyed_count(token, "proto"));
      else if (token.rfind("id=", 0) == 0)
        h.id = token.substr(3);
      else if (token.rfind("mode=", 0) == 0)
        h.mode = token.substr(5);
      else if (token.rfind("caps=", 0) == 0) {
        std::istringstream caps(token.substr(5));
        std::string cap;
        while (std::getline(caps, cap, ','))
          if (!cap.empty()) h.caps.push_back(cap);
      }
    }
  }
  hello_ = std::move(h);
  return *hello_;
}

// ---- persistent channel ----------------------------------------------------

bool ServiceClient::use_persistent(const std::string& request_text) const {
  if (!persistent_enabled_) return false;
  // Single-line commands only: SUBMIT bodies need the one-shot half-close.
  if (request_text.size() < 2 || request_text.back() != '\n' ||
      request_text.find('\n') != request_text.size() - 1)
    return false;
  const ServiceHello& h = hello();
  return h.supported && h.has_cap("persist");
}

void ServiceClient::close_persistent() const {
  if (persist_fd_ >= 0) {
    ::close(persist_fd_);
    persist_fd_ = -1;
  }
  persist_buf_.clear();
}

void ServiceClient::persistent_fill(
    std::chrono::steady_clock::time_point deadline) const {
  for (;;) {
    if (timeout_ms_ >= 0) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      EMUTILE_CHECK(remaining > 0, "persistent channel to "
                                       << address_.to_string()
                                       << " timed out");
      pollfd pfd{persist_fd_, POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1, static_cast<int>(std::min<long long>(remaining, 100)));
      EMUTILE_CHECK(ready >= 0 || errno == EINTR,
                    "persistent channel to " << address_.to_string()
                                             << " poll failed: "
                                             << std::strerror(errno));
      if (ready <= 0) continue;
    }
    char buf[4096];
    const ssize_t n = ::read(persist_fd_, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    EMUTILE_CHECK(n > 0, "persistent channel to " << address_.to_string()
                                                  << (n == 0
                                                          ? " closed by peer"
                                                          : " read failed"));
    persist_buf_.append(buf, static_cast<std::size_t>(n));
    return;
  }
}

std::string ServiceClient::persistent_read_line(
    std::chrono::steady_clock::time_point deadline) const {
  for (;;) {
    const std::size_t eol = persist_buf_.find('\n');
    if (eol != std::string::npos) {
      std::string line = persist_buf_.substr(0, eol);
      persist_buf_.erase(0, eol + 1);
      return line;
    }
    persistent_fill(deadline);
  }
}

std::string ServiceClient::persistent_read_exact(
    std::size_t n, std::chrono::steady_clock::time_point deadline) const {
  while (persist_buf_.size() < n) persistent_fill(deadline);
  std::string payload = persist_buf_.substr(0, n);
  persist_buf_.erase(0, n);
  return payload;
}

std::string ServiceClient::persistent_request(
    const std::string& request_text) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            timeout_ms_ >= 0 ? timeout_ms_ : 0);
  if (persist_fd_ < 0) {
    persist_fd_ = dial_service_address(address_);
    persist_buf_.clear();
    EMUTILE_CHECK(fd_write_all(persist_fd_, "PERSIST\n"),
                  "persistent handshake write to " << address_.to_string()
                                                   << " failed");
    const std::string ack = persistent_read_line(deadline);
    EMUTILE_CHECK(ack == "OK persist", "persistent handshake with "
                                           << address_.to_string()
                                           << " refused: " << ack);
  }
  EMUTILE_CHECK(fd_write_all(persist_fd_, request_text),
                "persistent write to " << address_.to_string() << " failed");
  // Responses are length-framed: `#<bytes>\n<payload>`.
  const std::string header = persistent_read_line(deadline);
  EMUTILE_CHECK(!header.empty() && header[0] == '#',
                "persistent channel to " << address_.to_string()
                                         << " sent a malformed frame header: "
                                         << header);
  char* end = nullptr;
  const unsigned long long n = std::strtoull(header.c_str() + 1, &end, 10);
  EMUTILE_CHECK(end != header.c_str() + 1 && *end == '\0',
                "persistent channel to " << address_.to_string()
                                         << " sent a malformed frame header: "
                                         << header);
  return persistent_read_exact(static_cast<std::size_t>(n), deadline);
}

// ---- request plumbing ------------------------------------------------------

std::string ServiceClient::request(const std::string& request_text) const {
  if (use_persistent(request_text)) {
    try {
      return persistent_request(request_text);
    } catch (const std::exception&) {
      // Any channel hiccup: drop it and fall back to one-shot for this
      // request. The next request re-dials the channel.
      close_persistent();
    }
  }
  try {
    return endpoint_request(address_, request_text, timeout_ms_);
  } catch (const ServiceError&) {
    throw;
  } catch (const CheckError& e) {
    throw ServiceError(ServiceErrorCode::kIo, e.what());
  }
}

std::string ServiceClient::expect_ok(const std::string& response,
                                     const std::string& what) const {
  if (response.rfind("OK ", 0) != 0) {
    ServiceErrorCode code = ServiceErrorCode::kProtocol;
    const std::string line = first_line(response);
    if (response.rfind("ERR draining", 0) == 0) {
      code = ServiceErrorCode::kDraining;
    } else if (response.rfind("ERR busy", 0) == 0) {
      // Pre-v2 daemons fold the drain shed into `ERR busy ... draining ...`.
      code = line.find("draining") != std::string::npos
                 ? ServiceErrorCode::kDraining
                 : ServiceErrorCode::kBusy;
    } else if (response.rfind("ERR overdeadline", 0) == 0) {
      code = ServiceErrorCode::kOverdeadline;
    }
    throw ServiceError(
        code, what + " via " + address_.to_string() + " refused: " +
                  (response.empty() ? std::string("<empty response>") : line));
  }
  const std::size_t eol = response.find('\n');
  return response.substr(3, eol == std::string::npos ? std::string::npos
                                                     : eol - 3);
}

bool ServiceClient::ping() const noexcept {
  try {
    return request("PING\n") == "OK pong\n";
  } catch (...) {
    return false;
  }
}

std::string ServiceClient::submit(const std::string& spec_text, int priority,
                                  const std::string& name_hint,
                                  const std::string& traceparent,
                                  std::uint64_t deadline_ms) const {
  std::ostringstream os;
  os << "SUBMIT " << priority;
  if (!name_hint.empty()) os << " " << name_hint;
  if (!traceparent.empty()) os << " traceparent=" << traceparent;
  if (deadline_ms > 0) os << " deadline_ms=" << deadline_ms;
  os << "\n" << spec_text;
  return expect_ok(request(os.str()), "SUBMIT");
}

RemoteCampaignStatus ServiceClient::status(const std::string& id) const {
  const std::string line = expect_ok(request("STATUS " + id + "\n"),
                                     "STATUS " + id);
  // <id> <state> <done>/<total> hits=<n> misses=<n> snapshots=<n>
  std::istringstream in(line);
  RemoteCampaignStatus s;
  std::string progress, hits, misses, snapshots;
  EMUTILE_CHECK(in >> s.id >> s.state >> progress >> hits >> misses >>
                    snapshots,
                "malformed STATUS line from " << address_.to_string() << ": "
                                              << line);
  const std::size_t slash = progress.find('/');
  EMUTILE_CHECK(slash != std::string::npos,
                "malformed progress '" << progress << "' in STATUS line");
  s.sessions_done =
      static_cast<std::size_t>(std::strtoull(progress.c_str(), nullptr, 10));
  s.sessions_total = static_cast<std::size_t>(
      std::strtoull(progress.c_str() + slash + 1, nullptr, 10));
  s.cache_hits = keyed_count(hits, "hits");
  s.cache_misses = keyed_count(misses, "misses");
  s.snapshots = keyed_count(snapshots, "snapshots");
  // Daemon-level fields appended after the per-campaign ones. Optional so
  // the client still parses replies from daemons that predate them.
  std::string token;
  while (in >> token) {
    if (token.rfind("replayed=", 0) == 0)
      s.replayed = keyed_count(token, "replayed");
    else if (token.rfind("uptime_s=", 0) == 0)
      s.daemon_uptime_s = keyed_count(token, "uptime_s");
    else if (token.rfind("queued=", 0) == 0)
      s.daemon_queued = keyed_count(token, "queued");
    else if (token.rfind("running=", 0) == 0)
      s.daemon_running = keyed_count(token, "running");
    else if (token.rfind("draining=", 0) == 0)
      s.daemon_draining = keyed_count(token, "draining") != 0;
  }
  return s;
}

std::string ServiceClient::wait(const std::string& id, int timeout_ms) const {
  // WAIT takes its own (usually unbounded) timeout, so it bypasses the
  // persistent channel — a parked wait would wedge every other exchange.
  std::string response;
  try {
    response = endpoint_request(address_, "WAIT " + id + "\n", timeout_ms);
  } catch (const CheckError& e) {
    throw ServiceError(ServiceErrorCode::kIo, e.what());
  }
  return expect_ok(response, "WAIT " + id);
}

void ServiceClient::cancel(const std::string& id) const {
  static_cast<void>(expect_ok(request("CANCEL " + id + "\n"), "CANCEL " + id));
}

void ServiceClient::drain() const {
  static_cast<void>(expect_ok(request("DRAIN\n"), "DRAIN"));
}

std::string ServiceClient::list() const {
  const std::string response = request("LIST\n");
  static_cast<void>(expect_ok(response, "LIST"));
  return response;
}

std::string ServiceClient::fetch_shard_report(const std::string& id) const {
  const std::string response = request("SHARDREPORT " + id + "\n");
  static_cast<void>(expect_ok(response, "SHARDREPORT " + id));
  const std::size_t eol = response.find('\n');
  EMUTILE_CHECK(eol != std::string::npos && eol + 1 < response.size(),
                "SHARDREPORT " << id << " from " << address_.to_string()
                               << " carried no report body");
  return response.substr(eol + 1);
}

RemoteCacheStats ServiceClient::cache_stats() const {
  const std::string line = expect_ok(request("CACHE\n"), "CACHE");
  std::istringstream in(line);
  std::string entries, bytes, hits, misses, stores;
  EMUTILE_CHECK(in >> entries >> bytes >> hits >> misses >> stores,
                "malformed CACHE line from " << address_.to_string() << ": "
                                             << line);
  RemoteCacheStats s;
  s.entries = keyed_count(entries, "entries");
  s.bytes = keyed_count(bytes, "bytes");
  s.hits = keyed_count(hits, "hits");
  s.misses = keyed_count(misses, "misses");
  s.stores = keyed_count(stores, "stores");
  return s;
}

std::string ServiceClient::fetch_metrics(bool json) const {
  const std::string response =
      request(json ? "METRICS json\n" : "METRICS\n");
  static_cast<void>(expect_ok(response, "METRICS"));
  const std::size_t eol = response.find('\n');
  return eol == std::string::npos ? std::string() : response.substr(eol + 1);
}

RemoteTraceSpans ServiceClient::fetch_trace_spans() const {
  const std::string response = request("TRACESPANS\n");
  const std::string line = expect_ok(response, "TRACESPANS");
  // `OK now_us=<n> spans=<n>` followed by the emutile-trace text body.
  std::istringstream in(line);
  std::string now_tok, count_tok;
  EMUTILE_CHECK(in >> now_tok >> count_tok,
                "malformed TRACESPANS line from " << address_.to_string()
                                                  << ": " << line);
  RemoteTraceSpans result;
  result.now_us = keyed_count(now_tok, "now_us");
  const std::size_t declared = keyed_count(count_tok, "spans");
  const std::size_t eol = response.find('\n');
  const std::string body =
      eol == std::string::npos ? std::string() : response.substr(eol + 1);
  result.spans = parse_trace_spans_text(body);
  EMUTILE_CHECK(result.spans.size() == declared,
                "TRACESPANS from " << address_.to_string() << " declared "
                                   << declared << " spans, body carried "
                                   << result.spans.size());
  return result;
}

std::filesystem::path spool_submit_spec(const std::filesystem::path& root,
                                        const std::string& stem,
                                        const std::string& text) {
  const std::filesystem::path spool = root / "spool";
  std::filesystem::create_directories(spool);
  const std::string unique_stem = stem + "-" + std::to_string(::getpid());
  std::filesystem::path target;
  for (int n = 0;; ++n) {
    target =
        spool / (unique_stem + (n == 0 ? "" : "-" + std::to_string(n)) +
                 ".spec");
    if (!std::filesystem::exists(target)) break;
  }
  write_file_atomic(target, text);
  return target;
}

}  // namespace emutile
