#include "service/service_client.hpp"

#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/trace_io.hpp"
#include "service/service_endpoint.hpp"
#include "util/file_io.hpp"

namespace emutile {

namespace {

/// Parse `key=<number>` where the token is known to start with `key=`.
std::size_t keyed_count(const std::string& token, const char* key) {
  const std::string prefix = std::string(key) + "=";
  EMUTILE_CHECK(token.rfind(prefix, 0) == 0,
                "malformed status token '" << token << "' (expected " << key
                                           << "=...)");
  return static_cast<std::size_t>(
      std::strtoull(token.c_str() + prefix.size(), nullptr, 10));
}

}  // namespace

ServiceClient::ServiceClient(std::filesystem::path socket_path, int timeout_ms)
    : socket_path_(std::move(socket_path)), timeout_ms_(timeout_ms) {}

std::string ServiceClient::request(const std::string& request_text) const {
  return endpoint_request(socket_path_, request_text, timeout_ms_);
}

std::string ServiceClient::expect_ok(const std::string& response,
                                     const std::string& what) const {
  EMUTILE_CHECK(response.rfind("OK ", 0) == 0,
                what << " via " << socket_path_ << " refused: "
                     << (response.empty() ? std::string("<empty response>")
                                          : response));
  const std::size_t eol = response.find('\n');
  return response.substr(3, eol == std::string::npos ? std::string::npos
                                                     : eol - 3);
}

bool ServiceClient::ping() const noexcept {
  try {
    return request("PING\n") == "OK pong\n";
  } catch (...) {
    return false;
  }
}

std::string ServiceClient::submit(const std::string& spec_text, int priority,
                                  const std::string& name_hint,
                                  const std::string& traceparent,
                                  std::uint64_t deadline_ms) const {
  std::ostringstream os;
  os << "SUBMIT " << priority;
  if (!name_hint.empty()) os << " " << name_hint;
  if (!traceparent.empty()) os << " traceparent=" << traceparent;
  if (deadline_ms > 0) os << " deadline_ms=" << deadline_ms;
  os << "\n" << spec_text;
  const std::string response = request(os.str());
  if (response.rfind("ERR busy", 0) == 0)
    throw BusyError("instance at " + socket_path_.string() +
                    " is busy: " + response.substr(4));
  if (response.rfind("ERR overdeadline", 0) == 0)
    throw OverdeadlineError("instance at " + socket_path_.string() +
                            " shed the deadline: " + response.substr(4));
  return expect_ok(response, "SUBMIT");
}

RemoteCampaignStatus ServiceClient::status(const std::string& id) const {
  const std::string line = expect_ok(request("STATUS " + id + "\n"),
                                     "STATUS " + id);
  // <id> <state> <done>/<total> hits=<n> misses=<n> snapshots=<n>
  std::istringstream in(line);
  RemoteCampaignStatus s;
  std::string progress, hits, misses, snapshots;
  EMUTILE_CHECK(in >> s.id >> s.state >> progress >> hits >> misses >>
                    snapshots,
                "malformed STATUS line from " << socket_path_ << ": " << line);
  const std::size_t slash = progress.find('/');
  EMUTILE_CHECK(slash != std::string::npos,
                "malformed progress '" << progress << "' in STATUS line");
  s.sessions_done =
      static_cast<std::size_t>(std::strtoull(progress.c_str(), nullptr, 10));
  s.sessions_total = static_cast<std::size_t>(
      std::strtoull(progress.c_str() + slash + 1, nullptr, 10));
  s.cache_hits = keyed_count(hits, "hits");
  s.cache_misses = keyed_count(misses, "misses");
  s.snapshots = keyed_count(snapshots, "snapshots");
  // Daemon-level fields appended after the per-campaign ones. Optional so
  // the client still parses replies from daemons that predate them.
  std::string token;
  while (in >> token) {
    if (token.rfind("replayed=", 0) == 0)
      s.replayed = keyed_count(token, "replayed");
    else if (token.rfind("uptime_s=", 0) == 0)
      s.daemon_uptime_s = keyed_count(token, "uptime_s");
    else if (token.rfind("queued=", 0) == 0)
      s.daemon_queued = keyed_count(token, "queued");
    else if (token.rfind("running=", 0) == 0)
      s.daemon_running = keyed_count(token, "running");
    else if (token.rfind("draining=", 0) == 0)
      s.daemon_draining = keyed_count(token, "draining") != 0;
  }
  return s;
}

std::string ServiceClient::wait(const std::string& id, int timeout_ms) const {
  return expect_ok(
      endpoint_request(socket_path_, "WAIT " + id + "\n", timeout_ms),
      "WAIT " + id);
}

void ServiceClient::cancel(const std::string& id) const {
  static_cast<void>(expect_ok(request("CANCEL " + id + "\n"), "CANCEL " + id));
}

void ServiceClient::drain() const {
  static_cast<void>(expect_ok(request("DRAIN\n"), "DRAIN"));
}

std::string ServiceClient::list() const {
  const std::string response = request("LIST\n");
  static_cast<void>(expect_ok(response, "LIST"));
  return response;
}

std::string ServiceClient::fetch_shard_report(const std::string& id) const {
  const std::string response = request("SHARDREPORT " + id + "\n");
  static_cast<void>(expect_ok(response, "SHARDREPORT " + id));
  const std::size_t eol = response.find('\n');
  EMUTILE_CHECK(eol != std::string::npos && eol + 1 < response.size(),
                "SHARDREPORT " << id << " from " << socket_path_
                               << " carried no report body");
  return response.substr(eol + 1);
}

RemoteCacheStats ServiceClient::cache_stats() const {
  const std::string line = expect_ok(request("CACHE\n"), "CACHE");
  std::istringstream in(line);
  std::string entries, bytes, hits, misses, stores;
  EMUTILE_CHECK(in >> entries >> bytes >> hits >> misses >> stores,
                "malformed CACHE line from " << socket_path_ << ": " << line);
  RemoteCacheStats s;
  s.entries = keyed_count(entries, "entries");
  s.bytes = keyed_count(bytes, "bytes");
  s.hits = keyed_count(hits, "hits");
  s.misses = keyed_count(misses, "misses");
  s.stores = keyed_count(stores, "stores");
  return s;
}

std::string ServiceClient::fetch_metrics(bool json) const {
  const std::string response =
      request(json ? "METRICS json\n" : "METRICS\n");
  static_cast<void>(expect_ok(response, "METRICS"));
  const std::size_t eol = response.find('\n');
  return eol == std::string::npos ? std::string() : response.substr(eol + 1);
}

RemoteTraceSpans ServiceClient::fetch_trace_spans() const {
  const std::string response = request("TRACESPANS\n");
  const std::string line = expect_ok(response, "TRACESPANS");
  // `OK now_us=<n> spans=<n>` followed by the emutile-trace text body.
  std::istringstream in(line);
  std::string now_tok, count_tok;
  EMUTILE_CHECK(in >> now_tok >> count_tok,
                "malformed TRACESPANS line from " << socket_path_ << ": "
                                                  << line);
  RemoteTraceSpans result;
  result.now_us = keyed_count(now_tok, "now_us");
  const std::size_t declared = keyed_count(count_tok, "spans");
  const std::size_t eol = response.find('\n');
  const std::string body =
      eol == std::string::npos ? std::string() : response.substr(eol + 1);
  result.spans = parse_trace_spans_text(body);
  EMUTILE_CHECK(result.spans.size() == declared,
                "TRACESPANS from " << socket_path_ << " declared " << declared
                                   << " spans, body carried "
                                   << result.spans.size());
  return result;
}

std::filesystem::path spool_submit_spec(const std::filesystem::path& root,
                                        const std::string& stem,
                                        const std::string& text) {
  const std::filesystem::path spool = root / "spool";
  std::filesystem::create_directories(spool);
  const std::string unique_stem = stem + "-" + std::to_string(::getpid());
  std::filesystem::path target;
  for (int n = 0;; ++n) {
    target =
        spool / (unique_stem + (n == 0 ? "" : "-" + std::to_string(n)) +
                 ".spec");
    if (!std::filesystem::exists(target)) break;
  }
  write_file_atomic(target, text);
  return target;
}

}  // namespace emutile
