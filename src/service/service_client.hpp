#pragma once
/// \file service_client.hpp
/// Client side of a serviced instance: typed wrappers over the line protocol
/// of service_endpoint.hpp, shared by emutile_submit, the campaign
/// coordinator, the fleet console, and anything else that talks to a daemon.
///
/// Addressing: a client dials a ServiceAddress (unix:/path or tcp:host:port;
/// a bare path keeps its legacy Unix-socket meaning). Every exchange is
/// bounded by this client's receive timeout, so a hung or dead daemon
/// surfaces as an error within the timeout instead of blocking the caller
/// forever.
///
/// Errors: every failure throws ServiceError, which carries a stable
/// ServiceErrorCode — transport failures are kIo, `ERR busy` is kBusy,
/// `ERR draining` (or a pre-v2 daemon's busy-while-draining) is kDraining,
/// `ERR overdeadline` is kOverdeadline, anything else the daemon refused is
/// kProtocol. Callers switch retry policy on codes, never on substrings.
/// ServiceError derives from CheckError so legacy catch sites keep working.
///
/// Transport: by default every method opens a fresh one-shot connection
/// through endpoint_request(). Opt into set_persistent(true) and the client
/// keeps one connection per instance open for single-line commands (STATUS
/// polling over TCP stops paying a dial per tick), transparently falling
/// back to one-shot — and re-dialing later — whenever the channel breaks.
/// The persistent channel is only used against daemons whose HELLO
/// advertises the `persist` capability; hello() probes once per client and
/// degrades gracefully against pre-HELLO daemons.
///
/// A ServiceClient is not thread-safe: it caches the HELLO reply and may own
/// a persistent connection. Give each thread its own client.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "service/address.hpp"
#include "util/check.hpp"

namespace emutile {

/// Stable machine-readable failure codes — the wire protocol's distinguished
/// `ERR <code>` tokens plus the two client-side conditions.
enum class ServiceErrorCode : std::uint8_t {
  kBusy,          ///< bounded queue full / over quota — retry later/elsewhere
  kOverdeadline,  ///< admission control shed the deadline — relax or drop it
  kDraining,      ///< instance stopped admitting for good — route elsewhere
  kProtocol,      ///< daemon refused or replied out of grammar
  kIo,            ///< dial/read/write failure or timeout — instance may be gone
};

[[nodiscard]] const char* to_string(ServiceErrorCode code);

/// Any failure talking to a serviced instance. `code()` is the retry-policy
/// switch; what() carries the human-readable detail.
class ServiceError : public CheckError {
 public:
  ServiceError(ServiceErrorCode code, const std::string& detail)
      : CheckError(detail), code_(code) {}

  [[nodiscard]] ServiceErrorCode code() const { return code_; }

 private:
  ServiceErrorCode code_;
};

/// Parsed HELLO reply. `supported == false` means the daemon predates HELLO
/// (it answered `ERR unknown command`) — treat it as protocol v1, one-shot
/// transport only.
struct ServiceHello {
  bool supported = false;
  int proto = 1;
  std::string id;    ///< stable instance id (hostname-pid)
  std::string mode;  ///< "reactor" | "legacy"
  std::vector<std::string> caps;

  [[nodiscard]] bool has_cap(const std::string& cap) const;
};

/// Parsed form of one STATUS line.
struct RemoteCampaignStatus {
  std::string id;
  std::string state;  ///< queued|running|finished|cancelled|failed
  std::size_t sessions_done = 0;
  std::size_t sessions_total = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t snapshots = 0;
  /// Sessions a restart's reattach restored from the write-ahead journal +
  /// result cache instead of re-executing.
  std::size_t replayed = 0;
  /// Daemon-level fields (STATUS appends them after the per-campaign ones);
  /// zero when talking to a daemon that predates them.
  std::size_t daemon_uptime_s = 0;
  std::size_t daemon_queued = 0;   ///< campaigns waiting for their first unit
  std::size_t daemon_running = 0;  ///< campaigns with sessions in flight
  /// True once the daemon stopped admitting (DRAIN/SIGUSR2): route new work
  /// elsewhere and expect this instance to exit after its backlog finishes.
  bool daemon_draining = false;

  [[nodiscard]] bool terminal() const {
    return state == "finished" || state == "cancelled" || state == "failed";
  }
};

/// Parsed form of a CACHE response.
struct RemoteCacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
};

/// Parsed form of a TRACESPANS response: the instance's buffered spans plus
/// its journal clock at reply time (`now_us`), which is what the
/// coordinator's midpoint clock-offset correction needs.
struct RemoteTraceSpans {
  std::vector<TraceSpan> spans;
  std::uint64_t now_us = 0;
};

class ServiceClient {
 public:
  /// `timeout_ms` bounds every exchange except wait() (which has its own);
  /// negative blocks indefinitely. `address` must be a wire address (kUnix
  /// or kTcp) — spool instances have no protocol to speak.
  explicit ServiceClient(ServiceAddress address, int timeout_ms = 30'000);

  /// Legacy form: a bare path is a Unix socket.
  explicit ServiceClient(std::filesystem::path socket_path,
                         int timeout_ms = 30'000);

  ~ServiceClient();
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  [[nodiscard]] const ServiceAddress& address() const { return address_; }

  /// Opt into one persistent connection for single-line commands. A no-op
  /// against daemons without the `persist` capability; any channel error
  /// falls back to one-shot for that request and re-dials on the next.
  void set_persistent(bool enabled) { persistent_enabled_ = enabled; }

  /// The daemon's HELLO reply, probed once per client and cached. Never
  /// throws out of the probe itself: a dead instance or a pre-HELLO daemon
  /// both read as `supported == false`.
  [[nodiscard]] const ServiceHello& hello() const;

  /// Raw exchange (request must be newline-terminated; SUBMIT carries the
  /// spec as the body). Returns the raw response. Throws ServiceError{kIo}
  /// when the exchange itself fails.
  [[nodiscard]] std::string request(const std::string& request_text) const;

  /// True iff a live daemon answered the PING. Never throws: a dead socket,
  /// a stale socket file, or a timeout all read as "not up".
  [[nodiscard]] bool ping() const noexcept;

  /// SUBMIT `spec_text`; returns the daemon-assigned campaign id. A
  /// non-empty `traceparent` (format_traceparent form) rides as the
  /// `traceparent=` token so the daemon parents its spans on the caller's.
  /// A non-zero `deadline_ms` rides as the `deadline_ms=` token: the daemon
  /// sheds the submit up front if it cannot plausibly finish within that
  /// relative deadline. Throws ServiceError — kBusy, kDraining, and
  /// kOverdeadline are the retryable-by-policy refusals.
  [[nodiscard]] std::string submit(const std::string& spec_text,
                                   int priority = 0,
                                   const std::string& name_hint = "",
                                   const std::string& traceparent = "",
                                   std::uint64_t deadline_ms = 0) const;

  /// STATUS of one campaign. Throws ServiceError (e.g. unknown id).
  [[nodiscard]] RemoteCampaignStatus status(const std::string& id) const;

  /// WAIT for a terminal state; returns it ("finished", ...). `timeout_ms`
  /// defaults to blocking indefinitely — campaigns take as long as they
  /// take; pass a bound when polling STATUS first.
  [[nodiscard]] std::string wait(const std::string& id,
                                 int timeout_ms = -1) const;

  /// CANCEL a campaign. Throws ServiceError on unknown ids.
  void cancel(const std::string& id) const;

  /// DRAIN: tell the daemon to stop admitting and exit 0 once its backlog
  /// is finished or journaled — the rolling-upgrade handoff. Idempotent on
  /// the daemon side. Throws ServiceError when the exchange fails.
  void drain() const;

  /// LIST: raw response body, one status line per campaign after `OK <n>`.
  [[nodiscard]] std::string list() const;

  /// SHARDREPORT: the campaign's mergeable report (campaign_report_io
  /// format, ready for parse_campaign_report). The campaign must be
  /// terminal. Throws ServiceError otherwise.
  [[nodiscard]] std::string fetch_shard_report(const std::string& id) const;

  /// CACHE: result-cache statistics. Throws ServiceError (e.g. disabled).
  [[nodiscard]] RemoteCacheStats cache_stats() const;

  /// METRICS: the instance's process-wide metrics. Text exposition (the
  /// default, parseable with parse_metrics_text and mergeable across
  /// instances) or JSON with `json=true`. Returns the payload without the
  /// leading "OK <format>" line.
  [[nodiscard]] std::string fetch_metrics(bool json = false) const;

  /// TRACESPANS: the instance's buffered trace spans (open ones included)
  /// plus its reply-time clock. Throws ServiceError on refusal or a reply
  /// that does not parse.
  [[nodiscard]] RemoteTraceSpans fetch_trace_spans() const;

 private:
  /// Strip "OK " and the trailing newline off a single-line response; throw
  /// ServiceError describing `what` on an ERR or malformed reply, with the
  /// code mapped from the distinguished `ERR <code>` tokens.
  [[nodiscard]] std::string expect_ok(const std::string& response,
                                      const std::string& what) const;

  /// True when `request_text` should ride the persistent channel (enabled,
  /// wire address, single line, daemon advertises `persist`).
  [[nodiscard]] bool use_persistent(const std::string& request_text) const;
  /// One exchange over the persistent channel (dialing + PERSIST handshake
  /// on first use). Throws CheckError on any channel failure — the caller
  /// closes the channel and falls back to one-shot.
  [[nodiscard]] std::string persistent_request(
      const std::string& request_text) const;
  void close_persistent() const;
  /// Buffered reads from the persistent channel, bounded by `deadline`.
  [[nodiscard]] std::string persistent_read_line(
      std::chrono::steady_clock::time_point deadline) const;
  [[nodiscard]] std::string persistent_read_exact(
      std::size_t n, std::chrono::steady_clock::time_point deadline) const;
  void persistent_fill(std::chrono::steady_clock::time_point deadline) const;

  ServiceAddress address_;
  int timeout_ms_;
  bool persistent_enabled_ = false;
  // Transport caches — logically const (no observable protocol state).
  mutable std::optional<ServiceHello> hello_;
  mutable int persist_fd_ = -1;
  mutable std::string persist_buf_;  ///< bytes read but not yet consumed
};

/// Socketless submission: atomically drop `text` into `root`/spool as
/// `<stem>-<pid>[-<n>].spec` for the daemon's next poll. The pid keeps
/// concurrent submitters of same-named specs on distinct targets, the -n
/// loop uniquifies retries within one process, and write_file_atomic
/// publishes the .spec whole. Returns the spooled path.
std::filesystem::path spool_submit_spec(const std::filesystem::path& root,
                                        const std::string& stem,
                                        const std::string& text);

}  // namespace emutile
