#pragma once
/// \file service_client.hpp
/// Client side of a serviced instance: typed wrappers over the one-shot
/// line protocol of service_endpoint.hpp, shared by emutile_submit, the
/// campaign coordinator, and anything else that talks to a daemon.
///
/// One class, one connection codepath: every method opens a fresh one-shot
/// connection through endpoint_request() with this client's receive timeout,
/// so a hung or dead daemon surfaces as a CheckError within the timeout
/// instead of blocking the caller forever. Methods that parse an `OK ...`
/// response throw CheckError on `ERR ...` replies too — except where a
/// distinguished result is part of the contract (ping(), submit()'s
/// BusyError).

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace emutile {

/// Parsed form of one STATUS line.
struct RemoteCampaignStatus {
  std::string id;
  std::string state;  ///< queued|running|finished|cancelled|failed
  std::size_t sessions_done = 0;
  std::size_t sessions_total = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t snapshots = 0;
  /// Sessions a restart's reattach restored from the write-ahead journal +
  /// result cache instead of re-executing.
  std::size_t replayed = 0;
  /// Daemon-level fields (STATUS appends them after the per-campaign ones);
  /// zero when talking to a daemon that predates them.
  std::size_t daemon_uptime_s = 0;
  std::size_t daemon_queued = 0;   ///< campaigns waiting for their first unit
  std::size_t daemon_running = 0;  ///< campaigns with sessions in flight
  /// True once the daemon stopped admitting (DRAIN/SIGUSR2): route new work
  /// elsewhere and expect this instance to exit after its backlog finishes.
  bool daemon_draining = false;

  [[nodiscard]] bool terminal() const {
    return state == "finished" || state == "cancelled" || state == "failed";
  }
};

/// Parsed form of a CACHE response.
struct RemoteCacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
};

/// Parsed form of a TRACESPANS response: the instance's buffered spans plus
/// its journal clock at reply time (`now_us`), which is what the
/// coordinator's midpoint clock-offset correction needs.
struct RemoteTraceSpans {
  std::vector<TraceSpan> spans;
  std::uint64_t now_us = 0;
};

class ServiceClient {
 public:
  /// Thrown by submit() when the daemon answered `ERR busy` (bounded queue
  /// full or over the per-campaign session quota): the spec is fine, the
  /// instance is loaded — try later/elsewhere.
  class BusyError : public CheckError {
   public:
    using CheckError::CheckError;
  };

  /// Thrown by submit() when the daemon answered `ERR overdeadline`:
  /// admission control concluded the requested relative deadline cannot be
  /// met given its observed latency and backlog. Relax or drop the deadline,
  /// or submit elsewhere.
  class OverdeadlineError : public CheckError {
   public:
    using CheckError::CheckError;
  };

  /// `timeout_ms` bounds every exchange except wait() (which has its own);
  /// negative blocks indefinitely.
  explicit ServiceClient(std::filesystem::path socket_path,
                         int timeout_ms = 30'000);

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return socket_path_;
  }

  /// Raw one-shot exchange (request must be newline-terminated; SUBMIT
  /// carries the spec as the body). Returns the raw response.
  [[nodiscard]] std::string request(const std::string& request_text) const;

  /// True iff a live daemon answered the PING. Never throws: a dead socket,
  /// a stale socket file, or a timeout all read as "not up".
  [[nodiscard]] bool ping() const noexcept;

  /// SUBMIT `spec_text`; returns the daemon-assigned campaign id. A
  /// non-empty `traceparent` (format_traceparent form) rides as the
  /// `traceparent=` token so the daemon parents its spans on the caller's.
  /// A non-zero `deadline_ms` rides as the `deadline_ms=` token: the daemon
  /// sheds the submit up front if it cannot plausibly finish within that
  /// relative deadline. Throws BusyError on `ERR busy`, OverdeadlineError on
  /// `ERR overdeadline`, CheckError on any other failure.
  [[nodiscard]] std::string submit(const std::string& spec_text,
                                   int priority = 0,
                                   const std::string& name_hint = "",
                                   const std::string& traceparent = "",
                                   std::uint64_t deadline_ms = 0) const;

  /// STATUS of one campaign. Throws CheckError (e.g. unknown id).
  [[nodiscard]] RemoteCampaignStatus status(const std::string& id) const;

  /// WAIT for a terminal state; returns it ("finished", ...). `timeout_ms`
  /// defaults to blocking indefinitely — campaigns take as long as they
  /// take; pass a bound when polling STATUS first.
  [[nodiscard]] std::string wait(const std::string& id,
                                 int timeout_ms = -1) const;

  /// CANCEL a campaign. Throws CheckError on unknown ids.
  void cancel(const std::string& id) const;

  /// DRAIN: tell the daemon to stop admitting and exit 0 once its backlog
  /// is finished or journaled — the rolling-upgrade handoff. Idempotent on
  /// the daemon side. Throws CheckError when the exchange fails.
  void drain() const;

  /// LIST: raw response body, one status line per campaign after `OK <n>`.
  [[nodiscard]] std::string list() const;

  /// SHARDREPORT: the campaign's mergeable report (campaign_report_io
  /// format, ready for parse_campaign_report). The campaign must be
  /// terminal. Throws CheckError otherwise.
  [[nodiscard]] std::string fetch_shard_report(const std::string& id) const;

  /// CACHE: result-cache statistics. Throws CheckError (e.g. disabled).
  [[nodiscard]] RemoteCacheStats cache_stats() const;

  /// METRICS: the instance's process-wide metrics. Text exposition (the
  /// default, parseable with parse_metrics_text and mergeable across
  /// instances) or JSON with `json=true`. Returns the payload without the
  /// leading "OK <format>" line.
  [[nodiscard]] std::string fetch_metrics(bool json = false) const;

  /// TRACESPANS: the instance's buffered trace spans (open ones included)
  /// plus its reply-time clock. Throws CheckError on refusal or a reply
  /// that does not parse.
  [[nodiscard]] RemoteTraceSpans fetch_trace_spans() const;

 private:
  /// Strip "OK " and the trailing newline off a single-line response; throw
  /// CheckError describing `what` on an ERR or malformed reply.
  [[nodiscard]] std::string expect_ok(const std::string& response,
                                      const std::string& what) const;

  std::filesystem::path socket_path_;
  int timeout_ms_;
};

/// Socketless submission: atomically drop `text` into `root`/spool as
/// `<stem>-<pid>[-<n>].spec` for the daemon's next poll. The pid keeps
/// concurrent submitters of same-named specs on distinct targets, the -n
/// loop uniquifies retries within one process, and write_file_atomic
/// publishes the .spec whole. Returns the spooled path.
std::filesystem::path spool_submit_spec(const std::filesystem::path& root,
                                        const std::string& stem,
                                        const std::string& text);

}  // namespace emutile
