#pragma once
/// \file address.hpp
/// Fleet addressing: one URI type naming every way to reach a serviced
/// instance, shared by ServiceClient, ServiceEndpoint, the fleet config, the
/// campaign coordinator's control plane, and the tools.
///
///   unix:/run/emutile/serviced.sock  Unix-domain stream socket — the full
///                                    wire protocol, single host
///   tcp:host:port                    TCP stream socket — the full wire
///                                    protocol, cross-host. Listening on
///                                    port 0 takes an ephemeral port; read
///                                    the real one back with
///                                    bound_service_address().
///   spool:/var/emutile-b             a serviced *root* directory: specs are
///                                    dropped into <dir>/spool and reports
///                                    read from <dir>/out — no wire protocol
///
/// A bare string (no scheme) keeps its legacy meaning at each call site:
/// parse_service_address's `bare_kind` says whether it names a Unix socket
/// (ServiceClient, emutile_submit --socket) or a spool root (the fleet
/// config's `spool` kind). Everything that serializes an address emits the
/// canonical `to_string()` URI form.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

namespace emutile {

enum class AddressKind : std::uint8_t {
  kUnix,   ///< Unix-domain stream socket (wire protocol)
  kTcp,    ///< TCP stream socket (wire protocol)
  kSpool,  ///< serviced root directory (spool/ + out/; no wire protocol)
};

[[nodiscard]] const char* to_string(AddressKind kind);

struct ServiceAddress {
  AddressKind kind = AddressKind::kUnix;
  std::filesystem::path path;  ///< kUnix: socket file; kSpool: root dir
  std::string host;            ///< kTcp only
  std::uint16_t port = 0;      ///< kTcp only (0 = ephemeral when listening)

  [[nodiscard]] static ServiceAddress unix_socket(std::filesystem::path p);
  [[nodiscard]] static ServiceAddress tcp(std::string host,
                                          std::uint16_t port);
  [[nodiscard]] static ServiceAddress spool(std::filesystem::path root);

  /// True when the instance speaks the wire protocol (SUBMIT/STATUS/...).
  [[nodiscard]] bool is_wire() const { return kind != AddressKind::kSpool; }

  /// Canonical URI form: `unix:/path`, `tcp:host:port`, `spool:/dir`.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ServiceAddress&,
                         const ServiceAddress&) = default;
};

/// Parse an address URI. A bare string with no scheme is read as `bare_kind`
/// (kUnix or kSpool — the two legacy meanings; kTcp never had a bare form).
/// Throws CheckError on malformed input (unknown scheme, empty path, a tcp
/// address without `host:port`, a port outside [0, 65535]).
[[nodiscard]] ServiceAddress parse_service_address(
    const std::string& text, AddressKind bare_kind = AddressKind::kUnix);

/// Connect a blocking stream socket to a wire address (kUnix or kTcp; a
/// spool address throws — it has no wire protocol). TCP connections get
/// TCP_NODELAY. Returns the connected fd; throws CheckError on failure.
[[nodiscard]] int dial_service_address(const ServiceAddress& address);

/// Bind and listen on a wire address. A stale Unix socket file is replaced;
/// TCP listeners get SO_REUSEADDR, and port 0 binds an ephemeral port (read
/// it back with bound_service_address). `nonblocking` makes the listen fd —
/// and, via accept4 at the call sites, its accepted fds — non-blocking for
/// reactor use. Returns the listening fd; throws CheckError on failure.
[[nodiscard]] int listen_service_address(const ServiceAddress& address,
                                         int backlog, bool nonblocking);

/// The address a listening fd actually bound — `requested` with the real
/// port filled in for tcp:...:0 listeners, `requested` unchanged otherwise.
[[nodiscard]] ServiceAddress bound_service_address(
    const ServiceAddress& requested, int listen_fd);

/// Read from `fd` until EOF. Returns false on read errors, or — when
/// `timeout_ms` is non-negative — if EOF has not arrived by the deadline or
/// `*stop` became true (polled in short slices). Negative timeout blocks
/// indefinitely.
bool fd_read_all(int fd, std::string& out, int timeout_ms = -1,
                 const std::atomic<bool>* stop = nullptr);

/// Write all of `data` (MSG_NOSIGNAL: a closed peer yields false, never a
/// process-killing SIGPIPE). Returns false on write errors.
bool fd_write_all(int fd, const std::string& data);

}  // namespace emutile
