#include "service/session_service.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>

#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"
#include "service/campaign_wal.hpp"
#include "util/check.hpp"
#include "util/fault_inject.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

namespace emutile {

const char* to_string(CampaignState state) {
  switch (state) {
    case CampaignState::kQueued: return "queued";
    case CampaignState::kRunning: return "running";
    case CampaignState::kFinished: return "finished";
    case CampaignState::kCancelled: return "cancelled";
    case CampaignState::kFailed: return "failed";
  }
  return "?";
}

namespace {

std::string sanitize_id(const std::string& hint) {
  std::string out;
  for (const char c : hint) {
    if (out.size() >= 24) break;
    if (std::isalnum(static_cast<unsigned char>(c)))
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    else if (c == '-' || c == '_' || c == '.')
      out.push_back('-');
  }
  return out.empty() ? "campaign" : out;
}

/// Move `from` into directory `dir`, uniquifying the name on collision.
void move_into(const std::filesystem::path& from,
               const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::filesystem::path to = dir / from.filename();
  for (int n = 1; std::filesystem::exists(to); ++n)
    to = dir / (from.stem().string() + "." + std::to_string(n) +
                from.extension().string());
  std::filesystem::rename(from, to);
}

}  // namespace

/// All mutable fields are guarded by the service mutex except cancel_flag,
/// which sessions poll lock-free at phase boundaries.
struct SessionService::Campaign {
  std::string id;
  CampaignSpec spec;
  /// Canonical spec text, carried from submit() to the dispatcher which
  /// persists it as out/<id>/spec.txt (empty for custom-builder specs).
  std::string canonical;
  int priority = 0;
  JobScheduler::StreamId stream = 0;
  std::filesystem::path out_dir;
  CampaignState state = CampaignState::kQueued;
  std::string error;
  std::atomic<bool> cancel_flag{false};
  std::vector<CampaignJob> jobs;
  std::vector<Netlist> goldens;
  std::vector<std::string> golden_errors;
  std::vector<SessionOutcome> outcomes;
  std::vector<char> done;  ///< per job: outcome recorded (for snapshots)
  std::vector<ScenarioBaseline> per_pair;
  std::size_t sessions_done = 0;
  std::size_t units_done = 0;
  std::size_t units_total = 0;  ///< fixed by the prepare unit
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t snapshots = 0;
  /// Write-ahead journal (out/<id>/journal.wal); null when disabled or the
  /// spec has no canonical form. Same contract as the audit journal:
  /// thread-safe, inert on IO failure.
  std::unique_ptr<CampaignWalWriter> wal;
  /// Journaled completion records carried from reattach() to prepare_unit,
  /// which replays them through the result cache. Empty for fresh campaigns.
  std::vector<WalSessionRecord> wal_replay;
  bool resumed = false;      ///< re-registered by reattach(), not submit()
  std::size_t replayed = 0;  ///< sessions restored from journal + cache
  /// For terminal campaigns re-registered by reattach(): the session count
  /// recovered from the journal (jobs is never re-expanded for them).
  std::size_t sessions_total_hint = 0;
  /// Audit journal (out/<id>/events.jsonl); null when disabled. Thread-safe
  /// and inert on IO failure, so units record into it without ceremony.
  std::unique_ptr<EventJournal> journal;
  /// The campaign.run span's context (invalid when tracing is compiled
  /// out): session/queue-wait spans parent on it, and finalize() records it
  /// closed over [submit_us, finalize] with trace_parent (the submitter's
  /// span, e.g. the endpoint's SUBMIT request span) as its parent.
  TraceContext trace;
  std::uint64_t trace_parent = 0;
  std::uint64_t submit_us = 0;
};

SessionService::SessionService(ServiceConfig config)
    : config_(std::move(config)),
      baselines_(config_.baseline_cache_entries),
      intake_(config_.intake_capacity) {
  EMUTILE_CHECK(!config_.root.empty(), "service needs a root directory");
  EMUTILE_CHECK(config_.num_threads >= 1, "service needs at least 1 thread");
  std::filesystem::create_directories(config_.root / "spool");
  std::filesystem::create_directories(config_.root / "out");
  if (config_.enable_cache) {
    cache_ = std::make_unique<ResultCache>(config_.root / "cache");
    cache_->set_max_bytes(config_.cache_max_bytes);
  }
  scheduler_ = std::make_unique<JobScheduler>(config_.num_threads);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SessionService::~SessionService() {
  // Stop the dispatcher first: pop_wait drains the intake ring before
  // giving up, so every admitted campaign reaches the scheduler (and is
  // then cancelled below) — nothing submitted is silently dropped.
  intake_stop_.store(true);
  intake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<Campaign>& c : campaigns_) {
      if (c->state == CampaignState::kQueued ||
          c->state == CampaignState::kRunning) {
        c->cancel_flag.store(true);
        scheduler_->cancel(c->stream);
      }
    }
  }
  scheduler_.reset();  // drains every unit, which finalizes every campaign
}

std::string SessionService::submit(const CampaignSpec& spec, int priority,
                                   const std::string& name_hint,
                                   TraceContext trace,
                                   std::uint64_t deadline_ms) {
  MetricsRegistry& reg = MetricsRegistry::global();
  // A draining daemon admits nothing: the coordinator reads "draining" off
  // the busy error (and off STATUS) and routes the work elsewhere.
  if (draining_.load()) {
    reg.counter("service.sheds_draining").add();
    throw ServiceBusyError("draining: instance is handing off, resubmit to "
                           "another instance");
  }
  // QoS admission, cheapest checks first. Quota: a single campaign may not
  // carry more sessions than the configured per-campaign budget.
  const std::size_t sessions = spec.num_sessions();
  if (config_.session_quota > 0 && sessions > config_.session_quota) {
    reg.counter("service.sheds_quota").add();
    throw ServiceBusyError(
        "campaign exceeds session quota (" + std::to_string(sessions) +
        " sessions, quota " + std::to_string(config_.session_quota) + ")");
  }
  // Deadline feasibility: once the session-latency distribution has enough
  // samples to trust, estimate this campaign's completion as (work already
  // queued + its own sessions) serialized over the worker pool at the
  // observed p99 per session. An infeasible deadline is shed *now*, before
  // the daemon takes on work it already knows it will miss.
  const std::uint64_t effective_deadline_ms =
      deadline_ms > 0 ? deadline_ms : config_.deadline_default_ms;
  if (effective_deadline_ms > 0) {
    const MetricHistogram& wall = reg.histogram("session.wall_us");
    if (wall.count() >= 20) {
      const std::uint64_t p99_us = wall.quantile(0.99);
      const std::int64_t depth = reg.gauge("scheduler.queue_depth").value();
      const std::uint64_t queued_units =
          depth > 0 ? static_cast<std::uint64_t>(depth) : 0;
      const std::uint64_t estimated_us =
          (queued_units + sessions) * p99_us / config_.num_threads;
      if (estimated_us > effective_deadline_ms * 1000) {
        reg.counter("service.sheds_overdeadline").add();
        throw ServiceOverdeadlineError(
            "deadline " + std::to_string(effective_deadline_ms) +
            " ms infeasible: ~" + std::to_string(estimated_us / 1000) +
            " ms estimated for " + std::to_string(sessions) +
            " sessions behind " + std::to_string(queued_units) +
            " queued units at p99 " + std::to_string(p99_us / 1000) +
            " ms/session");
      }
    }
  }

  std::string canonical;
  std::string hash8 = "custom";
  try {
    canonical = serialize_campaign_spec(spec);
    hash8 = spec_content_hash_hex(spec).substr(0, 8);
  } catch (const CheckError&) {
    // Custom-builder specs have no textual form; they still run, they just
    // are not content-addressed.
  }

  // Pick an id whose output directory is fresh: the sequence counter
  // restarts with the process, and reusing a directory surviving from an
  // earlier daemon run would mix its stale snapshots/report with the new
  // campaign's. The exists() probes are disk IO, so only the sequence bump
  // happens under the service mutex.
  std::string id;
  std::filesystem::path out_dir;
  for (;;) {
    std::size_t seq;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seq = next_seq_++;
    }
    id = sanitize_id(name_hint) + "-" + hash8 + "-" + std::to_string(seq);
    out_dir = config_.root / "out" / id;
    if (!std::filesystem::exists(out_dir)) break;
  }

  Campaign* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Load admission under the same lock that registers the campaign —
    // check-then-act with the lock dropped in between would let concurrent
    // submits overshoot the bound it exists to enforce. The tally is O(1):
    // set_state_locked keeps the queued/running counters truthful.
    if (config_.max_pending > 0) {
      const std::size_t pending = queued_campaigns_ + running_campaigns_;
      if (pending >= config_.max_pending) {
        reg.counter("service.sheds_busy").add();
        throw ServiceBusyError("campaign queue full (" +
                               std::to_string(pending) + " pending, limit " +
                               std::to_string(config_.max_pending) + ")");
      }
    }
    auto owned = std::make_unique<Campaign>();
    c = owned.get();
    c->id = id;
    c->out_dir = out_dir;
    c->spec = spec;
    c->canonical = std::move(canonical);
    c->priority = priority;
    c->stream = scheduler_->open_stream(priority);
    // Adopt the submitter's trace (or root a fresh one); child spans parent
    // on the campaign.run context minted here.
    c->trace = Tracer::global().child_context(trace);
    c->trace_parent = trace.valid() ? trace.span_id : 0;
    c->submit_us = journal_now_us();
    ++queued_campaigns_;  // constructed kQueued
    by_id_.emplace(c->id, c);
    campaigns_.push_back(std::move(owned));
  }
  reg.counter("service.campaigns_submitted").add();
  reg.gauge("service.campaigns_active").add();
  // Hand off to the dispatcher: spec persistence and scheduling (disk IO)
  // happen off the submit path. A full ring blocks bounded-ly — it cannot
  // happen while max_pending <= intake_capacity, because occupancy is
  // bounded by active campaigns. push_wait only refuses when the service is
  // already stopping, in which case the shutdown path cancels + finalizes
  // the registered campaign like any other queued one.
  if (!intake_.push_wait(c, intake_stop_)) {
    std::lock_guard<std::mutex> lock(mutex_);
    c->cancel_flag.store(true);
  }
  reg.gauge("service.intake_depth")
      .set(static_cast<std::int64_t>(intake_.size_approx()));
  return c->id;
}

void SessionService::dispatch_loop() {
  while (std::optional<Campaign*> c = intake_.pop_wait(intake_stop_)) {
    MetricsRegistry::global()
        .gauge("service.intake_depth")
        .set(static_cast<std::int64_t>(intake_.size_approx()));
    dispatch_campaign(**c);
  }
}

void SessionService::dispatch_campaign(Campaign& c) {
  const LogCampaignScope log_scope(c.id);
  try {
    std::filesystem::create_directories(c.out_dir);
    if (!c.canonical.empty()) {
      write_file_atomic(c.out_dir / "spec.txt", c.canonical);
      if (config_.enable_wal) {
        // spec.txt is on disk before the WAL header that content-addresses
        // it, so a journal never outlives the spec it validates against. A
        // resumed campaign appends to its surviving journal; re-writing the
        // header would be a duplicate the parser has no use for.
        c.wal = std::make_unique<CampaignWalWriter>(c.out_dir / "journal.wal");
        if (!c.resumed)
          c.wal->begin(c.id, format_u64_hex(fnv1a64(c.canonical)),
                       c.priority);
      }
    }
    c.canonical.clear();
    c.canonical.shrink_to_fit();
    if (config_.enable_journal) {
      c.journal = std::make_unique<EventJournal>(
          c.out_dir / "events.jsonl", c.id,
          c.trace.valid() ? format_u64_hex(c.trace.trace_id) : "");
      if (c.resumed)
        c.journal->record("reattach",
                          {{"journaled", c.wal_replay.size()},
                           {"priority", c.priority}});
      else
        c.journal->record("submit", {{"priority", c.priority},
                                     {"designs", c.spec.designs.size()},
                                     {"tilings", c.spec.tilings.size()}});
    }
    schedule(c);
  } catch (const std::exception& e) {
    // Nothing reached the scheduler (a throwing JobScheduler::submit
    // withdraws its unit). Mark the campaign failed rather than erase it: a
    // concurrent list() may already have handed its id to a waiter whose
    // wait predicate holds a pointer to this Campaign, so erasing would
    // free it out from under them. kFailed is terminal, so waiters and
    // drain() proceed normally.
    MetricsRegistry::global().gauge("service.campaigns_active").sub();
    MetricsRegistry::global().counter("service.campaigns_failed").add();
    if (c.journal) c.journal->record("finalize", {{"state", "failed"}});
    EMUTILE_WARN("campaign " << c.id
                             << " could not be started: " << e.what());
    std::lock_guard<std::mutex> lock(mutex_);
    set_state_locked(c, CampaignState::kFailed);
    c.error = std::string("campaign could not be started: ") + e.what();
    state_changed_.notify_all();
  }
}

void SessionService::set_state_locked(Campaign& c, CampaignState next) {
  if (c.state == next) return;
  if (c.state == CampaignState::kQueued)
    --queued_campaigns_;
  else if (c.state == CampaignState::kRunning)
    --running_campaigns_;
  if (next == CampaignState::kQueued)
    ++queued_campaigns_;
  else if (next == CampaignState::kRunning)
    ++running_campaigns_;
  c.state = next;
}

SessionService::Campaign* SessionService::find_locked(
    const std::string& id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::string SessionService::submit_text(const std::string& text, int priority,
                                        const std::string& name_hint,
                                        TraceContext trace,
                                        std::uint64_t deadline_ms) {
  // Shed-before-parse: draining and a full campaign queue are O(1) checks,
  // and under a submit storm most requests die on them — don't spend a spec
  // parse on a request that was never going to be admitted. The
  // registration path re-checks, so these are purely fast paths.
  if (draining_.load()) {
    MetricsRegistry::global().counter("service.sheds_draining").add();
    throw ServiceBusyError("draining: instance is handing off, resubmit to "
                           "another instance");
  }
  if (config_.max_pending > 0) {
    std::size_t pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending = queued_campaigns_ + running_campaigns_;
    }
    if (pending >= config_.max_pending) {
      MetricsRegistry::global().counter("service.sheds_busy").add();
      throw ServiceBusyError("campaign queue full (" +
                             std::to_string(pending) + " pending, limit " +
                             std::to_string(config_.max_pending) + ")");
    }
  }
  return submit(parse_campaign_spec(text), priority, name_hint, trace,
                deadline_ms);
}

std::size_t SessionService::poll_spool() {
  const std::filesystem::path spool = config_.root / "spool";
  std::vector<std::filesystem::path> specs;
  for (const auto& entry : std::filesystem::directory_iterator(spool)) {
    if (entry.is_regular_file() && entry.path().extension() == ".spec")
      specs.push_back(entry.path());
  }
  std::sort(specs.begin(), specs.end());  // stable intake order

  std::size_t accepted = 0;
  for (const std::filesystem::path& path : specs) {
    try {
      const std::string text = read_file(path);
      const CampaignSpec spec = parse_campaign_spec(text);
      // A spooled spec may carry its submitter's trace context as a
      // `# traceparent=` comment (see prepend_traceparent).
      TraceContext trace{};
      if (const std::string tp = extract_traceparent(text); !tp.empty())
        if (const auto ctx = parse_traceparent(tp)) trace = *ctx;
      submit(spec, 0, path.stem().string(), trace);
      move_into(path, spool / "archive");
      ++accepted;
    } catch (const ServiceBusyError&) {
      // Queue full, not a bad spec: leave it (and everything queued behind
      // it — same full queue) in the spool for the next poll. Busy means
      // "try again later", never "reject".
      break;
    } catch (const std::exception& e) {
      EMUTILE_WARN("spool file " << path << " rejected: " << e.what());
      const std::filesystem::path rejected = spool / "rejected";
      std::filesystem::create_directories(rejected);
      write_file_atomic(rejected / (path.stem().string() + ".error"),
                        std::string(e.what()) + "\n");
      move_into(path, rejected);
    }
  }
  return accepted;
}

void SessionService::schedule(Campaign& c) {
  if (c.journal) c.journal->record("schedule");
  scheduler_->submit(c.stream,
                     [this, &c](bool cancelled) { prepare_unit(c, cancelled); });
}

void SessionService::prepare_unit(Campaign& c, bool cancelled) {
  const LogCampaignScope log_scope(c.id);
  bool do_finalize = false;
  try {
    std::vector<CampaignJob> jobs = c.spec.expand();
    const bool cancel_now = cancelled || c.cancel_flag.load();

    // Baseline pairs are round-robin partitioned across shards exactly as
    // run_campaign does, so a service-run shard's report stays byte-identical
    // to a direct run_campaign of the same spec and a fleet of shards
    // measures each pair once; unassigned pairs stay unmeasured.
    const auto pair_assigned = [&c](std::size_t u) {
      return c.spec.shard_count == 1 ||
             u % c.spec.shard_count == c.spec.shard_index;
    };
    const std::size_t all_pairs =
        c.spec.measure_baselines
            ? c.spec.designs.size() * c.spec.tilings.size()
            : 0;

    // Build only the goldens this shard's jobs and assigned baseline pairs
    // touch, mirroring run_campaign's design_needed filter.
    std::vector<char> design_needed(c.spec.designs.size(),
                                    c.spec.shard_count == 1 ? 1 : 0);
    if (c.spec.shard_count > 1) {
      for (const CampaignJob& job : jobs) design_needed[job.design_index] = 1;
      for (std::size_t u = 0; u < all_pairs; ++u)
        if (pair_assigned(u)) design_needed[u / c.spec.tilings.size()] = 1;
    }

    std::vector<Netlist> goldens(c.spec.designs.size());
    std::vector<std::string> golden_errors(c.spec.designs.size());
    if (!cancel_now) {
      for (std::size_t i = 0; i < c.spec.designs.size(); ++i) {
        if (!design_needed[i]) continue;
        try {
          goldens[i] = build_campaign_golden(c.spec, i);
        } catch (const std::exception& e) {
          golden_errors[i] = e.what();
        }
      }
    }

    // Journal replay: sessions the write-ahead journal proves finished
    // before the crash are restored from the result cache instead of
    // re-executed — this is the whole payoff of the journal. A record whose
    // recomputed key disagrees (journal from a different spec) or whose
    // cache entry vanished is simply not replayed; the session re-runs
    // deterministically. Cache IO happens here, outside the service mutex.
    std::vector<std::optional<SessionOutcome>> replay(jobs.size());
    if (!c.wal_replay.empty() && cache_ != nullptr && !cancel_now) {
      for (const WalSessionRecord& rec : c.wal_replay) {
        if (rec.index >= jobs.size() || !rec.has_key) continue;
        if (session_cache_key(c.spec, jobs[rec.index]) != rec.key) continue;
        try {
          if (std::optional<CachedSession> hit = cache_->load(rec.key))
            replay[rec.index] = from_cached(*hit);
        } catch (const std::exception& e) {
          EMUTILE_WARN("campaign " << c.id << ": replay load failed for "
                                   << "session " << rec.index << ": "
                                   << e.what());
        }
      }
    }
    c.wal_replay.clear();
    c.wal_replay.shrink_to_fit();

    std::size_t baseline_pairs = 0;
    std::size_t baseline_units = 0;
    std::size_t replay_count = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      set_state_locked(c, CampaignState::kRunning);
      c.jobs = std::move(jobs);
      c.goldens = std::move(goldens);
      c.golden_errors = std::move(golden_errors);
      c.outcomes.resize(c.jobs.size());
      c.done.assign(c.jobs.size(), 0);
      for (std::size_t i = 0; i < c.jobs.size(); ++i) {
        if (!replay[i].has_value()) continue;
        c.outcomes[i] = std::move(*replay[i]);
        c.done[i] = 1;
        ++c.sessions_done;
        ++c.cache_hits;
        ++c.replayed;
        ++replay_count;
      }
      if (c.spec.measure_baselines && !cancel_now) {
        baseline_pairs = all_pairs;
        c.per_pair.resize(baseline_pairs);
        for (std::size_t u = 0; u < baseline_pairs; ++u)
          if (pair_assigned(u)) ++baseline_units;
      }
      c.units_total = 1 + (c.jobs.size() - replay_count) + baseline_units;
      if (cancel_now) {
        for (std::size_t i = 0; i < c.jobs.size(); ++i) {
          c.outcomes[i].report.cancelled = true;
          c.done[i] = 1;
        }
        c.sessions_done = c.jobs.size();
        c.units_total = 1;
        do_finalize = unit_finished_locked(c);
      }
    }

    if (!cancel_now) {
      if (replay_count > 0) {
        MetricsRegistry::global()
            .counter("service.sessions_replayed")
            .add(replay_count);
        if (c.journal)
          c.journal->record("replay", {{"sessions", replay_count}});
      }
      // Only the slots the journal could not replay reach the scheduler.
      std::vector<std::size_t> to_run;
      to_run.reserve(c.jobs.size() - replay_count);
      for (std::size_t i = 0; i < c.jobs.size(); ++i)
        if (!c.done[i]) to_run.push_back(i);
      // If a submit throws partway (allocation failure), account for every
      // unit that never reached the scheduler so the finished/total ledger
      // still balances and finalize() fires exactly once.
      std::size_t submitted = 0;
      try {
        for (const std::size_t i : to_run) {
          // Stamped at enqueue so the unit can reconstruct its queue-wait
          // span without the scheduler knowing about tracing.
          const std::uint64_t enqueued_us = journal_now_us();
          scheduler_->submit(
              c.stream, [this, &c, i, enqueued_us](bool unit_cancelled) {
                session_unit(c, i, unit_cancelled, enqueued_us);
              });
          ++submitted;
        }
        for (std::size_t u = 0; u < baseline_pairs; ++u) {
          if (!pair_assigned(u)) continue;
          scheduler_->submit(c.stream, [this, &c, u](bool unit_cancelled) {
            baseline_unit(c, u, unit_cancelled);
          });
          ++submitted;
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        c.units_total = 1 + submitted;
        for (std::size_t k = submitted; k < to_run.size(); ++k) {
          c.outcomes[to_run[k]].error =
              std::string("session could not be scheduled: ") + e.what();
          c.done[to_run[k]] = 1;
          ++c.sessions_done;
        }
        // Unscheduled baseline pairs simply stay unmeasured.
      }
      std::lock_guard<std::mutex> lock(mutex_);
      do_finalize = unit_finished_locked(c);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    set_state_locked(c, CampaignState::kFailed);
    c.error = e.what();
    c.units_total = 1;
    do_finalize = unit_finished_locked(c);
  }
  if (do_finalize) finalize(c);
}

/// What a snapshot needs, captured under the lock so the report build and
/// file write can happen outside it.
struct SessionService::SnapshotData {
  std::size_t sequence = 0;  ///< 1-based snapshot number
  std::vector<CampaignJob> jobs_done;
  std::vector<SessionOutcome> outcomes_done;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

void SessionService::session_unit(Campaign& c, std::size_t job_slot,
                                  bool cancelled,
                                  std::uint64_t enqueued_us) {
  const LogCampaignScope log_scope(c.id);
  const CampaignJob& job = c.jobs[job_slot];
  SessionOutcome outcome;
  CacheLookup lookup = CacheLookup::kNotConsulted;
  const bool cancel_now = cancelled || c.cancel_flag.load();
  const std::uint64_t started_us = journal_now_us();
  if (!cancel_now && Tracer::enabled() && c.trace.valid()) {
    // The time between enqueue and this unit actually starting, as a span
    // child of campaign.run — reconstructed from the enqueue stamp, so the
    // scheduler itself stays tracing-free.
    Tracer::global().record_span(
        "scheduler.queue_wait", Tracer::global().child_context(c.trace),
        c.trace.span_id, enqueued_us,
        started_us >= enqueued_us ? started_us - enqueued_us : 0);
  }
  if (!cancel_now && c.journal)
    c.journal->record("session-start", {{"session", job_slot},
                                        {"scenario", job.scenario},
                                        {"replica", job.replica}});
  if (cancel_now) {
    outcome.report.cancelled = true;
  } else if (!c.golden_errors[job.design_index].empty()) {
    outcome.error = "design '" + c.spec.designs[job.design_index].name +
                    "' failed to build: " + c.golden_errors[job.design_index];
  } else {
    // Cross-thread handoff: this worker parents session.run explicitly on
    // the campaign context. Engine-level spans (cache lookup, phases,
    // localizer rounds) nest under it through the thread-local stack.
    const ScopedSpan session_span(Tracer::global(), "session.run", c.trace);
    outcome = run_campaign_session(
        c.spec, job, c.goldens[job.design_index],
        [&c] { return c.cancel_flag.load(); }, cache_.get(), &lookup,
        &baselines_);
    if (config_.slow_session_multiple > 0 && Tracer::enabled()) {
      // Slow-span watchdog: compare against the running p99 once the
      // distribution has enough samples to mean something.
      const std::uint64_t session_us = journal_now_us() - started_us;
      MetricHistogram& wall =
          MetricsRegistry::global().histogram("session.wall_us");
      const std::uint64_t p99 = wall.quantile(0.99);
      if (wall.count() >= 20 && p99 > 0 &&
          static_cast<double>(session_us) >
              config_.slow_session_multiple * static_cast<double>(p99)) {
        MetricsRegistry::global().counter("service.slow_sessions").add();
        EMUTILE_WARN("slow session: span campaign.run > session.run (campaign "
                     << c.id << ", session " << job_slot << ") took "
                     << session_us / 1000 << " ms, more than "
                     << config_.slow_session_multiple << "x the running p99 "
                     << p99 / 1000 << " ms");
      }
    }
  }
  if (c.wal && !outcome.report.cancelled && outcome.error.empty()) {
    // Journal the completion strictly after run_campaign_session stored the
    // result (a crash in the gap loses only this session's work, never the
    // journal's truthfulness). Sessions that only make sense uncached — no
    // cache, custom builder — journal "-": replay re-runs them. The fault
    // points let the durability suite SIGKILL on either side of the append
    // and prove both orders recover.
    const bool cacheable =
        cache_ != nullptr && !c.spec.designs[job.design_index].builder;
    EMUTILE_FAULT_POINT("session.pre-wal");
    c.wal->session(job_slot,
                   cacheable ? session_cache_key(c.spec, job) : 0, cacheable);
    EMUTILE_FAULT_POINT("session.post-wal");
  }
  if (c.journal) {
    if (lookup == CacheLookup::kHit)
      c.journal->record("cache-hit", {{"session", job_slot}});
    c.journal->record("session-done",
                      {{"session", job_slot},
                       {"cached", lookup == CacheLookup::kHit ? 1 : 0}});
  }
  MetricsRegistry::global().counter("service.sessions_completed").add();

  bool do_finalize = false;
  bool do_snapshot = false;
  SnapshotData snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c.outcomes[job_slot] = std::move(outcome);
    c.done[job_slot] = 1;
    ++c.sessions_done;
    if (lookup == CacheLookup::kHit) ++c.cache_hits;
    if (lookup == CacheLookup::kMiss) ++c.cache_misses;
    // Stream a snapshot every N completed sessions; the final report
    // supersedes the would-be last snapshot.
    if (config_.snapshot_every > 0 &&
        c.sessions_done % config_.snapshot_every == 0 &&
        c.sessions_done < c.jobs.size()) {
      snapshot = capture_snapshot_locked(c);
      do_snapshot = true;
    }
    do_finalize = unit_finished_locked(c);
  }
  // Report building and disk IO happen off the service mutex so one
  // campaign's output never stalls the others' workers or API calls.
  if (do_snapshot) write_snapshot(c, snapshot);
  if (do_finalize) finalize(c);
}

void SessionService::baseline_unit(Campaign& c, std::size_t pair_index,
                                   bool cancelled) {
  ScenarioBaseline baseline;
  const std::size_t design_index = pair_index / c.spec.tilings.size();
  if (!cancelled && !c.cancel_flag.load() &&
      c.golden_errors[design_index].empty()) {
    baseline =
        measure_baseline_pair(c.spec, pair_index, c.goldens[design_index]);
  }
  bool do_finalize = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c.per_pair[pair_index] = baseline;
    do_finalize = unit_finished_locked(c);
  }
  if (do_finalize) finalize(c);
}

bool SessionService::unit_finished_locked(Campaign& c) {
  ++c.units_done;
  return c.units_done == c.units_total;
}

void SessionService::finalize(Campaign& c) {
  // Runs on the campaign's last unit, outside the service mutex: every
  // other unit is done, so jobs/outcomes/per_pair have no writers left.
  const LogCampaignScope log_scope(c.id);
  CampaignState state = c.state;
  std::string error = c.error;
  if (state != CampaignState::kFailed) {
    try {
      std::vector<ScenarioBaseline> baselines;
      if (c.spec.measure_baselines && !c.per_pair.empty())
        baselines = fan_out_baselines(c.spec, c.per_pair);
      CampaignReport report =
          build_report(c.spec, c.jobs, c.outcomes, baselines);
      // config_, not scheduler_: during ~SessionService the scheduler
      // unique_ptr is already null while its drain runs this very unit.
      report.num_threads = config_.num_threads;
      report.cache_hits = c.cache_hits;
      report.cache_misses = c.cache_misses;
      // A crash from here until the journal's `complete` record leaves the
      // campaign resumable: every session is journaled + cached, so a
      // reattach replays them all and rewrites these same bytes.
      EMUTILE_FAULT_POINT("finalize.pre-report");
      write_file_atomic(c.out_dir / "report.json", report.to_json());
      write_file_atomic(c.out_dir / "report.csv", report.to_csv());
      // The mergeable form: what a coordinator fetches over SHARDREPORT to
      // recombine this shard with the rest of its fleet.
      write_file_atomic(c.out_dir / "report.shard",
                        serialize_campaign_report(report));
      state = c.cancel_flag.load() ? CampaignState::kCancelled
                                   : CampaignState::kFinished;
    } catch (const std::exception& e) {
      state = CampaignState::kFailed;
      error = e.what();
    }
  }
  if (state == CampaignState::kFailed)
    write_file_atomic(c.out_dir / "error.txt", error + "\n");
  if (c.wal) {
    // Written after every report artifact: a journal bearing `complete` is
    // a promise that the reports it describes are on disk.
    EMUTILE_FAULT_POINT("finalize.pre-complete");
    c.wal->complete(to_string(state));
  }
  {
    MetricsRegistry& reg = MetricsRegistry::global();
    reg.gauge("service.campaigns_active").sub();
    if (state == CampaignState::kFinished)
      reg.counter("service.campaigns_finished").add();
    else if (state == CampaignState::kCancelled)
      reg.counter("service.campaigns_cancelled").add();
    else
      reg.counter("service.campaigns_failed").add();
  }
  if (c.journal)
    c.journal->record("finalize", {{"state", to_string(state)},
                                   {"sessions_done", c.sessions_done},
                                   {"cache_hits", c.cache_hits}});
  if (Tracer::enabled() && c.trace.valid()) {
    // Close the campaign.run span over [submit, now] and export the
    // campaign's closed spans as Chrome trace-event JSON. A sidecar like
    // the journal: failures are swallowed, and the deterministic report
    // artifacts above never depend on it.
    Tracer& tracer = Tracer::global();
    const std::uint64_t now = journal_now_us();
    tracer.record_span("campaign.run", c.trace, c.trace_parent, c.submit_us,
                       now >= c.submit_us ? now - c.submit_us : 0);
    try {
      write_file_atomic(
          c.out_dir / "trace.json",
          trace_events_json(tracer.collect_trace(c.trace.trace_id, false)));
    } catch (const std::exception& e) {
      EMUTILE_WARN("campaign " << c.id << ": trace export failed: "
                               << e.what());
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  set_state_locked(c, state);
  c.error = error;
  // Golden netlists can be large; the campaign is done with them.
  c.goldens.clear();
  state_changed_.notify_all();
}

SessionService::SnapshotData SessionService::capture_snapshot_locked(
    Campaign& c) {
  // Copy exactly the sessions recorded so far. The subset is
  // scheduling-dependent (snapshots are a progress stream, not the
  // deterministic artifact), but each snapshot covers a superset of the
  // previous one's sessions. The sequence number is assigned here, under
  // the lock, so concurrent snapshot writers never collide.
  SnapshotData data;
  data.sequence = ++c.snapshots;
  data.cache_hits = c.cache_hits;
  data.cache_misses = c.cache_misses;
  data.jobs_done.reserve(c.sessions_done);
  data.outcomes_done.reserve(c.sessions_done);
  for (std::size_t i = 0; i < c.jobs.size(); ++i) {
    if (!c.done[i]) continue;
    data.jobs_done.push_back(c.jobs[i]);
    data.outcomes_done.push_back(c.outcomes[i]);
  }
  return data;
}

void SessionService::write_snapshot(const Campaign& c,
                                    const SnapshotData& data) {
  try {
    CampaignReport snapshot =
        build_report(c.spec, data.jobs_done, data.outcomes_done, {});
    snapshot.num_threads = config_.num_threads;
    snapshot.cache_hits = data.cache_hits;
    snapshot.cache_misses = data.cache_misses;
    char name[32];
    std::snprintf(name, sizeof name, "snapshot-%03zu.json", data.sequence);
    write_file_atomic(c.out_dir / name, snapshot.to_json());
  } catch (const std::exception& e) {
    EMUTILE_WARN("campaign " << c.id << ": snapshot failed: " << e.what());
  }
}

CampaignStatus SessionService::status_locked(const Campaign& c) const {
  CampaignStatus s;
  s.id = c.id;
  s.state = c.state;
  s.priority = c.priority;
  s.sessions_done = c.sessions_done;
  s.sessions_total = c.jobs.empty() ? c.sessions_total_hint : c.jobs.size();
  s.cache_hits = c.cache_hits;
  s.cache_misses = c.cache_misses;
  s.snapshots = c.snapshots;
  s.replayed = c.replayed;
  s.error = c.error;
  s.out_dir = c.out_dir;
  return s;
}

std::optional<CampaignStatus> SessionService::status(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Campaign* c = find_locked(id)) return status_locked(*c);
  return std::nullopt;
}

std::vector<CampaignStatus> SessionService::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CampaignStatus> out;
  out.reserve(campaigns_.size());
  for (const std::unique_ptr<Campaign>& c : campaigns_)
    out.push_back(status_locked(*c));
  return out;
}

bool SessionService::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Campaign* c = find_locked(id);
  if (c == nullptr) return false;
  c->cancel_flag.store(true);
  // Terminal campaigns re-registered by reattach() never opened a stream.
  if (c->stream != 0) scheduler_->cancel(c->stream);
  return true;
}

namespace {
bool terminal(CampaignState state) {
  return state == CampaignState::kFinished ||
         state == CampaignState::kCancelled ||
         state == CampaignState::kFailed;
}
}  // namespace

void SessionService::wait(const std::string& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Campaign* target = find_locked(id);
  EMUTILE_CHECK(target != nullptr, "unknown campaign id '" << id << "'");
  state_changed_.wait(lock, [&] { return terminal(target->state); });
}

bool SessionService::wait_for(const std::string& id,
                              std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  Campaign* target = find_locked(id);
  EMUTILE_CHECK(target != nullptr, "unknown campaign id '" << id << "'");
  return state_changed_.wait_for(lock, timeout,
                                 [&] { return terminal(target->state); });
}

std::uint64_t SessionService::uptime_seconds() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

std::size_t SessionService::queued_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_campaigns_;
}

std::size_t SessionService::running_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_campaigns_;
}

void SessionService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  state_changed_.wait(lock, [&] {
    for (const std::unique_ptr<Campaign>& c : campaigns_)
      if (!terminal(c->state)) return false;
    return true;
  });
}

void SessionService::begin_drain() {
  if (draining_.exchange(true)) return;
  MetricsRegistry::global().counter("service.drains_begun").add();
  EMUTILE_INFO("drain begun: no longer admitting campaigns ("
               << running_count() << " running, " << queued_count()
               << " queued will finish)");
}

namespace {

/// The WAL's terminal-state string back to the enum; nullopt for anything
/// unrecognized (treated as unvalidatable, not as corruption — the line's
/// checksum already passed).
std::optional<CampaignState> state_from_string(const std::string& s) {
  if (s == "finished") return CampaignState::kFinished;
  if (s == "cancelled") return CampaignState::kCancelled;
  if (s == "failed") return CampaignState::kFailed;
  return std::nullopt;
}

}  // namespace

ReattachStats SessionService::reattach() {
  ReattachStats stats;
  std::vector<std::filesystem::path> dirs;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(config_.root / "out", ec)) {
    if (!entry.is_directory()) continue;
    // .stale names are previous reattaches' archives — never rescanned.
    if (entry.path().filename().string().find(".stale") != std::string::npos)
      continue;
    dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());  // deterministic registration order
  for (const std::filesystem::path& dir : dirs) {
    try {
      reattach_dir(dir, stats);
    } catch (const std::exception& e) {
      EMUTILE_WARN("reattach: " << dir << " skipped: " << e.what());
    }
  }
  if (stats.resumed + stats.completed + stats.archived > 0) {
    EMUTILE_INFO("reattach: resumed " << stats.resumed << ", re-registered "
                 << stats.completed << " completed, archived "
                 << stats.archived << " (resubmitted " << stats.resubmitted
                 << ")");
  }
  return stats;
}

void SessionService::reattach_dir(const std::filesystem::path& dir,
                                  ReattachStats& stats) {
  const std::string id = dir.filename().string();
  MetricsRegistry& reg = MetricsRegistry::global();

  // Gather the evidence: journal, spec, and their agreement. spec.txt is
  // the canonical serialization, so its raw bytes hash to the content hash
  // the WAL header recorded at submit time.
  std::string wal_error;
  std::optional<CampaignWal> wal;
  if (config_.enable_wal)
    wal = load_campaign_wal(dir / "journal.wal", &wal_error);
  std::string spec_text;
  std::optional<CampaignSpec> spec;
  try {
    spec_text = read_file(dir / "spec.txt");
    spec = parse_campaign_spec(spec_text);
  } catch (const std::exception&) {
    spec.reset();
  }
  const bool consistent = wal.has_value() && spec.has_value() &&
                          wal->campaign_id == id &&
                          wal->spec_hash == format_u64_hex(fnv1a64(spec_text));

  if (consistent && wal->complete) {
    // `complete` promises the report artifacts were on disk when it was
    // written. Verify anyway: if they vanished, the campaign is resumable
    // (every session is journaled), so fall through to the resume path and
    // let it rewrite them from cache instead of trusting a stale promise.
    const std::optional<CampaignState> state =
        state_from_string(wal->final_state);
    const bool reports_present =
        std::filesystem::exists(dir / "report.json") &&
        std::filesystem::exists(dir / "report.shard");
    if (state.has_value() &&
        (*state == CampaignState::kFailed || reports_present)) {
      auto owned = std::make_unique<Campaign>();
      Campaign* c = owned.get();
      c->id = id;
      c->out_dir = dir;
      c->spec = *spec;
      c->priority = wal->priority;
      c->resumed = true;
      c->sessions_done = wal->sessions.size();
      c->sessions_total_hint = wal->sessions.size();
      if (*state == CampaignState::kFailed) {
        try {
          c->error = read_file(dir / "error.txt");
          while (!c->error.empty() && c->error.back() == '\n')
            c->error.pop_back();
        } catch (const std::exception&) {
          c->error = "failed (error.txt unreadable)";
        }
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++queued_campaigns_;  // constructed kQueued; the transition rebalances
      set_state_locked(*c, *state);
      by_id_.emplace(c->id, c);
      campaigns_.push_back(std::move(owned));
      ++stats.completed;
      return;
    }
  }

  if (consistent) {
    // Unfinished (or finished with its artifacts missing): re-register under
    // the same id and output dir and push it through the normal dispatch
    // path. prepare_unit replays the journaled sessions through the result
    // cache; only the remainder re-executes. WAIT/STATUS clients asking for
    // this id reconnect as if the daemon never died.
    Campaign* c = nullptr;
    {
      auto owned = std::make_unique<Campaign>();
      c = owned.get();
      c->id = id;
      c->out_dir = dir;
      c->spec = *spec;
      c->canonical = spec_text;
      c->priority = wal->priority;
      c->stream = scheduler_->open_stream(wal->priority);
      c->trace = Tracer::global().child_context({});
      c->submit_us = journal_now_us();
      c->resumed = true;
      c->wal_replay = std::move(wal->sessions);
      std::lock_guard<std::mutex> lock(mutex_);
      ++queued_campaigns_;
      by_id_.emplace(c->id, c);
      campaigns_.push_back(std::move(owned));
    }
    reg.counter("service.campaigns_reattached").add();
    reg.gauge("service.campaigns_active").add();
    if (!intake_.push_wait(c, intake_stop_)) {
      std::lock_guard<std::mutex> lock(mutex_);
      c->cancel_flag.store(true);
    }
    ++stats.resumed;
    return;
  }

  // Unvalidatable: no journal, a poisoned one, or journal/spec disagreement.
  // Archive the directory out of the way (PR 2's daemon silently shadowed
  // it forever) and, when the spec still parses, re-run it fresh — the
  // result cache makes any sessions that did complete nearly free.
  EMUTILE_WARN("reattach: archiving " << dir << " ("
               << (wal ? "journal/spec mismatch" : wal_error) << ")");
  std::filesystem::path dest = dir;
  dest += ".stale";
  for (int n = 1; std::filesystem::exists(dest); ++n) {
    dest = dir;
    dest += ".stale." + std::to_string(n);
  }
  std::filesystem::rename(dir, dest);
  reg.counter("service.reattach_archived").add();
  ++stats.archived;
  if (spec.has_value()) {
    try {
      submit(*spec, 0, id);
      ++stats.resubmitted;
    } catch (const std::exception& e) {
      EMUTILE_WARN("reattach: resubmit of archived " << id
                   << " failed: " << e.what());
    }
  }
}

AdaptiveRoundExecutor make_adaptive_executor(SessionService& service,
                                             int priority) {
  return [&service, priority](const CampaignSpec& spec, std::size_t round) {
    const std::string id = service.submit(
        spec, priority, "adaptive-r" + std::to_string(round));
    service.wait(id);
    const std::optional<CampaignStatus> status = service.status(id);
    EMUTILE_CHECK(status.has_value(),
                  "adaptive round " << round << ": campaign '" << id
                                    << "' vanished from the service");
    EMUTILE_CHECK(status->state == CampaignState::kFinished,
                  "adaptive round " << round << ": campaign '" << id
                                    << "' ended " << to_string(status->state)
                                    << (status->error.empty() ? "" : ": ")
                                    << status->error);
    return load_campaign_report_file(status->out_dir / "report.shard");
  };
}

}  // namespace emutile
