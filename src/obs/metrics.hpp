#pragma once
/// \file metrics.hpp
/// Process-wide observability: a lock-striped registry of named counters,
/// gauges, and log-bucketed latency histograms.
///
/// Design constraints, in order:
///   record is O(1) and lock-free   every hot-path operation (counter add,
///                                  gauge set, histogram record) is a relaxed
///                                  atomic on a pre-resolved handle — workers
///                                  never contend on a registry lock while
///                                  recording
///   lookups are striped            metric resolution (name -> handle) takes
///                                  one of kStripes mutexes chosen by name
///                                  hash, so concurrent first-touch lookups
///                                  from many threads spread instead of
///                                  serializing
///   handles are stable             a Counter&/Gauge&/Histogram& stays valid
///                                  for the registry's lifetime (metrics are
///                                  never erased; reset() zeroes values), so
///                                  call sites may cache references
///   snapshots are mergeable        MetricsSnapshot round-trips exactly
///                                  through the text exposition (all values
///                                  integral), and merge() adds counters and
///                                  bucket counts — a fleet-merged snapshot
///                                  equals the sum of its instance snapshots,
///                                  the same contract CampaignReport::merge
///                                  keeps for shard reports
///   recording can be compiled out  building with EMUTILE_METRICS_DISABLED
///                                  turns every record operation into a
///                                  no-op; deterministic artifacts are
///                                  byte-identical either way because
///                                  metrics never feed the report emitters
///
/// The histogram is the cheap log-scale kind (cf. joernblog histogram.c):
/// values 0..7 get exact buckets, larger values land in one of 8 sub-buckets
/// per power of two, so a bucket's width is 1/8 of its magnitude and any
/// quantile read off the buckets is within ~6% of the exact order statistic
/// — plenty for latency percentiles, at 8 bytes a bucket and an O(1),
/// branch-light record.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace emutile {

// ---- recording primitives --------------------------------------------------

/// Monotonically increasing event count.
class MetricCounter {
 public:
  void add(std::uint64_t delta = 1) {
#ifndef EMUTILE_METRICS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    static_cast<void>(delta);
#endif
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight campaigns). Signed: concurrent
/// add/sub pairs may transiently dip below the level a sequential observer
/// would see.
class MetricGauge {
 public:
  void set(std::int64_t v) {
#ifndef EMUTILE_METRICS_DISABLED
    value_.store(v, std::memory_order_relaxed);
#else
    static_cast<void>(v);
#endif
  }
  void add(std::int64_t delta = 1) {
#ifndef EMUTILE_METRICS_DISABLED
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    static_cast<void>(delta);
#endif
  }
  void sub(std::int64_t delta = 1) { add(-delta); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed distribution of non-negative integer samples (microseconds,
/// work units, depths). O(1) lock-free record; exact count/sum/min/max;
/// quantiles read from the buckets with bounded relative error (bucket width
/// is 1/8 of the value's magnitude).
class MetricHistogram {
 public:
  /// 3 mantissa bits -> 8 sub-buckets per power of two.
  static constexpr std::uint32_t kSubBits = 3;
  static constexpr std::uint32_t kNumBuckets =
      ((64 - kSubBits + 1) << kSubBits);  // index of 2^63's top bucket + 1

  /// Bucket index of `v`: exact below 8, (exponent, top-3-mantissa-bits)
  /// above. Adjacent values share or neighbor buckets; indices are dense.
  [[nodiscard]] static std::uint32_t bucket_index(std::uint64_t v) {
    if (v < (1ull << kSubBits)) return static_cast<std::uint32_t>(v);
    const auto msb = static_cast<std::uint32_t>(63 - __builtin_clzll(v));
    const auto sub = static_cast<std::uint32_t>(
        (v >> (msb - kSubBits)) & ((1ull << kSubBits) - 1));
    return ((msb - kSubBits + 1) << kSubBits) | sub;
  }

  /// Inclusive value range [lower, upper] covered by bucket `index`.
  static void bucket_bounds(std::uint32_t index, std::uint64_t& lower,
                            std::uint64_t& upper) {
    if (index < (1u << kSubBits)) {
      lower = upper = index;
      return;
    }
    const std::uint32_t msb = (index >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = index & ((1u << kSubBits) - 1);
    const std::uint64_t width = 1ull << (msb - kSubBits);
    lower = (1ull << msb) + sub * width;
    upper = lower + width - 1;
  }

  void record(std::uint64_t v) {
#ifndef EMUTILE_METRICS_DISABLED
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    atomic_min(min_, v);
    atomic_max(max_, v);
#else
    static_cast<void>(v);
#endif
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const {
    const std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == kEmptyMin ? 0 : v;
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }

  /// Value at quantile `q` in [0, 1] (bucket midpoint; 0 when empty).
  /// Within ~6% relative error of the exact order statistic.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  void reset();

  /// Raw bucket counts (index, count), sparse, for snapshotting.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>>
  nonzero_buckets() const;

 private:
  static constexpr std::uint64_t kEmptyMin = ~0ull;
  static void atomic_min(std::atomic<std::uint64_t>& target,
                         std::uint64_t v) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (v < cur &&
           !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& target,
                         std::uint64_t v) {
    std::uint64_t cur = target.load(std::memory_order_relaxed);
    while (v > cur &&
           !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

/// RAII latency probe: records elapsed microseconds into a histogram when it
/// leaves scope. `dismiss()` drops the measurement (e.g. uninteresting path).
class ScopedLatency {
 public:
  explicit ScopedLatency(MetricHistogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    hist_->record(us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count()));
  }
  void dismiss() { hist_ = nullptr; }

 private:
  MetricHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// ---- snapshots (the wire/merge form) ---------------------------------------

/// Point-in-time copy of one histogram, sparse, integral throughout — the
/// text exposition round-trips it exactly, so merged snapshots equal sums.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< meaningful iff count > 0
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< sorted

  [[nodiscard]] std::uint64_t quantile(double q) const;
  void merge(const HistogramSnapshot& other);
};

/// Everything a registry knows, sorted by name (stable exposition order).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Add `other` into this snapshot: counters/gauges/bucket counts add,
  /// min/max combine. The fleet-merge primitive.
  void merge(const MetricsSnapshot& other);

  /// Stable text exposition, one series per line:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   hist <name> count=<n> sum=<s> min=<m> max=<M> p50=<v> p90=<v>
  ///        p99=<v> buckets=<i>:<c>,<i>:<c>,...
  /// The pNN fields are derived (informational); parse_metrics_text reads
  /// them back from the buckets, so round-trips are exact.
  [[nodiscard]] std::string to_text() const;

  /// The same content as JSON (percentiles included per histogram).
  [[nodiscard]] std::string to_json() const;
};

/// Parse the to_text() exposition back into a snapshot. Throws CheckError on
/// malformed input. parse(to_text(s)) == s field-for-field.
[[nodiscard]] MetricsSnapshot parse_metrics_text(const std::string& text);

// ---- the registry ----------------------------------------------------------

/// Named metrics, created on first touch, addresses stable forever. Lookup
/// is striped by name hash; each stripe has its own mutex and maps, so
/// first-touch resolution from many threads rarely collides. Recording on a
/// resolved handle never takes a lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] MetricCounter& counter(std::string_view name);
  [[nodiscard]] MetricGauge& gauge(std::string_view name);
  [[nodiscard]] MetricHistogram& histogram(std::string_view name);

  /// Copy every metric into a mergeable snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every value (handles stay valid). For tests and benches.
  void reset();

  /// The process-wide registry every subsystem records into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<MetricCounter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<MetricGauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<MetricHistogram>, std::less<>>
        histograms;
  };
  [[nodiscard]] Stripe& stripe_for(std::string_view name) {
    return stripes_[std::hash<std::string_view>{}(name) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace emutile
