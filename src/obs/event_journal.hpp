#pragma once
/// \file event_journal.hpp
/// Append-only JSONL event journal for one campaign (or one orchestration
/// run): submit/schedule/session-start/cache-hit/retry/finalize records with
/// monotonic timestamps, written to `out/<id>/events.jsonl`.
///
/// Record schema (v1): every line carries `"schema":1`, the monotonic
/// `"t_us"` stamp, a `"trace_id"` (16-hex trace id when the campaign is
/// traced, "" otherwise — joins journal lines against trace.json spans),
/// the `"campaign"` id, the `"event"` name, then event-specific fields.
///
/// The journal is an *audit* artifact, deliberately separate from the
/// deterministic report/CSV/JSON emitters: timestamps are wall-progression
/// data and must never leak into artifacts that two identical runs are
/// expected to reproduce byte-for-byte (the same rule CampaignReport keeps
/// for its wall-clock fields). Each record is one JSON object on one line,
/// written with a single stream write under a mutex so concurrent session
/// workers never interleave. Journal failures (disk full, unwritable dir)
/// are swallowed: observability must never take down the campaign it is
/// observing.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace emutile {

/// Microseconds since the process-wide steady epoch (first use). Monotonic
/// within a process; journal readers order and diff, they don't cross-host
/// correlate.
[[nodiscard]] std::uint64_t journal_now_us();

class EventJournal {
 public:
  /// Field value: either a JSON string (quoted on write) or a raw number /
  /// literal emitted verbatim.
  struct Field {
    std::string_view key;
    std::string value;
    bool raw = false;
    Field(std::string_view k, std::string_view v)
        : key(k), value(v), raw(false) {}
    Field(std::string_view k, const char* v) : key(k), value(v), raw(false) {}
    Field(std::string_view k, std::uint64_t v)
        : key(k), value(std::to_string(v)), raw(true) {}
    Field(std::string_view k, std::int64_t v)
        : key(k), value(std::to_string(v)), raw(true) {}
    Field(std::string_view k, int v)
        : key(k), value(std::to_string(v)), raw(true) {}
  };

  /// Opens (appends to) `path`, creating parent directories. A journal that
  /// fails to open becomes inert rather than throwing. `trace_hex` is the
  /// 16-hex trace id stamped onto every record ("" when untraced).
  EventJournal(const std::filesystem::path& path, std::string campaign_id,
               std::string trace_hex = "");

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Append `{"schema":1,"t_us":N,"trace_id":"...","campaign":"...",
  /// "event":"...", <fields>...}` as one line with a single flushed write.
  /// Never throws.
  void record(std::string_view event, std::initializer_list<Field> fields = {});

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::string campaign_id_;
  std::string trace_hex_;
  std::mutex mutex_;
  std::ofstream out_;
  bool ok_ = false;
};

}  // namespace emutile
