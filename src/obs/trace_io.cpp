#include "obs/trace_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace emutile {

namespace {

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

std::uint64_t parse_hex_field(const std::string& token, std::string_view key,
                              const std::string& line) {
  const std::string prefix = std::string(key) + "=";
  EMUTILE_CHECK(token.rfind(prefix, 0) == 0,
                "trace: expected " << key << "= in: " << line);
  const std::string digits = token.substr(prefix.size());
  EMUTILE_CHECK(digits.size() == 16, "trace: bad hex width in: " << line);
  std::uint64_t v = 0;
  for (const char c : digits) {
    EMUTILE_CHECK((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'),
                  "trace: bad hex digit in: " << line);
    v = (v << 4) |
        static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return v;
}

std::uint64_t parse_u64_field(const std::string& token, std::string_view key,
                              const std::string& line) {
  const std::string prefix = std::string(key) + "=";
  EMUTILE_CHECK(token.rfind(prefix, 0) == 0,
                "trace: expected " << key << "= in: " << line);
  const std::string digits = token.substr(prefix.size());
  EMUTILE_CHECK(!digits.empty(), "trace: empty " << key << " in: " << line);
  for (const char c : digits)
    EMUTILE_CHECK(c >= '0' && c <= '9',
                  "trace: non-numeric " << key << " in: " << line);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  EMUTILE_CHECK(errno != ERANGE && end == digits.c_str() + digits.size(),
                "trace: " << key << " out of range in: " << line);
  return static_cast<std::uint64_t>(v);
}

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string trace_spans_to_text(const std::vector<TraceSpan>& spans) {
  std::ostringstream os;
  os << "emutile-trace v1\n";
  for (const TraceSpan& span : spans) {
    EMUTILE_CHECK(!span.name.empty() &&
                      span.name.find_first_of(" \t\n\r") == std::string::npos,
                  "trace: span name not wire-safe: '" << span.name << "'");
    os << "span " << span.name << " trace=" << u64_hex(span.trace_id)
       << " span=" << u64_hex(span.span_id)
       << " parent=" << u64_hex(span.parent_id)
       << " start_us=" << span.start_us << " dur_us=" << span.dur_us
       << " pid=" << span.pid << " tid=" << span.tid
       << " open=" << (span.open ? 1 : 0) << "\n";
  }
  os << "end\n";
  return os.str();
}

std::vector<TraceSpan> parse_trace_spans_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  EMUTILE_CHECK(std::getline(in, line) && line == "emutile-trace v1",
                "trace: missing header");
  std::vector<TraceSpan> spans;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string kind, token;
    ls >> kind;
    EMUTILE_CHECK(kind == "span", "trace: unknown record in: " << line);
    TraceSpan span;
    EMUTILE_CHECK(static_cast<bool>(ls >> span.name),
                  "trace: truncated span line: " << line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.trace_id = parse_hex_field(token, "trace", line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.span_id = parse_hex_field(token, "span", line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.parent_id = parse_hex_field(token, "parent", line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.start_us = parse_u64_field(token, "start_us", line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.dur_us = parse_u64_field(token, "dur_us", line);
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.pid = static_cast<std::uint32_t>(parse_u64_field(token, "pid", line));
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    span.tid = static_cast<std::uint32_t>(parse_u64_field(token, "tid", line));
    EMUTILE_CHECK(static_cast<bool>(ls >> token),
                  "trace: truncated span line: " << line);
    const std::uint64_t open = parse_u64_field(token, "open", line);
    EMUTILE_CHECK(open <= 1, "trace: bad open flag in: " << line);
    span.open = open == 1;
    EMUTILE_CHECK(!(ls >> token), "trace: trailing token in: " << line);
    EMUTILE_CHECK(span.trace_id != 0 && span.span_id != 0,
                  "trace: zero id in: " << line);
    spans.push_back(std::move(span));
  }
  EMUTILE_CHECK(saw_end, "trace: missing end marker");
  // Anything after the end marker means the framing is off (a TRACESPANS
  // reply whose span count disagreed with the payload, say) — reject rather
  // than silently drop it.
  while (std::getline(in, line))
    EMUTILE_CHECK(line.empty(), "trace: content after end marker: " << line);
  return spans;
}

std::string trace_events_json(const std::vector<TraceSpan>& spans) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (span.open) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    append_json_string(os, span.name);
    os << ",\"cat\":\"emutile\",\"ph\":\"X\",\"ts\":" << span.start_us
       << ",\"dur\":" << span.dur_us << ",\"pid\":" << span.pid
       << ",\"tid\":" << span.tid << ",\"args\":{\"trace\":\""
       << u64_hex(span.trace_id) << "\",\"span\":\"" << u64_hex(span.span_id)
       << "\",\"parent\":\"" << u64_hex(span.parent_id) << "\"}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void shift_spans(std::vector<TraceSpan>& spans, std::int64_t offset_us) {
  for (TraceSpan& span : spans) {
    const auto start = static_cast<std::int64_t>(span.start_us) + offset_us;
    span.start_us = start < 0 ? 0 : static_cast<std::uint64_t>(start);
  }
}

std::vector<TraceSpan> dedup_spans(std::vector<TraceSpan> spans) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<TraceSpan> out;
  out.reserve(spans.size());
  for (TraceSpan& span : spans)
    if (seen.insert(span.span_id).second) out.push_back(std::move(span));
  return out;
}

}  // namespace emutile
