#pragma once
/// \file trace_io.hpp
/// Serialization for TraceSpan collections, in two shapes:
///
///   wire text  the TRACESPANS reply body — line-oriented like the metrics
///              exposition, round-trips exactly:
///                emutile-trace v1
///                span <name> trace=<hex16> span=<hex16> parent=<hex16>
///                     start_us=<N> dur_us=<N> pid=<N> tid=<N> open=<0|1>
///                end
///              (one `span` line per span; names carry no whitespace)
///
///   Chrome trace-event JSON  what `out/<id>/trace.json` and the fleet's
///              `fleet_trace.json` hold — complete ("ph":"X") events that
///              load directly in Perfetto / chrome://tracing. Only closed
///              spans are exported; an open span has no defensible `dur`.
///
/// Plus the small span-algebra the coordinator's stitcher needs: shifting a
/// remote instance's spans onto the local clock and deduplicating by span id
/// (re-dispatches and in-process test fleets can surface one span twice).

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace emutile {

/// Wire text for a span collection. Throws CheckError if a span name
/// contains whitespace or newlines (names are code-controlled; a violation
/// is a bug, not bad input).
[[nodiscard]] std::string trace_spans_to_text(
    const std::vector<TraceSpan>& spans);

/// Parse the wire text back. Throws CheckError on malformed input.
/// parse(to_text(s)) == s field-for-field.
[[nodiscard]] std::vector<TraceSpan> parse_trace_spans_text(
    const std::string& text);

/// Chrome trace-event JSON (the `{"traceEvents":[...]}` object form).
/// Open spans are skipped.
[[nodiscard]] std::string trace_events_json(
    const std::vector<TraceSpan>& spans);

/// Shift every span's start by `offset_us` (clock-offset correction),
/// clamping at 0.
void shift_spans(std::vector<TraceSpan>& spans, std::int64_t offset_us);

/// Keep the first occurrence of each span id, preserving order.
[[nodiscard]] std::vector<TraceSpan> dedup_spans(std::vector<TraceSpan> spans);

}  // namespace emutile
