#include "obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

// ---- MetricHistogram -------------------------------------------------------

std::uint64_t MetricHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the order statistic we want (1-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      std::uint64_t lower = 0, upper = 0;
      bucket_bounds(i, lower, upper);
      return lower + (upper - lower) / 2;
    }
  }
  return max();
}

void MetricHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
MetricHistogram::nonzero_buckets() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

// ---- HistogramSnapshot -----------------------------------------------------

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (const auto& [index, c] : buckets) {
    seen += c;
    if (seen >= rank) {
      std::uint64_t lower = 0, upper = 0;
      MetricHistogram::bucket_bounds(index, lower, upper);
      return lower + (upper - lower) / 2;
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Both bucket lists are sorted by index; merge like sorted sequences.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

// ---- MetricsSnapshot -------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms)
    histograms[name].merge(hist);
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters)
    os << "counter " << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges)
    os << "gauge " << name << ' ' << value << '\n';
  for (const auto& [name, h] : histograms) {
    os << "hist " << name << " count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << " p50=" << h.quantile(0.50)
       << " p90=" << h.quantile(0.90) << " p99=" << h.quantile(0.99)
       << " buckets=";
    bool first = true;
    for (const auto& [index, c] : h.buckets) {
      if (!first) os << ',';
      first = false;
      os << index << ':' << c;
    }
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"p50\": " << h.quantile(0.50)
       << ", \"p90\": " << h.quantile(0.90) << ", \"p99\": " << h.quantile(0.99)
       << ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [index, c] : h.buckets) {
      os << (bfirst ? "" : ", ") << '[' << index << ", " << c << ']';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsSnapshot parse_metrics_text(const std::string& text) {
  MetricsSnapshot snap;
  std::istringstream in(text);
  std::string line;
  const auto keyed = [](const std::string& token, const char* key) {
    const std::size_t klen = std::strlen(key);
    EMUTILE_CHECK(token.compare(0, klen, key) == 0 && token.size() > klen &&
                      token[klen] == '=',
                  "metrics line: expected '" << key << "=...', got '" << token
                                             << "'");
    return std::stoull(token.substr(klen + 1));
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind, name;
    ls >> kind >> name;
    EMUTILE_CHECK(!name.empty(), "metrics line missing a name: " << line);
    if (kind == "counter") {
      std::uint64_t value = 0;
      ls >> value;
      EMUTILE_CHECK(!ls.fail(), "bad counter line: " << line);
      snap.counters[name] += value;
    } else if (kind == "gauge") {
      std::int64_t value = 0;
      ls >> value;
      EMUTILE_CHECK(!ls.fail(), "bad gauge line: " << line);
      snap.gauges[name] += value;
    } else if (kind == "hist") {
      HistogramSnapshot h;
      std::string tok;
      ls >> tok;
      h.count = keyed(tok, "count");
      ls >> tok;
      h.sum = keyed(tok, "sum");
      ls >> tok;
      h.min = keyed(tok, "min");
      ls >> tok;
      h.max = keyed(tok, "max");
      ls >> tok >> tok >> tok;  // p50/p90/p99: derived, recomputed on demand
      ls >> tok;
      EMUTILE_CHECK(tok.rfind("buckets=", 0) == 0,
                    "hist line missing buckets=: " << line);
      std::string list = tok.substr(std::strlen("buckets="));
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t colon = list.find(':', pos);
        EMUTILE_CHECK(colon != std::string::npos,
                      "bad bucket entry in: " << line);
        std::size_t comma = list.find(',', colon);
        if (comma == std::string::npos) comma = list.size();
        const auto index = static_cast<std::uint32_t>(
            std::stoul(list.substr(pos, colon - pos)));
        const std::uint64_t c =
            std::stoull(list.substr(colon + 1, comma - colon - 1));
        h.buckets.emplace_back(index, c);
        pos = comma + 1;
      }
      snap.histograms[name].merge(h);
    } else {
      EMUTILE_CHECK(false, "unknown metrics line kind: " << kind);
    }
  }
  return snap;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    it = s.counters
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  return *it->second;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    it = s.gauges.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters) snap.counters[name] = c->value();
    for (const auto& [name, g] : s.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : s.histograms) {
      HistogramSnapshot& hs = snap.histograms[name];
      hs.buckets = h->nonzero_buckets();
      hs.count = h->count();
      hs.sum = h->sum();
      hs.min = h->min();
      hs.max = h->max();
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto& [name, c] : s.counters) c->reset();
    for (auto& [name, g] : s.gauges) g->reset();
    for (auto& [name, h] : s.histograms) h->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace emutile
