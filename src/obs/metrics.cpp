#include "obs/metrics.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

// ---- MetricHistogram -------------------------------------------------------

std::uint64_t MetricHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the order statistic we want (1-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      std::uint64_t lower = 0, upper = 0;
      bucket_bounds(i, lower, upper);
      return lower + (upper - lower) / 2;
    }
  }
  return max();
}

void MetricHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
MetricHistogram::nonzero_buckets() const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(i, c);
  }
  return out;
}

// ---- HistogramSnapshot -----------------------------------------------------

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (const auto& [index, c] : buckets) {
    seen += c;
    if (seen >= rank) {
      std::uint64_t lower = 0, upper = 0;
      MetricHistogram::bucket_bounds(index, lower, upper);
      return lower + (upper - lower) / 2;
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  min = count == 0 ? other.min : std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Both bucket lists are sorted by index; merge like sorted sequences.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

// ---- MetricsSnapshot -------------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms)
    histograms[name].merge(hist);
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters)
    os << "counter " << name << ' ' << value << '\n';
  for (const auto& [name, value] : gauges)
    os << "gauge " << name << ' ' << value << '\n';
  for (const auto& [name, h] : histograms) {
    os << "hist " << name << " count=" << h.count << " sum=" << h.sum
       << " min=" << h.min << " max=" << h.max << " p50=" << h.quantile(0.50)
       << " p90=" << h.quantile(0.90) << " p99=" << h.quantile(0.99)
       << " buckets=";
    bool first = true;
    for (const auto& [index, c] : h.buckets) {
      if (!first) os << ',';
      first = false;
      os << index << ':' << c;
    }
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"p50\": " << h.quantile(0.50)
       << ", \"p90\": " << h.quantile(0.90) << ", \"p99\": " << h.quantile(0.99)
       << ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [index, c] : h.buckets) {
      os << (bfirst ? "" : ", ") << '[' << index << ", " << c << ']';
      bfirst = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

namespace {

/// Strict decimal u64: digits only, full consume, overflow rejected. The
/// wire exposition may arrive corrupted from a peer, so every numeric field
/// goes through this instead of std::stoull (which throws std::out_of_range
/// / std::invalid_argument outside the CheckError contract).
std::uint64_t parse_u64_strict(const std::string& digits,
                               const std::string& line) {
  EMUTILE_CHECK(!digits.empty(), "empty number in metrics line: " << line);
  for (const char c : digits)
    EMUTILE_CHECK(c >= '0' && c <= '9',
                  "non-numeric value in metrics line: " << line);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  EMUTILE_CHECK(errno != ERANGE && end == digits.c_str() + digits.size(),
                "overflowing value in metrics line: " << line);
  return static_cast<std::uint64_t>(v);
}

}  // namespace

MetricsSnapshot parse_metrics_text(const std::string& text) {
  MetricsSnapshot snap;
  std::istringstream in(text);
  std::string line;
  const auto keyed = [](const std::string& token, const char* key,
                        const std::string& line) {
    const std::size_t klen = std::strlen(key);
    EMUTILE_CHECK(token.compare(0, klen, key) == 0 && token.size() > klen &&
                      token[klen] == '=',
                  "metrics line: expected '" << key << "=...', got '" << token
                                             << "'");
    return parse_u64_strict(token.substr(klen + 1), line);
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind, name;
    ls >> kind >> name;
    EMUTILE_CHECK(!name.empty(), "metrics line missing a name: " << line);
    std::string tok;
    if (kind == "counter") {
      // Read the value as a token, not via istream's uint64 extraction: the
      // stream form silently wraps "-5" to 2^64-5 instead of rejecting it.
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated counter line: " << line);
      const std::uint64_t value = parse_u64_strict(tok, line);
      EMUTILE_CHECK(!(ls >> tok), "trailing token in counter line: " << line);
      EMUTILE_CHECK(snap.counters.emplace(name, value).second,
                    "duplicate counter series: " << name);
    } else if (kind == "gauge") {
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated gauge line: " << line);
      const bool negative = tok[0] == '-';
      const std::uint64_t magnitude =
          parse_u64_strict(negative ? tok.substr(1) : tok, line);
      EMUTILE_CHECK(magnitude <= static_cast<std::uint64_t>(
                                     std::numeric_limits<std::int64_t>::max()),
                    "overflowing gauge value in: " << line);
      const auto value = negative ? -static_cast<std::int64_t>(magnitude)
                                  : static_cast<std::int64_t>(magnitude);
      EMUTILE_CHECK(!(ls >> tok), "trailing token in gauge line: " << line);
      EMUTILE_CHECK(snap.gauges.emplace(name, value).second,
                    "duplicate gauge series: " << name);
    } else if (kind == "hist") {
      HistogramSnapshot h;
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated hist line: " << line);
      h.count = keyed(tok, "count", line);
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated hist line: " << line);
      h.sum = keyed(tok, "sum", line);
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated hist line: " << line);
      h.min = keyed(tok, "min", line);
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated hist line: " << line);
      h.max = keyed(tok, "max", line);
      // p50/p90/p99 are derived (recomputed from the buckets on demand) but
      // their presence is part of the format — a missing one means the line
      // was truncated, not that the field was optional.
      for (const char* q : {"p50", "p90", "p99"}) {
        EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                      "truncated hist line: " << line);
        static_cast<void>(keyed(tok, q, line));
      }
      EMUTILE_CHECK(static_cast<bool>(ls >> tok),
                    "truncated hist line: " << line);
      EMUTILE_CHECK(tok.rfind("buckets=", 0) == 0,
                    "hist line missing buckets=: " << line);
      std::string list = tok.substr(std::strlen("buckets="));
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t colon = list.find(':', pos);
        EMUTILE_CHECK(colon != std::string::npos,
                      "bad bucket entry in: " << line);
        std::size_t comma = list.find(',', colon);
        if (comma == std::string::npos) comma = list.size();
        const std::uint64_t wide =
            parse_u64_strict(list.substr(pos, colon - pos), line);
        // An out-of-range index would hit undefined shifts in bucket_bounds
        // when a quantile is later read off the snapshot.
        EMUTILE_CHECK(wide < MetricHistogram::kNumBuckets,
                      "bucket index out of range in: " << line);
        const auto index = static_cast<std::uint32_t>(wide);
        const std::uint64_t c =
            parse_u64_strict(list.substr(colon + 1, comma - colon - 1), line);
        EMUTILE_CHECK(h.buckets.empty() || index > h.buckets.back().first,
                      "bucket indices not ascending in: " << line);
        h.buckets.emplace_back(index, c);
        pos = comma + 1;
      }
      // (No bucket-sum == count cross-check: a snapshot taken while
      // recorders are mid-flight is transiently skewed — relaxed atomics —
      // and the live console parses exactly such snapshots.)
      EMUTILE_CHECK(!(ls >> tok), "trailing token in hist line: " << line);
      EMUTILE_CHECK(snap.histograms.emplace(name, std::move(h)).second,
                    "duplicate hist series: " << name);
    } else {
      EMUTILE_CHECK(false, "unknown metrics line kind: " << kind);
    }
  }
  return snap;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.counters.find(name);
  if (it == s.counters.end())
    it = s.counters
             .emplace(std::string(name), std::make_unique<MetricCounter>())
             .first;
  return *it->second;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.gauges.find(name);
  if (it == s.gauges.end())
    it = s.gauges.emplace(std::string(name), std::make_unique<MetricGauge>())
             .first;
  return *it->second;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  Stripe& s = stripe_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.histograms.find(name);
  if (it == s.histograms.end())
    it = s.histograms
             .emplace(std::string(name), std::make_unique<MetricHistogram>())
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, c] : s.counters) snap.counters[name] = c->value();
    for (const auto& [name, g] : s.gauges) snap.gauges[name] = g->value();
    for (const auto& [name, h] : s.histograms) {
      HistogramSnapshot& hs = snap.histograms[name];
      hs.buckets = h->nonzero_buckets();
      hs.count = h->count();
      hs.sum = h->sum();
      hs.min = h->min();
      hs.max = h->max();
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (auto& [name, c] : s.counters) c->reset();
    for (auto& [name, g] : s.gauges) g->reset();
    for (auto& [name, h] : s.histograms) h->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace emutile
