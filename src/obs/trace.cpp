#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <random>

#include "obs/event_journal.hpp"

namespace emutile {

namespace {

/// splitmix64 — the same bijective mixer the seed-derivation layer uses:
/// distinct inputs give distinct, well-spread 64-bit ids.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf, 16);
}

std::optional<std::uint64_t> parse_u64_hex(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else
      return std::nullopt;
    v = (v << 4) | digit;
  }
  return v;
}

/// Small dense per-thread index: stable for the thread's lifetime, reused
/// nowhere, and a far better Perfetto track id than the opaque OS tid.
std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// The per-thread active-span stack. Frames are owner-tagged so private
/// test tracers and the global tracer can interleave on one thread without
/// seeing each other's spans as parents.
struct Frame {
  const Tracer* owner = nullptr;
  TraceContext ctx;
};
thread_local std::vector<Frame> t_span_stack;

}  // namespace

std::string format_traceparent(TraceContext ctx) {
  return u64_hex(ctx.trace_id) + "-" + u64_hex(ctx.span_id);
}

std::optional<TraceContext> parse_traceparent(std::string_view text) {
  if (text.size() != 33 || text[16] != '-') return std::nullopt;
  const auto trace = parse_u64_hex(text.substr(0, 16));
  const auto span = parse_u64_hex(text.substr(17));
  if (!trace || !span || *trace == 0) return std::nullopt;
  return TraceContext{*trace, *span};
}

Tracer::Tracer()
    : seed_(std::random_device{}()),
      pid_(static_cast<std::uint32_t>(::getpid())) {
  seed_ = splitmix64((seed_ << 32) ^ std::random_device{}());
}

std::uint64_t Tracer::fresh_id() {
  std::uint64_t id = 0;
  while (id == 0)
    id = splitmix64(seed_ + counter_.fetch_add(1, std::memory_order_relaxed));
  return id;
}

std::uint32_t Tracer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(std::string(name), id);
  return id;
}

Tracer::Stripe& Tracer::stripe_here() {
  return stripes_[thread_index() % kStripes];
}

TraceContext Tracer::mint_trace() {
  if (!enabled()) return {};
  return TraceContext{fresh_id(), 0};
}

TraceContext Tracer::child_context(TraceContext parent) {
  if (!enabled()) return {};
  return TraceContext{parent.valid() ? parent.trace_id : fresh_id(),
                      fresh_id()};
}

void Tracer::record_span(std::string_view name, TraceContext ctx,
                         std::uint64_t parent_span, std::uint64_t start_us,
                         std::uint64_t dur_us) {
  if (!enabled() || !ctx.valid()) return;
  RawSpan raw;
  raw.name = intern(name);
  raw.trace_id = ctx.trace_id;
  raw.span_id = ctx.span_id;
  raw.parent_id = parent_span;
  raw.start_us = start_us;
  raw.dur_us = dur_us;
  raw.tid = thread_index();
  Stripe& stripe = stripe_here();
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (stripe.finished.size() < kRingCapacity) {
    stripe.finished.push_back(raw);
  } else {
    stripe.finished[stripe.cursor] = raw;
    stripe.cursor = (stripe.cursor + 1) % kRingCapacity;
    ++stripe.dropped;
  }
}

TraceContext Tracer::current() const {
  if (!enabled()) return {};
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it)
    if (it->owner == this) return it->ctx;
  return {};
}

TraceContext Tracer::begin(std::string_view name, TraceContext parent) {
  const TraceContext ctx = child_context(parent);
  OpenSpan open;
  open.name = intern(name);
  open.trace_id = ctx.trace_id;
  open.span_id = ctx.span_id;
  open.parent_id = parent.valid() ? parent.span_id : 0;
  open.start_us = journal_now_us();
  open.tid = thread_index();
  t_span_stack.push_back(Frame{this, ctx});
  Stripe& stripe = stripe_here();
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.open.push_back(open);
  return ctx;
}

void Tracer::finish() {
  // ScopedSpan scopes nest, so the innermost frame owned by this tracer is
  // the one finishing; frames above it (if any) belong to other tracers and
  // are never popped here.
  TraceContext ctx;
  for (auto it = t_span_stack.rbegin(); it != t_span_stack.rend(); ++it) {
    if (it->owner == this) {
      ctx = it->ctx;
      t_span_stack.erase(std::next(it).base());
      break;
    }
  }
  if (!ctx.valid()) return;
  const std::uint64_t now = journal_now_us();
  Stripe& stripe = stripe_here();
  std::lock_guard<std::mutex> lock(stripe.mutex);
  // The open entry lives in this thread's stripe; search newest-first.
  for (auto it = stripe.open.rbegin(); it != stripe.open.rend(); ++it) {
    if (it->span_id != ctx.span_id) continue;
    RawSpan raw;
    raw.name = it->name;
    raw.trace_id = it->trace_id;
    raw.span_id = it->span_id;
    raw.parent_id = it->parent_id;
    raw.start_us = it->start_us;
    raw.dur_us = now >= it->start_us ? now - it->start_us : 0;
    raw.tid = it->tid;
    stripe.open.erase(std::next(it).base());
    if (stripe.finished.size() < kRingCapacity) {
      stripe.finished.push_back(raw);
    } else {
      stripe.finished[stripe.cursor] = raw;
      stripe.cursor = (stripe.cursor + 1) % kRingCapacity;
      ++stripe.dropped;
    }
    return;
  }
  // reset() raced the span away; nothing left to record.
}

std::vector<TraceSpan> Tracer::collect(bool include_open) const {
  std::vector<TraceSpan> out;
  if (!enabled()) return out;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    names = names_;
  }
  const auto resolve = [&names](std::uint32_t id) {
    return id < names.size() ? names[id] : std::string("?");
  };
  const std::uint64_t now = journal_now_us();
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (const RawSpan& raw : stripe.finished) {
      TraceSpan span;
      span.name = resolve(raw.name);
      span.trace_id = raw.trace_id;
      span.span_id = raw.span_id;
      span.parent_id = raw.parent_id;
      span.start_us = raw.start_us;
      span.dur_us = raw.dur_us;
      span.pid = pid_;
      span.tid = raw.tid;
      out.push_back(std::move(span));
    }
    if (!include_open) continue;
    for (const OpenSpan& open : stripe.open) {
      TraceSpan span;
      span.name = resolve(open.name);
      span.trace_id = open.trace_id;
      span.span_id = open.span_id;
      span.parent_id = open.parent_id;
      span.start_us = open.start_us;
      span.dur_us = now >= open.start_us ? now - open.start_us : 0;
      span.pid = pid_;
      span.tid = open.tid;
      span.open = true;
      out.push_back(std::move(span));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  return out;
}

std::vector<TraceSpan> Tracer::collect_trace(std::uint64_t trace_id,
                                             bool include_open) const {
  std::vector<TraceSpan> all = collect(include_open);
  std::vector<TraceSpan> out;
  for (TraceSpan& span : all)
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    total += stripe.dropped;
  }
  return total;
}

void Tracer::reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.finished.clear();
    stripe.cursor = 0;
    stripe.dropped = 0;
    stripe.open.clear();
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

ScopedSpan::ScopedSpan(Tracer& tracer, std::string_view name)
    : ScopedSpan(tracer, name, tracer.current()) {}

ScopedSpan::ScopedSpan(Tracer& tracer, std::string_view name,
                       TraceContext parent)
    : tracer_(&tracer) {
  if (!Tracer::enabled()) return;
  ctx_ = tracer.begin(name, parent);
}

ScopedSpan::~ScopedSpan() {
  if (!Tracer::enabled() || !ctx_.valid()) return;
  tracer_->finish();
}

}  // namespace emutile
