#pragma once
/// \file trace.hpp
/// Low-overhead distributed span tracing: who spent the time, where, on
/// behalf of which request — the causal companion to the aggregate
/// counters/histograms in metrics.hpp.
///
/// Model (the usual one): a *trace* is a tree of *spans*. Every span has a
/// 64-bit trace id (shared by the whole tree), its own 64-bit span id, a
/// parent span id (0 for roots), and a monotonic [start_us, start_us+dur_us)
/// interval on the journal_now_us() clock. Context crosses threads and
/// processes as a `TraceContext` — on the wire it is the `traceparent=`
/// key, `<trace-hex16>-<span-hex16>`.
///
/// Design constraints, in order:
///   begin/finish are cheap         one TLS stack push/pop plus one short
///                                  striped-mutex critical section appending
///                                  a POD record; names are interned once
///                                  per distinct string
///   recording never blocks readers long   collect() locks one stripe at a
///                                  time; stripes are chosen by a per-thread
///                                  index so concurrent recorders spread
///   buffers are bounded            each stripe keeps a ring of the most
///                                  recent finished spans (overwrite-oldest,
///                                  drops counted) — a long-lived daemon
///                                  cannot grow without bound
///   open spans are visible         collect() can synthesize in-flight spans
///                                  with dur = now - start, which is what
///                                  the fleet console's "slowest open spans"
///                                  view reads
///   compiled out with metrics      under EMUTILE_METRICS_DISABLED every
///                                  operation is a no-op and mint_trace()
///                                  returns the invalid context; traces are
///                                  sidecar artifacts and never feed the
///                                  deterministic report emitters, so
///                                  report bytes are identical either way
///
/// The active-span stack is thread-local and owner-tagged: a frame knows
/// which Tracer pushed it, so tests running private Tracer instances never
/// cross-talk with the global one. ScopedSpan guarantees strict LIFO per
/// thread (C++ scopes nest), which keeps pop O(1).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace emutile {

/// A position in some trace: the pair every propagation hop carries.
/// trace_id == 0 is the invalid/absent context.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// Wire form `<trace-hex16>-<span-hex16>` (e.g. the `traceparent=` value on
/// a SUBMIT line). parse returns nullopt on anything malformed or invalid.
[[nodiscard]] std::string format_traceparent(TraceContext ctx);
[[nodiscard]] std::optional<TraceContext> parse_traceparent(
    std::string_view text);

/// One finished (or snapshotted in-flight) span, name resolved.
struct TraceSpan {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for a root span
  std::uint64_t start_us = 0;   ///< journal_now_us() clock
  std::uint64_t dur_us = 0;
  std::uint32_t pid = 0;  ///< recording process (fleet traces keep tracks apart)
  std::uint32_t tid = 0;  ///< small per-process thread index, not the OS tid
  bool open = false;      ///< true when snapshotted mid-flight
};

class ScopedSpan;

/// Span recorder. All methods are thread-safe; recording methods are no-ops
/// under EMUTILE_METRICS_DISABLED.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] static constexpr bool enabled() {
#ifndef EMUTILE_METRICS_DISABLED
    return true;
#else
    return false;
#endif
  }

  /// A fresh root context: new trace id, no span yet. Invalid when tracing
  /// is compiled out.
  [[nodiscard]] TraceContext mint_trace();

  /// A context for a child span of `parent` without opening a span here —
  /// used to pre-mint ids for spans synthesized later via record_span().
  /// Adopts the parent's trace id, or starts a fresh trace when the parent
  /// is invalid.
  [[nodiscard]] TraceContext child_context(TraceContext parent);

  /// Record a fully-formed span directly (synthesized spans: queue wait
  /// reconstructed from enqueue stamps, campaign.run from the submit stamp).
  void record_span(std::string_view name, TraceContext ctx,
                   std::uint64_t parent_span, std::uint64_t start_us,
                   std::uint64_t dur_us);

  /// The innermost span this thread has open *on this tracer*, or the
  /// invalid context.
  [[nodiscard]] TraceContext current() const;

  /// Copy out every buffered span, oldest first (sorted by start_us, span id
  /// tie-break). Open spans are included with dur = now - start and
  /// open=true unless `include_open` is false.
  [[nodiscard]] std::vector<TraceSpan> collect(bool include_open = true) const;

  /// collect() filtered to one trace id.
  [[nodiscard]] std::vector<TraceSpan> collect_trace(
      std::uint64_t trace_id, bool include_open = true) const;

  /// Finished spans discarded because a stripe ring wrapped.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop every buffered span (open-span bookkeeping included). For tests.
  void reset();

  /// The process-wide tracer every subsystem records into.
  [[nodiscard]] static Tracer& global();

 private:
  friend class ScopedSpan;

  struct RawSpan {
    std::uint32_t name = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    std::uint64_t start_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t tid = 0;
  };
  struct OpenSpan {
    std::uint32_t name = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_id = 0;
    std::uint64_t start_us = 0;
    std::uint32_t tid = 0;
  };
  static constexpr std::size_t kStripes = 32;
  /// Finished spans kept per stripe before overwrite-oldest kicks in.
  static constexpr std::size_t kRingCapacity = 8192;
  struct Stripe {
    mutable std::mutex mutex;
    std::vector<RawSpan> finished;  ///< ring once full; `cursor` is the seam
    std::size_t cursor = 0;
    std::uint64_t dropped = 0;
    std::vector<OpenSpan> open;
  };

  [[nodiscard]] std::uint64_t fresh_id();
  [[nodiscard]] std::uint32_t intern(std::string_view name);
  [[nodiscard]] Stripe& stripe_here();

  /// begin/finish back ScopedSpan: push a TLS frame + an open-span entry,
  /// later pop it and append the finished record.
  TraceContext begin(std::string_view name, TraceContext parent);
  void finish();

  std::uint64_t seed_;
  std::atomic<std::uint64_t> counter_{0};
  std::uint32_t pid_;
  mutable std::mutex names_mutex_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::vector<std::string> names_;
  std::array<Stripe, kStripes> stripes_;
};

/// RAII span: opens on construction (parented on the tracer's current span,
/// or on an explicit context for cross-thread handoff), finishes on
/// destruction. `context()` is what child work — possibly on another thread
/// or host — should be parented on.
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, std::string_view name);
  ScopedSpan(Tracer& tracer, std::string_view name, TraceContext parent);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  [[nodiscard]] TraceContext context() const { return ctx_; }

 private:
  Tracer* tracer_;
  TraceContext ctx_;
};

}  // namespace emutile
