#include "obs/event_journal.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

namespace emutile {

std::uint64_t journal_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

EventJournal::EventJournal(const std::filesystem::path& path,
                           std::string campaign_id, std::string trace_hex)
    : path_(path),
      campaign_id_(std::move(campaign_id)),
      trace_hex_(std::move(trace_hex)) {
  std::error_code ec;
  if (path_.has_parent_path())
    std::filesystem::create_directories(path_.parent_path(), ec);
  out_.open(path_, std::ios::app);
  ok_ = out_.is_open();
}

void EventJournal::record(std::string_view event,
                          std::initializer_list<Field> fields) {
  if (!ok_) return;
  std::ostringstream os;
  os << "{\"schema\":1,\"t_us\":" << journal_now_us() << ",\"trace_id\":";
  append_json_string(os, trace_hex_);
  os << ",\"campaign\":";
  append_json_string(os, campaign_id_);
  os << ",\"event\":";
  append_json_string(os, event);
  for (const Field& f : fields) {
    os << ',';
    append_json_string(os, f.key);
    os << ':';
    if (f.raw) {
      os << f.value;
    } else {
      append_json_string(os, f.value);
    }
  }
  os << "}\n";
  const std::string line = os.str();
  std::lock_guard<std::mutex> lock(mutex_);
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.flush();
  if (out_.fail()) ok_ = false;  // disk trouble: go inert, never throw
}

}  // namespace emutile
