#pragma once
/// \file lut_mapper.hpp
/// Technology mapping to 4-input LUTs plus netlist clean-up passes.
///
/// Input netlists (from BLIF or the design generators) may contain LUT cells
/// of up to TruthTable::kMaxInputs inputs; the target CLB holds 4-input LUTs,
/// so wider functions are decomposed by recursive Shannon expansion with the
/// two cofactors recombined through a 2:1 mux LUT. The clean-up passes fold
/// constants into downstream functions, drop unused LUT inputs, and prune
/// logic that cannot reach a primary output — leaving a netlist the packer
/// can take straight to CLBs.

#include <cstddef>

#include "netlist/netlist.hpp"

namespace emutile {

/// Technology-mapping options.
struct MapParams {
  int lut_size = 4;  ///< target LUT arity (the XC4000 CLB has 4-input LUTs)
};

/// Statistics returned by the passes.
struct MapReport {
  std::size_t luts_decomposed = 0;  ///< wide LUTs split into trees
  std::size_t luts_created = 0;     ///< new LUTs added by decomposition
  std::size_t constants_folded = 0; ///< const-fed LUTs simplified
  std::size_t inputs_dropped = 0;   ///< vacuous LUT inputs removed
  std::size_t cells_pruned = 0;     ///< dead cells removed
};

/// Decompose every LUT wider than params.lut_size into a tree of LUTs of at
/// most that arity. Function-preserving; updates `nl` in place.
MapReport map_to_luts(Netlist& nl, const MapParams& params = {});

/// Fold constant drivers into consuming LUT functions and drop inputs the
/// function does not depend on. Repeats to fixpoint. DFFs fed by constants
/// are replaced by the constant (after-reset steady state).
MapReport fold_constants(Netlist& nl);

/// Remove cells whose output cannot reach any primary output.
MapReport prune_dead(Netlist& nl);

/// Convenience: fold, decompose, fold again, prune. The standard pipeline
/// run on every design before packing.
MapReport synthesize(Netlist& nl, const MapParams& params = {});

}  // namespace emutile
