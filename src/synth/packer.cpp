#include "synth/packer.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "netlist/netlist_ops.hpp"
#include "util/check.hpp"

namespace emutile {

const Instance& PackedDesign::inst(InstId id) const {
  EMUTILE_CHECK(id.valid() && id.value() < instances_.size(), "bad instance id");
  return instances_[id.value()];
}

std::vector<InstId> PackedDesign::live_insts() const {
  std::vector<InstId> out;
  for (std::size_t i = 0; i < instances_.size(); ++i)
    if (instances_[i].alive) out.push_back(InstId{static_cast<std::uint32_t>(i)});
  return out;
}

std::size_t PackedDesign::num_clbs() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_)
    if (inst.alive && inst.kind == InstKind::kClb) ++n;
  return n;
}

std::size_t PackedDesign::num_iobs() const {
  std::size_t n = 0;
  for (const Instance& inst : instances_)
    if (inst.alive && inst.kind != InstKind::kClb) ++n;
  return n;
}

InstId PackedDesign::inst_of_cell(CellId cell) const {
  if (!cell.valid() || cell.value() >= inst_of_cell_.size())
    return InstId::invalid();
  return inst_of_cell_[cell.value()];
}

std::pair<InstId, int> PackedDesign::source_pin(const Netlist& nl,
                                                NetId net) const {
  const CellId drv = nl.net(net).driver;
  const Cell& c = nl.cell(drv);
  const InstId id = inst_of_cell(drv);
  EMUTILE_CHECK(id.valid(), "net '" << nl.net(net).name
                                    << "' driver is not packed");
  const Instance& in = inst(id);
  switch (c.kind) {
    case CellKind::kInput: return {id, 0};
    case CellKind::kLut:
      EMUTILE_ASSERT(in.lut_f == drv || in.lut_g == drv,
                     "LUT '" << c.name << "' not in its instance's slots");
      return {id, in.lut_f == drv ? 0 : 1};
    case CellKind::kDff:
      EMUTILE_ASSERT(in.ff_f == drv || in.ff_g == drv,
                     "DFF '" << c.name << "' not in its instance's slots");
      return {id, in.ff_f == drv ? 2 : 3};
    default:
      EMUTILE_CHECK(false, "net '" << nl.net(net).name
                                   << "' driven by unroutable cell kind "
                                   << to_string(c.kind));
  }
  return {InstId::invalid(), 0};
}

std::vector<PhysNet> PackedDesign::physical_nets(const Netlist& nl) const {
  std::vector<PhysNet> nets;
  for (NetId nid : nl.live_nets()) {
    const Net& n = nl.net(nid);
    const Cell& drv = nl.cell(n.driver);
    if (drv.kind == CellKind::kConst0 || drv.kind == CellKind::kConst1)
      EMUTILE_CHECK(n.sinks.empty(),
                    "constant net '" << n.name
                                     << "' must be folded before packing");
    if (n.sinks.empty()) continue;

    PhysNet pn;
    pn.net = nid;
    std::tie(pn.src_inst, pn.src_opin) = source_pin(nl, nid);

    std::unordered_set<std::uint32_t> seen;
    for (const PinRef& pin : n.sinks) {
      const Cell& sc = nl.cell(pin.cell);
      const InstId sink_inst = inst_of_cell(pin.cell);
      EMUTILE_CHECK(sink_inst.valid(),
                    "sink cell '" << sc.name << "' is not packed");
      if (sc.kind == CellKind::kDff) {
        const Instance& si = inst(sink_inst);
        const FfSource src =
            si.ff_f == pin.cell ? si.ff_f_src : si.ff_g_src;
        if (src != FfSource::kDirect) continue;  // internal CLB feed
      }
      if (seen.insert(sink_inst.value()).second)
        pn.sink_insts.push_back(sink_inst);
    }
    if (!pn.sink_insts.empty()) nets.push_back(std::move(pn));
  }
  return nets;
}

int PackedDesign::input_net_demand(const Netlist& nl, InstId id) const {
  const Instance& in = inst(id);
  if (!in.is_clb()) return in.kind == InstKind::kIobOut ? 1 : 0;
  std::unordered_set<std::uint32_t> nets;
  auto add_lut_inputs = [&](CellId lut) {
    if (!lut.valid()) return;
    for (NetId n : nl.cell(lut).inputs) nets.insert(n.value());
  };
  add_lut_inputs(in.lut_f);
  add_lut_inputs(in.lut_g);
  auto add_direct_ff = [&](CellId ff, FfSource src) {
    if (ff.valid() && src == FfSource::kDirect)
      nets.insert(nl.cell(ff).inputs[0].value());
  };
  add_direct_ff(in.ff_f, in.ff_f_src);
  add_direct_ff(in.ff_g, in.ff_g_src);
  return static_cast<int>(nets.size());
}

InstId PackedDesign::new_clb(const std::string& name) {
  Instance in;
  in.kind = InstKind::kClb;
  in.name = name;
  const InstId id{static_cast<std::uint32_t>(instances_.size())};
  instances_.push_back(std::move(in));
  return id;
}

InstId PackedDesign::new_iob(const std::string& name, InstKind kind,
                             CellId io_cell) {
  EMUTILE_CHECK(kind != InstKind::kClb, "new_iob with CLB kind");
  Instance in;
  in.kind = kind;
  in.name = name;
  in.io_cell = io_cell;
  const InstId id{static_cast<std::uint32_t>(instances_.size())};
  instances_.push_back(std::move(in));
  bind(io_cell, id);
  return id;
}

void PackedDesign::assign_lut(InstId id, bool slot_g, CellId lut) {
  Instance& in = mutable_inst(id);
  EMUTILE_CHECK(in.is_clb(), "assign_lut to non-CLB");
  CellId& slot = slot_g ? in.lut_g : in.lut_f;
  EMUTILE_CHECK(!slot.valid(), "LUT slot already occupied in " << in.name);
  slot = lut;
  bind(lut, id);
}

void PackedDesign::assign_ff(InstId id, bool slot_g, CellId ff, FfSource src) {
  Instance& in = mutable_inst(id);
  EMUTILE_CHECK(in.is_clb(), "assign_ff to non-CLB");
  EMUTILE_CHECK(src != FfSource::kNone, "assign_ff needs a source");
  CellId& slot = slot_g ? in.ff_g : in.ff_f;
  FfSource& slot_src = slot_g ? in.ff_g_src : in.ff_f_src;
  EMUTILE_CHECK(!slot.valid(), "FF slot already occupied in " << in.name);
  if (src == FfSource::kLutF)
    EMUTILE_CHECK(in.lut_f.valid(), "FF source LutF but slot F empty");
  if (src == FfSource::kLutG)
    EMUTILE_CHECK(in.lut_g.valid(), "FF source LutG but slot G empty");
  slot = ff;
  slot_src = src;
  bind(ff, id);
}

void PackedDesign::unbind_cell(CellId cell) {
  const InstId id = inst_of_cell(cell);
  if (!id.valid()) return;
  Instance& in = mutable_inst(id);
  if (in.lut_f == cell) {
    in.lut_f = CellId::invalid();
    // A FF sourced from this LUT loses its feed; it must be rebound by the
    // caller (ECO paths delete/replace the FF alongside).
    EMUTILE_CHECK(in.ff_f_src != FfSource::kLutF,
                  "unbind LUT F while FF still registers it");
    EMUTILE_CHECK(in.ff_g_src != FfSource::kLutF,
                  "unbind LUT F while FF still registers it");
  } else if (in.lut_g == cell) {
    in.lut_g = CellId::invalid();
    EMUTILE_CHECK(in.ff_f_src != FfSource::kLutG,
                  "unbind LUT G while FF still registers it");
    EMUTILE_CHECK(in.ff_g_src != FfSource::kLutG,
                  "unbind LUT G while FF still registers it");
  } else if (in.ff_f == cell) {
    in.ff_f = CellId::invalid();
    in.ff_f_src = FfSource::kNone;
  } else if (in.ff_g == cell) {
    in.ff_g = CellId::invalid();
    in.ff_g_src = FfSource::kNone;
  } else if (in.io_cell == cell) {
    in.io_cell = CellId::invalid();
  }
  inst_of_cell_[cell.value()] = InstId::invalid();
}

void PackedDesign::remove_if_empty(InstId id) {
  Instance& in = mutable_inst(id);
  if (in.empty_clb() || (!in.is_clb() && !in.io_cell.valid())) in.alive = false;
}

void PackedDesign::validate(const Netlist& nl) const {
  std::unordered_map<std::uint32_t, std::uint32_t> owner;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& in = instances_[i];
    if (!in.alive) continue;
    auto check_slot = [&](CellId cell, CellKind want) {
      if (!cell.valid()) return;
      const Cell& c = nl.cell(cell);
      EMUTILE_ASSERT(c.alive && c.kind == want,
                     "instance '" << in.name << "' slot holds wrong cell");
      EMUTILE_ASSERT(owner.emplace(cell.value(), i).second,
                     "cell '" << c.name << "' packed twice");
      EMUTILE_ASSERT(inst_of_cell(cell).value() == i,
                     "cell '" << c.name << "' binding out of sync");
    };
    if (in.is_clb()) {
      check_slot(in.lut_f, CellKind::kLut);
      check_slot(in.lut_g, CellKind::kLut);
      check_slot(in.ff_f, CellKind::kDff);
      check_slot(in.ff_g, CellKind::kDff);
      // Internal FF feeds must match the netlist connectivity.
      auto check_feed = [&](CellId ff, FfSource src) {
        if (!ff.valid() || src == FfSource::kDirect) return;
        const CellId feeder = src == FfSource::kLutF ? in.lut_f : in.lut_g;
        EMUTILE_ASSERT(feeder.valid(), "FF internal source slot empty");
        EMUTILE_ASSERT(nl.net(nl.cell(ff).inputs[0]).driver == feeder,
                       "FF '" << nl.cell(ff).name
                              << "' internal feed does not match netlist");
      };
      check_feed(in.ff_f, in.ff_f_src);
      check_feed(in.ff_g, in.ff_g_src);
      EMUTILE_ASSERT(input_net_demand(nl, InstId{static_cast<std::uint32_t>(i)}) <=
                         ClbPinModel::kNumIpins,
                     "instance '" << in.name << "' exceeds input pins");
    } else {
      check_slot(in.io_cell, in.kind == InstKind::kIobIn ? CellKind::kInput
                                                         : CellKind::kOutput);
    }
  }
  // Every live LUT/DFF/PI/PO must be packed.
  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) continue;
    EMUTILE_ASSERT(owner.find(id.value()) != owner.end(),
                   "cell '" << c.name << "' (" << to_string(c.kind)
                            << ") is not packed");
  }
}

Instance& PackedDesign::mutable_inst(InstId id) {
  EMUTILE_CHECK(id.valid() && id.value() < instances_.size() &&
                    instances_[id.value()].alive,
                "bad or dead instance id");
  return instances_[id.value()];
}

void PackedDesign::bind(CellId cell, InstId inst) {
  if (cell.value() >= inst_of_cell_.size())
    inst_of_cell_.resize(cell.value() + 1, InstId::invalid());
  EMUTILE_CHECK(!inst_of_cell_[cell.value()].valid(),
                "cell already bound to an instance");
  inst_of_cell_[cell.value()] = inst;
}

namespace {

/// Shared-input affinity between two LUTs (higher is better).
int affinity(const Netlist& nl, CellId a, CellId b) {
  int shared = 0;
  for (NetId na : nl.cell(a).inputs)
    for (NetId nb : nl.cell(b).inputs)
      if (na == nb) ++shared;
  // Direct connection is also worth pairing for wirelength.
  int adjacent = 0;
  if (nl.cell_output(a).valid())
    for (const PinRef& pin : nl.net(nl.cell_output(a)).sinks)
      if (pin.cell == b) adjacent = 1;
  if (nl.cell_output(b).valid())
    for (const PinRef& pin : nl.net(nl.cell_output(b)).sinks)
      if (pin.cell == a) adjacent = 1;
  return shared * 2 + adjacent;
}

/// Candidate partners of a LUT: co-sinks of its input nets, its driver LUTs,
/// and its fanout LUTs.
std::vector<CellId> pairing_candidates(const Netlist& nl, CellId lut) {
  std::vector<CellId> out;
  std::unordered_set<std::uint32_t> seen{lut.value()};
  auto add = [&](CellId c) {
    if (nl.cell(c).kind == CellKind::kLut && seen.insert(c.value()).second)
      out.push_back(c);
  };
  const Cell& c = nl.cell(lut);
  for (NetId in : c.inputs) {
    add(nl.net(in).driver);
    for (const PinRef& pin : nl.net(in).sinks) add(pin.cell);
  }
  for (const PinRef& pin : nl.net(c.output).sinks) add(pin.cell);
  return out;
}

}  // namespace

PackedDesign pack(const Netlist& nl) {
  PackedDesign packed;

  // --- pair LUTs by affinity, walking in topological order ---
  const std::vector<CellId> order = topo_order_luts(nl);
  std::unordered_set<std::uint32_t> placed;
  std::vector<CellId> singles;
  int clb_counter = 0;

  for (CellId lut : order) {
    if (placed.count(lut.value())) continue;
    placed.insert(lut.value());
    CellId best;
    int best_aff = 0;
    for (CellId cand : pairing_candidates(nl, lut)) {
      if (placed.count(cand.value())) continue;
      const int a = affinity(nl, lut, cand);
      if (a > best_aff) {
        best_aff = a;
        best = cand;
      }
    }
    if (best.valid()) {
      placed.insert(best.value());
      const InstId clb = packed.new_clb("clb" + std::to_string(clb_counter++));
      packed.assign_lut(clb, false, lut);
      packed.assign_lut(clb, true, best);
    } else {
      singles.push_back(lut);
    }
  }
  // Pair leftovers consecutively (topo-adjacent LUTs are usually related).
  for (std::size_t i = 0; i < singles.size(); i += 2) {
    const InstId clb = packed.new_clb("clb" + std::to_string(clb_counter++));
    packed.assign_lut(clb, false, singles[i]);
    if (i + 1 < singles.size()) packed.assign_lut(clb, true, singles[i + 1]);
  }

  // --- flip-flops ---
  std::vector<CellId> route_through;
  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kDff) continue;
    const CellId drv = nl.net(c.inputs[0]).driver;
    const InstId drv_inst = packed.inst_of_cell(drv);
    bool done = false;
    if (nl.cell(drv).kind == CellKind::kLut && drv_inst.valid()) {
      const Instance& in = packed.inst(drv_inst);
      const FfSource src = in.lut_f == drv ? FfSource::kLutF : FfSource::kLutG;
      if (!in.ff_f.valid()) {
        packed.assign_ff(drv_inst, false, id, src);
        done = true;
      } else if (!in.ff_g.valid()) {
        packed.assign_ff(drv_inst, true, id, src);
        done = true;
      }
    }
    if (!done) route_through.push_back(id);
  }
  for (CellId ff : route_through) {
    // Prefer a CLB that consumes this FF's output (locality), else a new CLB.
    InstId target;
    for (const PinRef& pin : nl.net(nl.cell_output(ff)).sinks) {
      const InstId cand = packed.inst_of_cell(pin.cell);
      if (!cand.valid() || !packed.inst(cand).is_clb()) continue;
      const Instance& in = packed.inst(cand);
      if (!in.ff_f.valid() || !in.ff_g.valid()) {
        target = cand;
        break;
      }
    }
    if (!target.valid())
      target = packed.new_clb("clb" + std::to_string(clb_counter++));
    const Instance& in = packed.inst(target);
    packed.assign_ff(target, in.ff_f.valid(), ff, FfSource::kDirect);
  }

  // --- IOBs ---
  for (CellId pi : nl.primary_inputs())
    packed.new_iob("iob_" + nl.cell(pi).name, InstKind::kIobIn, pi);
  for (CellId po : nl.primary_outputs())
    packed.new_iob("iob_" + nl.cell(po).name, InstKind::kIobOut, po);

  packed.validate(nl);
  return packed;
}

std::vector<InstId> pack_increment(PackedDesign& packed, const Netlist& nl,
                                   const std::vector<CellId>& new_cells) {
  std::vector<InstId> created;
  std::vector<CellId> luts, ffs;
  for (CellId id : new_cells) {
    if (packed.inst_of_cell(id).valid()) continue;
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kLut)
      luts.push_back(id);
    else if (c.kind == CellKind::kDff)
      ffs.push_back(id);
    else
      EMUTILE_CHECK(false,
                    "pack_increment supports LUT/DFF cells, got "
                        << to_string(c.kind));
  }

  int counter = 0;
  auto fresh = [&]() {
    const InstId id = packed.new_clb(
        "eco_clb" + std::to_string(packed.inst_bound()) + "_" +
        std::to_string(counter++));
    created.push_back(id);
    return id;
  };

  // Pair new LUTs consecutively (they arrive in generation order, which is
  // already local), then attach new FFs.
  for (std::size_t i = 0; i < luts.size(); i += 2) {
    const InstId clb = fresh();
    packed.assign_lut(clb, false, luts[i]);
    if (i + 1 < luts.size()) packed.assign_lut(clb, true, luts[i + 1]);
  }
  for (CellId ff : ffs) {
    const CellId drv = nl.net(nl.cell(ff).inputs[0]).driver;
    const InstId drv_inst = packed.inst_of_cell(drv);
    bool done = false;
    if (nl.cell(drv).kind == CellKind::kLut && drv_inst.valid() &&
        std::find(created.begin(), created.end(), drv_inst) != created.end()) {
      const Instance& in = packed.inst(drv_inst);
      const FfSource src =
          in.lut_f == drv ? FfSource::kLutF : FfSource::kLutG;
      if (!in.ff_f.valid()) {
        packed.assign_ff(drv_inst, false, ff, src);
        done = true;
      } else if (!in.ff_g.valid()) {
        packed.assign_ff(drv_inst, true, ff, src);
        done = true;
      }
    }
    if (!done) {
      // Reuse the most recent new CLB with a free FF slot, else a fresh one.
      InstId target;
      for (auto it = created.rbegin(); it != created.rend(); ++it) {
        const Instance& in = packed.inst(*it);
        if (!in.ff_f.valid() || !in.ff_g.valid()) {
          target = *it;
          break;
        }
      }
      if (!target.valid()) target = fresh();
      const Instance& in = packed.inst(target);
      packed.assign_ff(target, in.ff_f.valid(), ff, FfSource::kDirect);
    }
  }
  packed.validate(nl);
  return created;
}

}  // namespace emutile
