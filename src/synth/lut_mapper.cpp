#include "synth/lut_mapper.hpp"

#include <algorithm>
#include <unordered_set>

#include "netlist/netlist_ops.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

/// Recursively build a LUT tree computing `tt` over `ins`; returns its
/// output net. Width <= lut_size maps directly.
NetId build_lut_tree(Netlist& nl, const TruthTable& tt,
                     const std::vector<NetId>& ins, int lut_size,
                     const std::string& base_name, MapReport& report) {
  if (tt.num_inputs() <= lut_size) {
    const CellId lut = nl.add_lut(base_name, tt, ins);
    ++report.luts_created;
    return nl.cell_output(lut);
  }
  // Shannon expansion on the last (highest-index) variable.
  const int var = tt.num_inputs() - 1;
  std::vector<NetId> sub_ins(ins.begin(), ins.end() - 1);
  const NetId lo =
      build_lut_tree(nl, tt.cofactor(var, false), sub_ins, lut_size,
                     base_name + "_c0", report);
  const NetId hi =
      build_lut_tree(nl, tt.cofactor(var, true), sub_ins, lut_size,
                     base_name + "_c1", report);
  const CellId mux =
      nl.add_lut(base_name + "_mx", TruthTable::mux21(), {ins.back(), lo, hi});
  ++report.luts_created;
  return nl.cell_output(mux);
}

}  // namespace

MapReport map_to_luts(Netlist& nl, const MapParams& params) {
  EMUTILE_CHECK(params.lut_size >= 2 && params.lut_size <= TruthTable::kMaxInputs,
                "unsupported LUT size " << params.lut_size);
  MapReport report;
  // Snapshot: decomposition adds cells; we only visit the original ones.
  const std::vector<CellId> cells = nl.live_cells();
  for (CellId id : cells) {
    // Copy the payload: build_lut_tree adds cells, which can reallocate the
    // cell table and invalidate references into it.
    const CellKind kind = nl.cell(id).kind;
    if (kind != CellKind::kLut) continue;
    const TruthTable function = nl.cell(id).function;
    if (function.num_inputs() <= params.lut_size) continue;
    const std::vector<NetId> inputs = nl.cell(id).inputs;
    const std::string name = nl.cell(id).name;
    const NetId tree_out = build_lut_tree(nl, function, inputs,
                                          params.lut_size, name + "_d",
                                          report);
    nl.transfer_sinks(nl.cell_output(id), tree_out);
    nl.remove_cell(id);
    ++report.luts_decomposed;
  }
  nl.validate();
  return report;
}

MapReport fold_constants(Netlist& nl) {
  MapReport report;
  bool changed = true;
  while (changed) {
    changed = false;
    for (CellId id : nl.live_cells()) {
      const Cell& c = nl.cell(id);

      if (c.kind == CellKind::kDff) {
        const Cell& drv = nl.cell(nl.net(c.inputs[0]).driver);
        if (drv.kind == CellKind::kConst0 || drv.kind == CellKind::kConst1) {
          // Steady state after the first clock edge equals the constant.
          const CellId cst =
              nl.add_const(c.name + "_k", drv.kind == CellKind::kConst1);
          nl.transfer_sinks(nl.cell_output(id), nl.cell_output(cst));
          nl.remove_cell(id);
          ++report.constants_folded;
          changed = true;
        }
        continue;
      }

      if (c.kind != CellKind::kLut) continue;

      // Fold constant inputs via cofactoring.
      TruthTable tt = c.function;
      std::vector<NetId> ins = c.inputs;
      bool folded = false;
      for (int i = static_cast<int>(ins.size()) - 1; i >= 0; --i) {
        const Cell& drv = nl.cell(nl.net(ins[static_cast<std::size_t>(i)]).driver);
        if (drv.kind == CellKind::kConst0 || drv.kind == CellKind::kConst1) {
          tt = tt.cofactor(i, drv.kind == CellKind::kConst1);
          ins.erase(ins.begin() + i);
          folded = true;
          ++report.constants_folded;
        }
      }
      // Drop inputs the function is vacuous in.
      for (int i = tt.num_inputs() - 1; i >= 0; --i) {
        if (static_cast<int>(ins.size()) != tt.num_inputs()) break;
        if (!tt.depends_on(i) && tt.num_inputs() > 0) {
          tt = tt.cofactor(i, false);
          ins.erase(ins.begin() + i);
          folded = true;
          ++report.inputs_dropped;
        }
      }
      if (!folded) continue;

      NetId repl;
      if (tt.num_inputs() == 0) {
        const CellId cst = nl.add_const(c.name + "_k", tt.bit(0));
        repl = nl.cell_output(cst);
      } else {
        const CellId lut = nl.add_lut(c.name + "_f", tt, ins);
        repl = nl.cell_output(lut);
      }
      nl.transfer_sinks(nl.cell_output(id), repl);
      nl.remove_cell(id);
      changed = true;
    }
  }
  nl.validate();
  return report;
}

MapReport prune_dead(Netlist& nl) {
  MapReport report;
  bool changed = true;
  while (changed) {
    changed = false;
    for (CellId id : nl.live_cells()) {
      const Cell& c = nl.cell(id);
      if (c.kind == CellKind::kOutput || c.kind == CellKind::kInput) continue;
      if (nl.net(c.output).sinks.empty()) {
        nl.remove_cell(id);
        ++report.cells_pruned;
        changed = true;
      }
    }
  }
  nl.validate();
  return report;
}

MapReport synthesize(Netlist& nl, const MapParams& params) {
  MapReport total;
  auto merge = [&total](const MapReport& r) {
    total.luts_decomposed += r.luts_decomposed;
    total.luts_created += r.luts_created;
    total.constants_folded += r.constants_folded;
    total.inputs_dropped += r.inputs_dropped;
    total.cells_pruned += r.cells_pruned;
  };
  merge(fold_constants(nl));
  merge(map_to_luts(nl, params));
  merge(fold_constants(nl));
  merge(prune_dead(nl));
  return total;
}

}  // namespace emutile
