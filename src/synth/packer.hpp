#pragma once
/// \file packer.hpp
/// Packing of mapped netlists into XC4000-style CLB and IOB instances.
///
/// A CLB instance holds up to two 4-input LUTs (slots F and G) and up to two
/// D flip-flops (slots FQ and GQ). A flip-flop either registers a local LUT
/// (internal feed, no routing needed for that arc) or is a "route-through"
/// fed from one of the CLB's auxiliary direct-in pins. Output pins:
/// 0 = F (comb), 1 = G (comb), 2 = FQ, 3 = GQ.
///
/// The packer also supports incremental packing for ECO flows: newly added
/// netlist cells are packed into fresh instances without disturbing the
/// existing assignment (the paper's test-logic insertion path).

#include <optional>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "netlist/netlist.hpp"
#include "util/ids.hpp"

namespace emutile {

using InstId = ClbId;  ///< packed-instance id (CLBs and IOBs share the space)

enum class InstKind : std::uint8_t { kClb, kIobIn, kIobOut };

/// Source selection for a CLB flip-flop slot.
enum class FfSource : std::uint8_t { kNone, kLutF, kLutG, kDirect };

/// One packed instance.
struct Instance {
  InstKind kind = InstKind::kClb;
  std::string name;
  bool alive = true;

  // CLB payload (invalid CellIds when unused).
  CellId lut_f;
  CellId lut_g;
  CellId ff_f;
  CellId ff_g;
  FfSource ff_f_src = FfSource::kNone;
  FfSource ff_g_src = FfSource::kNone;

  // IOB payload.
  CellId io_cell;

  [[nodiscard]] bool is_clb() const { return kind == InstKind::kClb; }
  [[nodiscard]] bool empty_clb() const {
    return is_clb() && !lut_f.valid() && !lut_g.valid() && !ff_f.valid() &&
           !ff_g.valid();
  }
};

/// A net in physical form: one source pin, N sink instances.
struct PhysNet {
  NetId net;
  InstId src_inst;
  int src_opin = 0;
  std::vector<InstId> sink_insts;  ///< deduplicated, internal feeds excluded
};

/// The packed design: instance list plus cell->instance binding.
class PackedDesign {
 public:
  PackedDesign() = default;

  [[nodiscard]] std::size_t inst_bound() const { return instances_.size(); }
  [[nodiscard]] const Instance& inst(InstId id) const;
  [[nodiscard]] std::vector<InstId> live_insts() const;
  [[nodiscard]] std::size_t num_clbs() const;
  [[nodiscard]] std::size_t num_iobs() const;

  /// Instance containing a given netlist cell (invalid if none).
  [[nodiscard]] InstId inst_of_cell(CellId cell) const;

  /// Output pin (OPIN index) on which `net` leaves its source instance.
  /// Throws if the net's driver is not packed.
  [[nodiscard]] std::pair<InstId, int> source_pin(const Netlist& nl,
                                                  NetId net) const;

  /// Derive the physical net list for routing. Nets fully absorbed inside a
  /// CLB (LUT feeding only its local FF) are skipped.
  [[nodiscard]] std::vector<PhysNet> physical_nets(const Netlist& nl) const;

  /// Distinct external input nets a CLB needs (IPIN demand; must be <= 10).
  [[nodiscard]] int input_net_demand(const Netlist& nl, InstId id) const;

  // ---- mutation (packer + ECO paths) --------------------------------------

  InstId new_clb(const std::string& name);
  InstId new_iob(const std::string& name, InstKind kind, CellId io_cell);

  /// Install a LUT in slot F or G (slot must be free).
  void assign_lut(InstId id, bool slot_g, CellId lut);
  /// Install a flip-flop in slot FQ or GQ with the given source.
  void assign_ff(InstId id, bool slot_g, CellId ff, FfSource src);

  /// Remove a cell's binding (e.g. before deleting the cell). Leaves the
  /// instance in place; use remove_if_empty to reclaim it.
  void unbind_cell(CellId cell);
  void remove_if_empty(InstId id);

  /// Consistency check against the netlist; throws on violation.
  void validate(const Netlist& nl) const;

 private:
  friend PackedDesign pack(const Netlist& nl);
  Instance& mutable_inst(InstId id);
  void bind(CellId cell, InstId inst);

  std::vector<Instance> instances_;
  std::vector<InstId> inst_of_cell_;  // dense by cell id
};

/// Pack a mapped netlist (every LUT <= 4 inputs, no constants feeding logic).
/// Pairs LUTs by shared-input affinity, registers FFs with their driving LUT
/// when possible, and creates IOBs for every PI/PO.
[[nodiscard]] PackedDesign pack(const Netlist& nl);

/// Incrementally pack newly added cells into fresh CLBs. Returns the new
/// instances. Cells already bound are ignored.
std::vector<InstId> pack_increment(PackedDesign& packed, const Netlist& nl,
                                   const std::vector<CellId>& new_cells);

}  // namespace emutile
