#pragma once
/// \file hierarchy.hpp
/// Design hierarchy and back annotation (paper Section 5.1).
///
/// Partitioning through the design process forms a tree: design -> functional
/// blocks -> cells. Quick_ECO traces changes through this tree down to the
/// netlist (functional-block granularity); tiling continues the trace to the
/// physical level. DesignHierarchy stores the tree and the cell binding;
/// BackAnnotation maps blocks onward to tiles through the placement.

#include <string>
#include <unordered_map>
#include <vector>

#include "core/tiled_design.hpp"
#include "netlist/netlist.hpp"
#include "util/ids.hpp"

namespace emutile {

/// The hierarchy tree. Node 0 is the design root; its children are
/// functional blocks; cells bind to blocks.
class DesignHierarchy {
 public:
  explicit DesignHierarchy(std::string design_name);

  /// Add a functional block under the root; returns its node.
  HierId add_block(const std::string& name);

  /// Bind a cell to a block. A cell may be bound once.
  void bind_cell(CellId cell, HierId block);

  /// Convenience: bind every currently unbound live cell to `block`.
  void bind_remaining(const Netlist& nl, HierId block);

  [[nodiscard]] HierId root() const { return HierId{0}; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] const std::vector<HierId>& blocks() const { return blocks_; }
  [[nodiscard]] const std::string& name(HierId node) const;

  /// Block owning a cell (invalid if unbound).
  [[nodiscard]] HierId block_of(CellId cell) const;

  /// Cells of a block.
  [[nodiscard]] const std::vector<CellId>& cells_of(HierId block) const;

  /// Trace a set of changed cells up to the set of affected blocks
  /// (Quick_ECO's granularity).
  [[nodiscard]] std::vector<HierId> trace_to_blocks(
      const std::vector<CellId>& changed) const;

 private:
  struct Node {
    std::string name;
    HierId parent;
    std::vector<CellId> cells;
  };
  std::vector<Node> nodes_;
  std::vector<HierId> blocks_;
  std::unordered_map<std::uint32_t, HierId> block_of_cell_;
};

/// Back annotation: continue a block-level trace down to the physical level
/// (the tiles currently holding the block's instances). This is the linkage
/// tiling adds beyond Quick_ECO.
[[nodiscard]] std::vector<TileId> annotate_blocks_to_tiles(
    const DesignHierarchy& hier, const TiledDesign& design,
    const std::vector<HierId>& blocks);

/// Full change trace: changed cells -> blocks -> tiles.
[[nodiscard]] std::vector<TileId> trace_change_to_tiles(
    const DesignHierarchy& hier, const TiledDesign& design,
    const std::vector<CellId>& changed);

}  // namespace emutile
