#include "hier/hierarchy.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace emutile {

DesignHierarchy::DesignHierarchy(std::string design_name) {
  nodes_.push_back(Node{std::move(design_name), HierId::invalid(), {}});
}

HierId DesignHierarchy::add_block(const std::string& name) {
  const HierId id{static_cast<std::uint32_t>(nodes_.size())};
  nodes_.push_back(Node{name, root(), {}});
  blocks_.push_back(id);
  return id;
}

void DesignHierarchy::bind_cell(CellId cell, HierId block) {
  EMUTILE_CHECK(block.valid() && block.value() < nodes_.size() &&
                    block.value() != 0,
                "bad block id");
  EMUTILE_CHECK(block_of_cell_.emplace(cell.value(), block).second,
                "cell bound to two blocks");
  nodes_[block.value()].cells.push_back(cell);
}

void DesignHierarchy::bind_remaining(const Netlist& nl, HierId block) {
  for (CellId id : nl.live_cells())
    if (block_of_cell_.find(id.value()) == block_of_cell_.end())
      bind_cell(id, block);
}

const std::string& DesignHierarchy::name(HierId node) const {
  EMUTILE_CHECK(node.valid() && node.value() < nodes_.size(), "bad hier id");
  return nodes_[node.value()].name;
}

HierId DesignHierarchy::block_of(CellId cell) const {
  auto it = block_of_cell_.find(cell.value());
  return it == block_of_cell_.end() ? HierId::invalid() : it->second;
}

const std::vector<CellId>& DesignHierarchy::cells_of(HierId block) const {
  EMUTILE_CHECK(block.valid() && block.value() < nodes_.size(), "bad hier id");
  return nodes_[block.value()].cells;
}

std::vector<HierId> DesignHierarchy::trace_to_blocks(
    const std::vector<CellId>& changed) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<HierId> out;
  for (CellId c : changed) {
    const HierId b = block_of(c);
    if (b.valid() && seen.insert(b.value()).second) out.push_back(b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TileId> annotate_blocks_to_tiles(const DesignHierarchy& hier,
                                             const TiledDesign& design,
                                             const std::vector<HierId>& blocks) {
  EMUTILE_CHECK(design.tiles.has_value(), "design is not tiled");
  std::unordered_set<std::uint32_t> tiles;
  for (HierId b : blocks) {
    for (CellId cell : hier.cells_of(b)) {
      const InstId inst = design.packed.inst_of_cell(cell);
      if (!inst.valid() || !design.packed.inst(inst).is_clb()) continue;
      if (!design.placement->is_placed(inst)) continue;
      auto [x, y] = design.device->clb_xy(design.placement->site_of(inst));
      tiles.insert(design.tiles->tile_at(x, y).value());
    }
  }
  std::vector<TileId> out;
  out.reserve(tiles.size());
  for (std::uint32_t t : tiles) out.push_back(TileId{t});
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TileId> trace_change_to_tiles(const DesignHierarchy& hier,
                                          const TiledDesign& design,
                                          const std::vector<CellId>& changed) {
  return annotate_blocks_to_tiles(hier, design, hier.trace_to_blocks(changed));
}

}  // namespace emutile
