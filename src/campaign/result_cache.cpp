#include "campaign/result_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "campaign/campaign_spec_io.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"

namespace emutile {

namespace {

/// One-line-per-field text codec for CachedSession. `error` is stored as the
/// rest of its line with newlines flattened, so the record stays line
/// oriented no matter what the exception said.
std::string encode(const CachedSession& s) {
  std::string error = s.error;
  for (char& c : error)
    if (c == '\n' || c == '\r') c = ' ';
  std::ostringstream os;
  os << "emutile-session v1\n"
     << "flags " << (s.detected ? 1 : 0) << " " << (s.narrowed ? 1 : 0) << " "
     << (s.corrected ? 1 : 0) << " " << (s.clean ? 1 : 0) << "\n"
     << "counts " << s.suspects << " " << s.iterations << " " << s.design_clbs
     << "\n"
     << "build_effort " << s.build_placed << " " << s.build_routed << " "
     << s.build_expanded << "\n"
     << "debug_effort " << s.debug_placed << " " << s.debug_routed << " "
     << s.debug_expanded << "\n"
     << "error " << error << "\n"
     << "end\n";
  return os.str();
}

std::optional<CachedSession> decode(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  const auto next = [&](const char* prefix) -> std::optional<std::istringstream> {
    if (!std::getline(in, line)) return std::nullopt;
    const std::size_t n = std::string(prefix).size();
    if (line.compare(0, n, prefix) != 0) return std::nullopt;
    return std::istringstream(line.substr(n));
  };
  if (!std::getline(in, line) || line != "emutile-session v1")
    return std::nullopt;
  CachedSession s;
  int detected = 0, narrowed = 0, corrected = 0, clean = 0;
  auto flags = next("flags ");
  if (!flags || !(*flags >> detected >> narrowed >> corrected >> clean))
    return std::nullopt;
  s.detected = detected != 0;
  s.narrowed = narrowed != 0;
  s.corrected = corrected != 0;
  s.clean = clean != 0;
  auto counts = next("counts ");
  if (!counts || !(*counts >> s.suspects >> s.iterations >> s.design_clbs))
    return std::nullopt;
  auto build = next("build_effort ");
  if (!build || !(*build >> s.build_placed >> s.build_routed >>
                  s.build_expanded))
    return std::nullopt;
  auto debug = next("debug_effort ");
  if (!debug || !(*debug >> s.debug_placed >> s.debug_routed >>
                  s.debug_expanded))
    return std::nullopt;
  if (!std::getline(in, line) || line.compare(0, 6, "error ") != 0)
    return std::nullopt;
  s.error = line.substr(6);
  if (!std::getline(in, line) || line != "end") return std::nullopt;
  return s;
}

}  // namespace

std::uint64_t session_cache_key(const CampaignSpec& spec,
                                const CampaignJob& job) {
  const CampaignDesign& design = spec.designs.at(job.design_index);
  EMUTILE_CHECK(!design.builder,
                "session cache keys need catalog designs; '"
                    << design.name << "' has a custom builder");
  const DebugSessionOptions& o = job.options;
  std::ostringstream os;
  // v2: the physical build is seeded by tiling.seed (scenario-stable) and no
  // longer by the session seed, and the localizer's persistent_probes mode
  // changes the deterministic effort counters, so it is part of the key;
  // v1 entries were computed under the old coupling and must not replay.
  os << "emutile-session-key v2"
     << " design=" << design.name
     << " design_seed=" << spec.design_seed(job.design_index)
     << " kind=" << to_string(o.error_kind) << " seed=" << o.seed
     << " patterns=" << o.num_patterns << " tiling=" << o.tiling.num_tiles
     << "," << format_double_exact(o.tiling.target_overhead) << ","
     << format_double_exact(o.tiling.placer_effort) << ","
     << o.tiling.tracks_per_channel << "," << o.tiling.route_headroom << ","
     << o.tiling.seed << " localizer=" << o.localizer.probes_per_iteration
     << "," << o.localizer.max_iterations << "," << o.localizer.stop_at << ","
     << o.localizer.seed << ","
     << (o.localizer.persistent_probes ? 1 : 0)
     << " localizer_eco=" << o.localizer.eco.seed << ","
     << format_double_exact(o.localizer.eco.placer_effort) << ","
     << o.localizer.eco.max_region_expansions << " eco=" << o.eco.seed << ","
     << format_double_exact(o.eco.placer_effort) << "," << o.eco.max_region_expansions;
  return fnv1a64(os.str());
}

CachedSession to_cached(const SessionOutcome& outcome) {
  EMUTILE_CHECK(!outcome.report.cancelled,
                "cancelled sessions must not be cached");
  CachedSession s;
  s.error = outcome.error;
  const DebugSessionReport& r = outcome.report;
  s.detected = r.detection.error_detected;
  s.narrowed = r.localization.narrowed;
  s.corrected = r.correction.corrected;
  s.clean = r.final_clean;
  s.suspects = r.localization.suspects.size();
  s.iterations = r.localization.iterations.size();
  s.build_placed = r.build_effort.instances_placed;
  s.build_routed = r.build_effort.nets_routed;
  s.build_expanded = r.build_effort.nodes_expanded;
  s.debug_placed = r.debug_effort.instances_placed;
  s.debug_routed = r.debug_effort.nets_routed;
  s.debug_expanded = r.debug_effort.nodes_expanded;
  s.design_clbs = r.design_clbs;
  return s;
}

SessionOutcome from_cached(const CachedSession& cached) {
  SessionOutcome out;
  out.error = cached.error;
  DebugSessionReport& r = out.report;
  r.detection.error_detected = cached.detected;
  r.localization.narrowed = cached.narrowed;
  r.localization.suspects.resize(cached.suspects);
  r.localization.iterations.resize(cached.iterations);
  r.correction.corrected = cached.corrected;
  r.final_clean = cached.clean;
  r.build_effort.instances_placed = cached.build_placed;
  r.build_effort.nets_routed = cached.build_routed;
  r.build_effort.nodes_expanded = cached.build_expanded;
  r.debug_effort.instances_placed = cached.debug_placed;
  r.debug_effort.nets_routed = cached.debug_routed;
  r.debug_effort.nodes_expanded = cached.debug_expanded;
  r.design_clbs = cached.design_clbs;
  return out;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  EMUTILE_CHECK(!ec, "cannot create cache directory " << dir_ << ": "
                                                      << ec.message());
}

std::filesystem::path ResultCache::entry_path(std::uint64_t key) const {
  return dir_ / (format_u64_hex(key) + ".session");
}

std::optional<CachedSession> ResultCache::index_load(std::uint64_t key) {
  if (index_capacity_per_shard_.load(std::memory_order_relaxed) == 0)
    return std::nullopt;
  IndexShard& shard = index_[key % kIndexShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

void ResultCache::index_store(std::uint64_t key, const CachedSession& session) {
  const std::size_t cap =
      index_capacity_per_shard_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  IndexShard& shard = index_[key % kIndexShards];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.map.insert_or_assign(key, session);
  if (inserted) {
    shard.fifo.push_back(key);
    while (shard.map.size() > cap && !shard.fifo.empty()) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
    }
  }
  ++shard.stores;
  MetricsRegistry::global().counter("result_cache.index_stores").add();
}

std::optional<CachedSession> ResultCache::load(std::uint64_t key) {
  // Hot tier first: one shard mutex, no disk, no cache-wide lock.
  if (std::optional<CachedSession> result = index_load(key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("result_cache.hits").add();
    MetricsRegistry::global().counter("result_cache.index_hits").add();
    return result;
  }
  MetricsRegistry::global().counter("result_cache.index_misses").add();
  std::optional<CachedSession> result;
  {
    std::ifstream in(entry_path(key));
    if (in.good()) {
      std::ostringstream text;
      text << in.rdbuf();
      result = decode(text.str());
    }
  }
  if (result) {
    // Promote the disk hit so the next load for this key stays in memory.
    index_store(key, *result);
    hits_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("result_cache.hits").add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter("result_cache.misses").add();
  }
  return result;
}

void ResultCache::store(std::uint64_t key, const CachedSession& session) {
  const std::string encoded = encode(session);
  bool over_bound = false;
  MetricsRegistry::global().counter("result_cache.stores").add();
  stores_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Running total so the common under-bound store costs no directory
    // scan; evict_to_fit re-syncs it against the disk truth whenever the
    // estimate crosses the bound (other processes sharing the directory
    // only widen the estimate's error toward late eviction, never toward
    // evicting early).
    approx_bytes_ += encoded.size();
    over_bound = max_bytes_ > 0 && approx_bytes_ > max_bytes_;
  }
  // Write-through: the index gets the entry whether or not the disk write
  // below succeeds — a failed disk store is "not durably memoized", but the
  // in-memory value is still correct for this process's lifetime.
  index_store(key, session);
  // Temp names unique across threads and processes; racing stores of the
  // same key resolve last-writer-wins. Throws on IO failure — callers treat
  // that as "not memoized" (see run_campaign_session).
  write_file_atomic(entry_path(key), encoded);
  if (over_bound) evict_to_fit();
}

void ResultCache::set_index_capacity(std::size_t per_shard) {
  index_capacity_per_shard_.store(per_shard, std::memory_order_relaxed);
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    while (shard.map.size() > per_shard && !shard.fifo.empty()) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
    }
    if (per_shard == 0) {
      shard.map.clear();
      shard.fifo.clear();
    }
  }
}

void ResultCache::set_max_bytes(std::size_t max_bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_bytes_ = max_bytes;
  }
  evict_to_fit();
}

std::size_t ResultCache::max_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_bytes_;
}

void ResultCache::evict_to_fit() {
  std::size_t bound;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bound = max_bytes_;
  }
  if (bound == 0) return;
  // One evictor at a time: a concurrent store that loses this race simply
  // skips — the winning scan already observes (and prunes past) its entry.
  std::unique_lock<std::mutex> evicting(evict_mutex_, std::try_to_lock);
  if (!evicting.owns_lock()) return;

  struct Entry {
    std::filesystem::file_time_type mtime;
    std::filesystem::path path;
    std::size_t size = 0;
  };
  std::vector<Entry> entries;
  std::size_t total = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".session") continue;
    // Entries racing with a concurrent clear()/evictor read as gone.
    std::error_code entry_ec;
    const std::uintmax_t size = it->file_size(entry_ec);
    if (entry_ec) continue;
    const auto mtime = it->last_write_time(entry_ec);
    if (entry_ec) continue;
    entries.push_back({mtime, it->path(), static_cast<std::size_t>(size)});
    total += static_cast<std::size_t>(size);
  }
  std::size_t evicted = 0;
  if (total > bound) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.mtime != b.mtime ? a.mtime < b.mtime
                                          : a.path < b.path;
              });
    for (const Entry& entry : entries) {
      if (total <= bound) break;
      std::error_code remove_ec;
      if (!std::filesystem::remove(entry.path, remove_ec) || remove_ec)
        continue;  // already gone or unremovable — nothing reclaimed
      total -= entry.size;
      ++evicted;
    }
  }
  MetricsRegistry::global().counter("result_cache.evictions").add(evicted);
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  approx_bytes_ = total;  // re-sync the estimate with the disk truth
}

void ResultCache::clear() {
  // Both tiers: a cleared cache must read as empty from memory too.
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.fifo.clear();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".session") {
      std::error_code ec;
      std::filesystem::remove(entry.path(), ec);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  approx_bytes_ = 0;
}

std::size_t ResultCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::size_t ResultCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t ResultCache::stores() const {
  return stores_.load(std::memory_order_relaxed);
}

std::size_t ResultCache::evictions() const {
  return evictions_.load(std::memory_order_relaxed);
}

std::size_t ResultCache::index_hits() const {
  std::size_t n = 0;
  for (const IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.hits;
  }
  return n;
}

std::size_t ResultCache::index_misses() const {
  std::size_t n = 0;
  for (const IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.misses;
  }
  return n;
}

std::size_t ResultCache::index_stores() const {
  std::size_t n = 0;
  for (const IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.stores;
  }
  return n;
}

std::size_t ResultCache::index_entries() const {
  std::size_t n = 0;
  for (const IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

std::size_t ResultCache::entries() const {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_))
    if (entry.path().extension() == ".session") ++n;
  return n;
}

std::size_t ResultCache::bytes() const {
  std::size_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".session") continue;
    // A concurrently-evicted or racing entry reads as size 0, not an error.
    std::error_code ec;
    const std::uintmax_t size = entry.file_size(ec);
    if (!ec) total += static_cast<std::size_t>(size);
  }
  return total;
}

}  // namespace emutile
