#pragma once
/// \file adaptive_driver.hpp
/// Confidence-driven session budgets: run a campaign in rounds and spend
/// each round's replicas on the scenarios whose interval estimates are
/// widest, instead of a flat sessions_per_scenario grid.
///
/// The paper's headline numbers are per-scenario sample means; at fleet
/// scale most scenarios converge after a handful of replicas while a few
/// rare-corner (design, error-kind, tiling) cells stay wide. The driver
/// exploits that skew:
///
///   round 0      a uniform exploratory round (initial_sessions replicas per
///                scenario) seeds every scenario's estimate
///   round k > 0  the round budget is allocated greedily to the scenarios
///                whose metric interval (Wilson for detection/correction,
///                Student-t for debug work) is predicted widest, one session
///                at a time under a sqrt(n / (n + extra)) shrink model
///   stop         when every scenario's half-width is at or below
///                target_halfwidth (converged), or the total session budget
///                / round cap runs out
///
/// Determinism contract: session seeds are split-derived from (scenario,
/// absolute replica) — CampaignSpec::session_seed — so round k's spec simply
/// continues each scenario's replica stream where round k-1 stopped. Every
/// session an adaptive run executes is byte-identical to the same (scenario,
/// replica) session of any uniform run of the same base spec, the adaptive
/// run's session set is a superset of the uniform initial_sessions run's,
/// and the merged report is byte-identical for any worker count and for any
/// executor (in-process, session service, fleet coordinator) because each
/// round's report already is.
///
/// Execution layers plug in through the executor hook: the default runs
/// rounds in-process via run_campaign; make_adaptive_executor(SessionService&)
/// submits rounds to a resident service (whose result cache makes re-running
/// an adaptive campaign nearly free); make_adaptive_executor(
/// CampaignCoordinator&) fans each round out across a serviced fleet as
/// extra shards.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"
#include "util/stats.hpp"

namespace emutile {

/// Which per-scenario interval drives the allocation and the stop rule.
enum class AdaptiveMetric : std::uint8_t {
  kDetection,   ///< Wilson half-width of detected / completed
  kCorrection,  ///< Wilson half-width of clean / detected
  kDebugWork,   ///< relative t half-width of mean debug work (hw / mean)
};

[[nodiscard]] const char* to_string(AdaptiveMetric metric);

/// Runs one round's spec to completion and returns its report. The spec is
/// a plain CampaignSpec whose sessions_by_scenario / replica_base carry the
/// round's allocation, so any layer that can run a campaign can serve as an
/// executor. `round` is 0 for the exploratory round.
using AdaptiveRoundExecutor =
    std::function<CampaignReport(const CampaignSpec& spec, std::size_t round)>;

struct AdaptiveRoundInfo {
  std::size_t round = 0;
  std::size_t sessions = 0;        ///< sessions this round ran
  std::size_t total_sessions = 0;  ///< cumulative across rounds
  double max_halfwidth = 0.0;      ///< widest scenario after this round
  std::size_t scenarios_above_target = 0;
};

struct AdaptiveOptions {
  /// Stop once every scenario's metric half-width is at or below this.
  double target_halfwidth = 0.05;
  double confidence = 0.95;
  AdaptiveMetric metric = AdaptiveMetric::kDetection;
  /// Uniform replicas per scenario in the exploratory round (clamped so the
  /// round fits the total budget).
  int initial_sessions = 4;
  /// Sessions per follow-up round; 0 means one per scenario. Larger rounds
  /// amortize executor overhead (a service SUBMIT, a fleet dispatch) at the
  /// cost of allocating on staler intervals.
  std::size_t round_budget = 0;
  /// Total session budget; 0 means the base spec's own uniform budget
  /// (num_scenarios x sessions_per_scenario) — "spend at most what the flat
  /// grid would have". Must cover at least one session per scenario (the
  /// exploratory round's hard floor); run() throws below that.
  std::size_t max_total_sessions = 0;
  std::size_t max_rounds = 64;
  /// Engine options for the default in-process executor (threads, cache,
  /// cancel/progress hooks). Ignored when `executor` is set.
  CampaignOptions engine;
  AdaptiveRoundExecutor executor;
  /// Called after each round with its summary (allocation telemetry).
  std::function<void(const AdaptiveRoundInfo&)> on_round;
};

struct AdaptiveResult {
  CampaignReport report;  ///< merged over all rounds
  std::size_t rounds = 0;
  std::size_t total_sessions = 0;
  double max_halfwidth = 0.0;  ///< widest scenario at stop
  bool converged = false;      ///< every scenario reached the target
  std::vector<AdaptiveRoundInfo> round_log;
};

class AdaptiveCampaignDriver {
 public:
  explicit AdaptiveCampaignDriver(AdaptiveOptions options = {});

  /// Run `base` adaptively. The spec must be unsharded and must not carry
  /// per-scenario budget vectors (the driver owns those); its
  /// sessions_per_scenario is read as the uniform reference budget when
  /// max_total_sessions is 0. measure_baselines, when set, runs in the
  /// exploratory round only (baselines are replica-independent).
  [[nodiscard]] AdaptiveResult run(const CampaignSpec& base);

  /// The metric half-width of one scenario row — the quantity allocation
  /// ranks and the stop rule thresholds. Infinite when the metric is
  /// undefined (e.g. debug-work below 2 samples).
  [[nodiscard]] static double scenario_halfwidth(const ScenarioStats& stats,
                                                 AdaptiveMetric metric,
                                                 double confidence);

 private:
  /// Greedily split `budget` sessions over the scenarios predicted to stay
  /// above the target; returns per-scenario extra-session counts (all zero
  /// when every scenario is predicted converged).
  [[nodiscard]] std::vector<int> allocate(
      const std::vector<ScenarioStats>& scenarios, std::size_t budget) const;

  AdaptiveOptions options_;
};

}  // namespace emutile
