#include "campaign/campaign_spec.hpp"

#include <algorithm>

#include "designs/catalog.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace emutile {

namespace {
// Disjoint stream ranges so session, design-build, and baseline seeds can
// never collide even for absurdly large campaigns. Session streams occupy
// [0, kDesignStreamBase): each scenario owns a contiguous block of
// kReplicaStreamSpan replica slots, so a scenario's replica stream is
// independent of every other scenario's budget — the basis of the adaptive
// driver's superset property.
constexpr std::uint64_t kDesignStreamBase = 0x4000000000000000ull;
constexpr std::uint64_t kBaselineStreamBase = 0x8000000000000000ull;
constexpr std::uint64_t kBuildStreamBase = 0xC000000000000000ull;
constexpr std::uint64_t kReplicaStreamSpan = 1ull << 32;
}  // namespace

namespace {
/// Design names flow verbatim into the CSV/JSON emitters, so restrict them
/// to characters that need no quoting in either format.
void check_design_name(const std::string& name) {
  EMUTILE_CHECK(!name.empty(), "campaign design name must not be empty");
  EMUTILE_CHECK(name.find_first_of("\",\\\n\r") == std::string::npos,
                "campaign design name '"
                    << name << "' may not contain quotes, commas, "
                    << "backslashes, or newlines");
}
}  // namespace

void CampaignSpec::add_catalog_design(const std::string& name) {
  static_cast<void>(paper_design(name));  // validate eagerly (throws on unknown)
  check_design_name(name);
  designs.push_back({name, {}});
}

void CampaignSpec::add_design(std::string name,
                              std::function<Netlist(std::uint64_t)> builder) {
  EMUTILE_CHECK(builder, "custom campaign design needs a builder");
  check_design_name(name);
  designs.push_back({std::move(name), std::move(builder)});
}

namespace {
/// Shared validation of the per-scenario budget vectors (empty or exactly
/// one non-negative entry per scenario).
void check_budgets(const CampaignSpec& spec) {
  EMUTILE_CHECK(spec.sessions_per_scenario >= 0,
                "negative sessions_per_scenario");
  for (const std::vector<int>* v :
       {&spec.sessions_by_scenario, &spec.replica_base}) {
    if (v->empty()) continue;
    EMUTILE_CHECK(v->size() == spec.num_scenarios(),
                  "per-scenario budget vector has "
                      << v->size() << " entries for " << spec.num_scenarios()
                      << " scenarios");
    for (const int n : *v)
      EMUTILE_CHECK(n >= 0, "negative per-scenario budget entry " << n);
  }
}
}  // namespace

std::size_t CampaignSpec::num_scenarios() const {
  return designs.size() * error_kinds.size() * tilings.size();
}

std::size_t CampaignSpec::num_sessions() const {
  check_budgets(*this);
  if (sessions_by_scenario.empty())
    return num_scenarios() * static_cast<std::size_t>(sessions_per_scenario);
  std::size_t total = 0;
  for (const int n : sessions_by_scenario)
    total += static_cast<std::size_t>(n);
  return total;
}

std::uint64_t CampaignSpec::design_seed(std::size_t design_index) const {
  return split_seed(master_seed, kDesignStreamBase + design_index);
}

std::uint64_t CampaignSpec::baseline_seed(std::size_t pair_index) const {
  return split_seed(master_seed, kBaselineStreamBase + pair_index);
}

std::uint64_t CampaignSpec::build_seed(std::size_t pair_index) const {
  return split_seed(master_seed, kBuildStreamBase + pair_index);
}

std::uint64_t CampaignSpec::session_seed(std::size_t scenario,
                                         std::size_t replica) const {
  EMUTILE_CHECK(scenario < kDesignStreamBase / kReplicaStreamSpan,
                "scenario index " << scenario
                                  << " exceeds the session stream range");
  EMUTILE_CHECK(replica < kReplicaStreamSpan,
                "replica index " << replica
                                 << " exceeds the per-scenario stream span");
  return split_seed(master_seed, scenario * kReplicaStreamSpan + replica);
}

CampaignSpec CampaignSpec::shard(std::size_t index, std::size_t count) const {
  EMUTILE_CHECK(count >= 1, "shard count must be at least 1");
  EMUTILE_CHECK(index < count,
                "shard index " << index << " out of range for " << count
                               << " shards");
  EMUTILE_CHECK(shard_count == 1, "cannot re-shard an already sharded spec");
  EMUTILE_CHECK(!sliced(), "cannot shard an already sliced spec");
  CampaignSpec sharded = *this;
  sharded.shard_index = index;
  sharded.shard_count = count;
  return sharded;
}

CampaignSpec CampaignSpec::slice(std::size_t begin, std::size_t end) const {
  EMUTILE_CHECK(begin < end, "slice [" << begin << ", " << end
                                       << ") is empty or inverted");
  if (sliced())
    EMUTILE_CHECK(begin >= slice_begin && end <= slice_end,
                  "slice [" << begin << ", " << end
                            << ") must narrow the existing slice ["
                            << slice_begin << ", " << slice_end << ")");
  CampaignSpec narrowed = *this;
  narrowed.slice_begin = begin;
  narrowed.slice_end = end;
  return narrowed;
}

std::vector<CampaignJob> CampaignSpec::expand() const {
  EMUTILE_CHECK(!error_kinds.empty(), "campaign needs at least one error kind");
  EMUTILE_CHECK(!tilings.empty(), "campaign needs at least one tiling point");
  EMUTILE_CHECK(shard_count >= 1 && shard_index < shard_count,
                "invalid shard selection " << shard_index << "/"
                                           << shard_count);
  // Contiguous slice [begin, end) of the canonical job list. Contiguous
  // slicing keeps a scenario's replicas together whenever slice boundaries
  // allow, and the bounds are a pure function of (total, index, count).
  const std::size_t total = num_sessions();  // also validates the budgets
  std::size_t begin = total * shard_index / shard_count;
  std::size_t end = total * (shard_index + 1) / shard_count;
  // An explicit slice (work stealing) intersects with the shard range.
  if (sliced()) {
    begin = std::max(begin, slice_begin);
    end = std::min(end, slice_end);
  }
  std::vector<CampaignJob> jobs;
  jobs.reserve(end - begin);
  std::size_t scenario = 0;
  std::size_t global_index = 0;
  for (std::size_t di = 0; di < designs.size(); ++di) {
    for (const ErrorKind kind : error_kinds) {
      for (std::size_t ti = 0; ti < tilings.size(); ++ti) {
        const int count = sessions_by_scenario.empty()
                              ? sessions_per_scenario
                              : sessions_by_scenario[scenario];
        const std::size_t base =
            replica_base.empty()
                ? 0
                : static_cast<std::size_t>(replica_base[scenario]);
        for (int rep = 0; rep < count; ++rep, ++global_index) {
          if (global_index < begin || global_index >= end) continue;
          CampaignJob job;
          job.index = global_index;
          job.scenario = scenario;
          job.design_index = di;
          job.replica = base + static_cast<std::size_t>(rep);
          job.options.error_kind = kind;
          job.options.seed = session_seed(scenario, job.replica);
          job.options.num_patterns = num_patterns;
          job.options.tiling = tilings[ti];
          // The build seed is shared by every session of this (design,
          // tiling) pair — see build_seed() — so all of them implement on
          // the same physical design and warm-started campaigns can clone
          // one shared baseline with byte-identical reports.
          job.options.tiling.seed = build_seed(di * tilings.size() + ti);
          job.options.localizer = localizer;
          job.options.eco = eco;
          jobs.push_back(std::move(job));
        }
        ++scenario;
      }
    }
  }
  return jobs;
}

}  // namespace emutile
