#pragma once
/// \file campaign_engine.hpp
/// Multi-threaded campaign execution: drain a CampaignSpec's job queue
/// across a worker pool and fold the outcomes into a CampaignReport.
///
/// Determinism contract: given the same spec, run_campaign returns a report
/// whose to_csv()/to_json() output is byte-identical for any worker count —
/// session seeds are split-derived from the master seed by job index, each
/// job writes only its own result slot, and aggregation happens on one
/// thread in canonical job order over deterministic work counters. The
/// optional result cache preserves the contract: a cached outcome restores
/// exactly the counters aggregation reads, so cached and fresh runs emit
/// identical bytes.
///
/// The per-session and per-baseline primitives are exposed so other drivers
/// (the session service, shard runners) can schedule the same work their own
/// way and still land on the same report.

#include <cstddef>
#include <functional>
#include <string>

#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"

namespace emutile {

class ResultCache;
class TiledBaselineCache;

struct CampaignOptions {
  std::size_t num_threads = 1;
  /// Identifies this campaign in multi-campaign drivers; handed verbatim to
  /// on_progress so one callback can serve many concurrent campaigns.
  std::string campaign_id;
  /// Called after every finished session — completed, cancelled, failed, or
  /// served from the cache alike — with (campaign_id, done, total). Calls
  /// are serialized; keep it cheap — workers block on it.
  std::function<void(const std::string&, std::size_t, std::size_t)>
      on_progress;
  /// Polled before every session (including cache hits) and at session phase
  /// boundaries; returning true cancels the remainder of the campaign
  /// (cancelled sessions are counted in the report, never silently dropped).
  std::function<bool()> cancel;
  /// When set, sessions of catalog designs are memoized here: hits skip the
  /// debug loop entirely, misses run and are stored. Counted in the report's
  /// cache_hits/cache_misses.
  ResultCache* cache = nullptr;
  /// Warm-start sessions from a shared pre-injection tiled baseline, one per
  /// (design, tiling) pair: the first session of a pair builds it, the rest
  /// clone it (TilingEngine::rebase). Reports stay byte-identical to cold
  /// builds — sessions whose injected error changes connectivity fall back
  /// to a cold build automatically. Disable to force every session through
  /// the full build (the pre-warm-start behavior, kept for benches/tests).
  bool warm_start = true;
  /// Optional cross-campaign baseline cache (e.g. the session service's);
  /// when null and warm_start is set, a cache local to this run is used.
  TiledBaselineCache* baseline_cache = nullptr;
};

/// Execute the campaign described by `spec` on `options.num_threads`
/// workers. Golden netlists are built once per design and shared read-only
/// by the sessions.
[[nodiscard]] CampaignReport run_campaign(const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

// ---- building blocks shared with the session service -----------------------

/// How a session interacted with the result cache — the single source of
/// truth for per-campaign hit/miss accounting across every driver.
enum class CacheLookup : std::uint8_t {
  kNotConsulted,  ///< no cache, custom-builder design, or cancelled up front
  kHit,           ///< served from the cache without running
  kMiss           ///< consulted, ran, and (if not cancelled mid-run) stored
};

/// Run one campaign session against its golden netlist. Polls `cancel` once
/// up front and at every phase boundary; consults/fills `cache` when non-null
/// and the job's design is a catalog design (cancelled outcomes are never
/// cached). `*lookup` (optional) reports the cache interaction for counter
/// accounting. When `baselines` is non-null and the job can warm-start
/// (catalog design, LUT-reconfiguration error kind), the session clones the
/// shared pre-injection tiled baseline — built on first use under a content
/// key — instead of running a full build; the report is byte-identical
/// either way. Never throws: session failures are recorded in the outcome,
/// and cache/baseline IO or build failures are logged and degrade to an
/// uncached / cold-built run.
[[nodiscard]] SessionOutcome run_campaign_session(
    const CampaignSpec& spec, const CampaignJob& job, const Netlist& golden,
    const std::function<bool()>& cancel = {}, ResultCache* cache = nullptr,
    CacheLookup* lookup = nullptr, TiledBaselineCache* baselines = nullptr);

/// Measure the tiled-vs-baseline speedups of unique (design, tiling) pair
/// `pair_index` (= design_index * spec.tilings.size() + tiling_index) on the
/// scripted standard change, covering the full Figure 5 strategy set
/// (Quick_ECO, Incremental_ECO, full re-P&R). Failures yield an unmeasured
/// baseline.
[[nodiscard]] ScenarioBaseline measure_baseline_pair(const CampaignSpec& spec,
                                                     std::size_t pair_index,
                                                     const Netlist& golden);

/// Fan per-(design, tiling)-pair baselines out to the scenario-indexed
/// vector build_report expects (every error kind of a pair shares its
/// measurement).
[[nodiscard]] std::vector<ScenarioBaseline> fan_out_baselines(
    const CampaignSpec& spec, const std::vector<ScenarioBaseline>& per_pair);

/// Build design `design_index`'s golden netlist from its builder or the
/// paper catalog, with the spec's split-derived design seed. Throws on
/// builder/catalog failure.
[[nodiscard]] Netlist build_campaign_golden(const CampaignSpec& spec,
                                            std::size_t design_index);

}  // namespace emutile
