#pragma once
/// \file campaign_engine.hpp
/// Multi-threaded campaign execution: drain a CampaignSpec's job queue
/// across a worker pool and fold the outcomes into a CampaignReport.
///
/// Determinism contract: given the same spec, run_campaign returns a report
/// whose to_csv()/to_json() output is byte-identical for any worker count —
/// session seeds are split-derived from the master seed by job index, each
/// job writes only its own result slot, and aggregation happens on one
/// thread in canonical job order over deterministic work counters.

#include <cstddef>
#include <functional>

#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"

namespace emutile {

struct CampaignOptions {
  std::size_t num_threads = 1;
  /// Called after every finished session with (completed, total). Calls are
  /// serialized; keep it cheap — workers block on it.
  std::function<void(std::size_t, std::size_t)> on_progress;
  /// Polled between sessions and at session phase boundaries; returning
  /// true cancels the remainder of the campaign (cancelled sessions are
  /// counted in the report, never silently dropped).
  std::function<bool()> cancel;
};

/// Execute the campaign described by `spec` on `options.num_threads`
/// workers. Golden netlists are built once per design and shared read-only
/// by the sessions.
[[nodiscard]] CampaignReport run_campaign(const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

}  // namespace emutile
