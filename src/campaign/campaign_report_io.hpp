#pragma once
/// \file campaign_report_io.hpp
/// Mergeable wire format for CampaignReport — how shard reports travel from
/// serviced instances back to the campaign coordinator.
///
/// to_csv()/to_json() are lossy presentation formats: they drop the raw
/// debug-work samples and the accumulators' internal moments that
/// CampaignReport::merge needs to recombine shards exactly. This module
/// serializes the *complete* mergeable state — every counter, each
/// accumulator's exact power sums, the retained work samples, and the
/// per-scenario baselines — as line-oriented text with round-trip-exact
/// doubles (format_double_exact), so
///
///   parse_campaign_report(serialize_campaign_report(r))
///
/// reconstructs a report that is indistinguishable from `r`: identical
/// to_csv()/to_json() bytes (including the per-scenario confidence-interval
/// columns — intervals are pure functions of the serialized counters and
/// moments, so they survive the round trip exactly and the format never has
/// to carry derived data), and merge() over parsed shard reports equals
/// merge() over the originals bit-for-bit. The session service writes this
/// form as out/<id>/report.shard and serves it over the SHARDREPORT wire
/// command; the coordinator parses and merges the shards into a report
/// byte-identical to an unsharded run_campaign; the adaptive driver's
/// service executor fetches round reports in this form before merging
/// rounds.
#include <filesystem>
#include <string>

#include "campaign/campaign_report.hpp"

namespace emutile {

/// Serialize the complete mergeable state (see the file comment).
[[nodiscard]] std::string serialize_campaign_report(
    const CampaignReport& report);

/// Parse the serialized form back. Throws CheckError with a line number on
/// malformed input (bad header, missing or out-of-order field, unparsable
/// number, wrong scenario count).
[[nodiscard]] CampaignReport parse_campaign_report(const std::string& text);

/// Read and parse a shard-report file. Throws CheckError on IO/parse errors.
[[nodiscard]] CampaignReport load_campaign_report_file(
    const std::filesystem::path& path);

}  // namespace emutile
