#include "campaign/campaign_report.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/table.hpp"

namespace emutile {

namespace {

/// Shortest-round-trip style numeric formatting shared by both emitters so
/// identical doubles always render identically.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string ratio(std::size_t a, std::size_t b) {
  return b == 0 ? "0" : num(static_cast<double>(a) / static_cast<double>(b));
}

/// Re-derive the campaign-level speedup geomeans from the scenario baselines
/// (shared by build_report and CampaignReport::merge).
void recompute_speedup_geomeans(CampaignReport& report) {
  std::vector<double> quick, incremental, full;
  for (const ScenarioStats& s : report.scenarios) {
    if (!s.baseline.measured) continue;
    quick.push_back(s.baseline.speedup_quick);
    incremental.push_back(s.baseline.speedup_incremental);
    full.push_back(s.baseline.speedup_full);
  }
  if (!quick.empty()) {
    report.speedup_quick_geomean = geomean(quick);
    report.speedup_incremental_geomean = geomean(incremental);
    report.speedup_full_geomean = geomean(full);
  }
}

}  // namespace

Interval ScenarioStats::detection_interval(double confidence) const {
  return wilson_interval(detected, completed(), confidence);
}

Interval ScenarioStats::correction_interval(double confidence) const {
  return wilson_interval(clean, detected, confidence);
}

Interval ScenarioStats::debug_work_interval(double confidence) const {
  return mean_interval(debug_work, confidence);
}

double CampaignReport::detection_rate() const {
  return completed == 0 ? 0.0
                        : static_cast<double>(detected) /
                              static_cast<double>(completed);
}

double CampaignReport::localization_rate() const {
  return detected == 0 ? 0.0
                       : static_cast<double>(narrowed) /
                             static_cast<double>(detected);
}

double CampaignReport::correction_rate() const {
  return detected == 0 ? 0.0
                       : static_cast<double>(clean) /
                             static_cast<double>(detected);
}

double CampaignReport::sessions_per_second() const {
  return wall_seconds <= 0.0
             ? 0.0
             : static_cast<double>(completed) / wall_seconds;
}

std::string CampaignReport::to_csv() const {
  Table t({"design", "error_kind", "tiles", "overhead", "sessions",
           "cancelled", "failed", "detected", "narrowed", "corrected",
           "clean", "det_lo", "det_hi", "corr_lo", "corr_hi",
           "suspects_mean", "iters_mean", "debug_work_mean",
           "debug_work_lo", "debug_work_hi", "debug_work_max",
           "build_work_mean", "speedup_quick", "speedup_incr",
           "speedup_full"});
  for (const ScenarioStats& s : scenarios) {
    const Interval det = s.detection_interval();
    const Interval corr = s.correction_interval();
    const Interval work = s.debug_work_interval();
    t.add_row({s.design, to_string(s.error_kind),
               std::to_string(s.num_tiles), num(s.target_overhead),
               std::to_string(s.sessions), std::to_string(s.cancelled),
               std::to_string(s.failed), std::to_string(s.detected),
               std::to_string(s.narrowed), std::to_string(s.corrected),
               std::to_string(s.clean),
               s.completed() ? num(det.lo) : "-",
               s.completed() ? num(det.hi) : "-",
               s.detected ? num(corr.lo) : "-",
               s.detected ? num(corr.hi) : "-",
               s.suspects.count() ? num(s.suspects.mean()) : "-",
               s.iterations.count() ? num(s.iterations.mean()) : "-",
               s.debug_work.count() ? num(s.debug_work.mean()) : "-",
               s.debug_work.count() > 1 ? num(work.lo) : "-",
               s.debug_work.count() > 1 ? num(work.hi) : "-",
               s.debug_work.count() ? num(s.debug_work.max()) : "-",
               s.build_work.count() ? num(s.build_work.mean()) : "-",
               s.baseline.measured ? num(s.baseline.speedup_quick) : "-",
               s.baseline.measured ? num(s.baseline.speedup_incremental) : "-",
               s.baseline.measured ? num(s.baseline.speedup_full) : "-"});
  }
  std::ostringstream os;
  t.print_csv(os);
  return os.str();
}

std::string CampaignReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\n"
     << "    \"sessions\": " << sessions << ",\n"
     << "    \"completed\": " << completed << ",\n"
     << "    \"cancelled\": " << cancelled << ",\n"
     << "    \"failed\": " << failed << ",\n"
     << "    \"detected\": " << detected << ",\n"
     << "    \"narrowed\": " << narrowed << ",\n"
     << "    \"corrected\": " << corrected << ",\n"
     << "    \"clean\": " << clean << ",\n"
     << "    \"detection_rate\": " << ratio(detected, completed) << ",\n"
     << "    \"localization_rate\": " << ratio(narrowed, detected) << ",\n"
     << "    \"correction_rate\": " << ratio(clean, detected) << ",\n"
     << "    \"debug_work\": {\"mean\": "
     << (debug_work.count() ? num(debug_work.mean()) : "0")
     << ", \"p50\": " << num(debug_work_p50)
     << ", \"p90\": " << num(debug_work_p90)
     << ", \"p99\": " << num(debug_work_p99)
     << ", \"max\": " << (debug_work.count() ? num(debug_work.max()) : "0")
     << "},\n"
     << "    \"build_work_mean\": "
     << (build_work.count() ? num(build_work.mean()) : "0") << ",\n"
     << "    \"speedup_quick_geomean\": " << num(speedup_quick_geomean)
     << ",\n"
     << "    \"speedup_incremental_geomean\": "
     << num(speedup_incremental_geomean) << ",\n"
     << "    \"speedup_full_geomean\": " << num(speedup_full_geomean) << "\n"
     << "  },\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioStats& s = scenarios[i];
    os << "    {\"design\": \"" << s.design << "\", \"error_kind\": \""
       << to_string(s.error_kind) << "\", \"tiles\": " << s.num_tiles
       << ", \"overhead\": " << num(s.target_overhead)
       << ", \"sessions\": " << s.sessions
       << ", \"cancelled\": " << s.cancelled << ", \"failed\": " << s.failed
       << ", \"detected\": " << s.detected << ", \"narrowed\": " << s.narrowed
       << ", \"corrected\": " << s.corrected << ", \"clean\": " << s.clean
       << ", \"debug_work_mean\": "
       << (s.debug_work.count() ? num(s.debug_work.mean()) : "0");
    // Interval fields appear only when defined, so the JSON never carries
    // infinities (which it cannot represent).
    if (s.completed() > 0) {
      const Interval det = s.detection_interval();
      os << ", \"detection_ci\": [" << num(det.lo) << ", " << num(det.hi)
         << "]";
    }
    if (s.detected > 0) {
      const Interval corr = s.correction_interval();
      os << ", \"correction_ci\": [" << num(corr.lo) << ", " << num(corr.hi)
         << "]";
    }
    if (s.debug_work.count() > 1) {
      const Interval work = s.debug_work_interval();
      os << ", \"debug_work_ci\": [" << num(work.lo) << ", " << num(work.hi)
         << "]";
    }
    if (s.baseline.measured)
      os << ", \"speedup_quick\": " << num(s.baseline.speedup_quick)
         << ", \"speedup_incremental\": "
         << num(s.baseline.speedup_incremental)
         << ", \"speedup_full\": " << num(s.baseline.speedup_full);
    os << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

namespace {

/// Mean of an accumulator, or 0 when it holds no samples — timing columns
/// must stay valid numbers even for scenarios served entirely from cache.
double mean_or_zero(const Accumulator& a) {
  return a.count() ? a.mean() : 0.0;
}

}  // namespace

std::string CampaignReport::timing_csv() const {
  std::vector<std::string> header{"design",        "error_kind",
                                  "tiles",         "overhead",
                                  "timed_sessions", "warm_builds",
                                  "wall_mean_s"};
  for (std::size_t p = 0; p < kNumSessionPhases; ++p)
    header.push_back(std::string(to_string(static_cast<SessionPhase>(p))) +
                     "_mean_s");
  Table t(header);
  for (const ScenarioStats& s : scenarios) {
    std::vector<std::string> row{
        s.design,
        to_string(s.error_kind),
        std::to_string(s.num_tiles),
        num(s.target_overhead),
        std::to_string(s.session_wall.count()),
        std::to_string(s.warm_builds),
        num(mean_or_zero(s.session_wall))};
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      row.push_back(num(mean_or_zero(s.phase_wall[p])));
    t.add_row(std::move(row));
  }
  std::ostringstream os;
  t.print_csv(os);
  return os.str();
}

std::string CampaignReport::timing_json() const {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\n"
     << "    \"timed_sessions\": " << session_wall.count() << ",\n"
     << "    \"warm_builds\": " << warm_builds << ",\n"
     << "    \"wall_mean_s\": " << num(mean_or_zero(session_wall));
  for (std::size_t p = 0; p < kNumSessionPhases; ++p)
    os << ",\n    \"" << to_string(static_cast<SessionPhase>(p))
       << "_mean_s\": " << num(mean_or_zero(phase_wall[p]));
  os << "\n  },\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioStats& s = scenarios[i];
    os << "    {\"design\": \"" << s.design << "\", \"error_kind\": \""
       << to_string(s.error_kind) << "\", \"tiles\": " << s.num_tiles
       << ", \"timed_sessions\": " << s.session_wall.count()
       << ", \"warm_builds\": " << s.warm_builds
       << ", \"wall_mean_s\": " << num(mean_or_zero(s.session_wall));
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      os << ", \"" << to_string(static_cast<SessionPhase>(p))
         << "_mean_s\": " << num(mean_or_zero(s.phase_wall[p]));
    os << "}" << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void CampaignReport::print_summary(std::ostream& os) const {
  os << "campaign: " << sessions << " sessions over " << scenarios.size()
     << " scenarios on " << num_threads
     << (num_threads == 1 ? " thread" : " threads") << "\n"
     << "  completed " << completed << ", cancelled " << cancelled
     << ", failed " << failed << "\n"
     << "  detection rate    " << num(100.0 * detection_rate()) << "%\n"
     << "  localization rate " << num(100.0 * localization_rate()) << "%\n"
     << "  correction rate   " << num(100.0 * correction_rate()) << "%\n";
  if (debug_work.count())
    os << "  debug work units: mean " << num(debug_work.mean()) << ", p50 "
       << num(debug_work_p50) << ", p90 " << num(debug_work_p90) << ", p99 "
       << num(debug_work_p99) << "\n";
  if (speedup_full_geomean > 0.0)
    os << "  tiled-ECO speedup (geomean work units): " << "vs Quick_ECO "
       << num(speedup_quick_geomean) << "x, vs Incremental_ECO "
       << num(speedup_incremental_geomean) << "x, vs full re-P&R "
       << num(speedup_full_geomean) << "x\n";
  if (cache_hits + cache_misses > 0)
    os << "  result cache: " << cache_hits << " hits, " << cache_misses
       << " misses\n";
  if (session_wall.count()) {
    os << "  session wall (over " << session_wall.count()
       << " timed sessions): mean " << num(session_wall.mean())
       << " s; phases:";
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      os << " " << to_string(static_cast<SessionPhase>(p)) << " "
         << num(mean_or_zero(phase_wall[p])) << "s";
    os << "\n";
    if (warm_builds > 0)
      os << "  warm-started builds: " << warm_builds << " of "
         << session_wall.count() << " timed sessions\n";
  }
  if (wall_seconds > 0.0)
    os << "  wall clock " << num(wall_seconds) << " s ("
       << num(sessions_per_second()) << " sessions/s)\n";
}

CampaignReport build_report(const CampaignSpec& spec,
                            const std::vector<CampaignJob>& jobs,
                            const std::vector<SessionOutcome>& outcomes,
                            const std::vector<ScenarioBaseline>& baselines) {
  EMUTILE_CHECK(jobs.size() == outcomes.size(),
                "outcome count does not match job count");
  CampaignReport report;
  report.scenarios.resize(spec.num_scenarios());

  // Seed scenario identities straight from the matrix (same enumeration
  // order as CampaignSpec::expand), so rows are labelled even when a
  // scenario ran zero sessions (sessions_per_scenario == 0).
  std::size_t scenario = 0;
  for (const CampaignDesign& design : spec.designs) {
    for (const ErrorKind kind : spec.error_kinds) {
      for (const TilingParams& tiling : spec.tilings) {
        ScenarioStats& s = report.scenarios[scenario++];
        s.design = design.name;
        s.error_kind = kind;
        s.num_tiles = tiling.num_tiles;
        s.target_overhead = tiling.target_overhead;
      }
    }
  }

  std::vector<double>& work_samples = report.debug_work_samples;
  work_samples.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CampaignJob& job = jobs[i];
    const SessionOutcome& out = outcomes[i];
    ScenarioStats& s = report.scenarios[job.scenario];
    ++s.sessions;
    ++report.sessions;
    if (!out.error.empty()) {
      ++s.failed;
      ++report.failed;
      continue;
    }
    if (out.report.cancelled) {
      ++s.cancelled;
      ++report.cancelled;
      continue;
    }
    ++report.completed;
    const DebugSessionReport& r = out.report;
    const double dwork = work_units(r.debug_effort);
    const double bwork = work_units(r.build_effort);
    s.debug_work.add(dwork);
    s.build_work.add(bwork);
    report.debug_work.add(dwork);
    report.build_work.add(bwork);
    work_samples.push_back(dwork);
    if (r.warm_started) {
      ++s.warm_builds;
      ++report.warm_builds;
    }
    // Cache-served sessions replay counters but never ran, so they carry no
    // wall clock; only actually-executed sessions feed the timing profile.
    if (r.wall_seconds > 0.0) {
      s.session_wall.add(r.wall_seconds);
      report.session_wall.add(r.wall_seconds);
      for (std::size_t p = 0; p < kNumSessionPhases; ++p) {
        s.phase_wall[p].add(r.phase_seconds[p]);
        report.phase_wall[p].add(r.phase_seconds[p]);
      }
    }
    if (!r.detection.error_detected) continue;
    ++s.detected;
    ++report.detected;
    s.suspects.add(static_cast<double>(r.localization.suspects.size()));
    s.iterations.add(static_cast<double>(r.localization.iterations.size()));
    if (r.localization.narrowed) {
      ++s.narrowed;
      ++report.narrowed;
    }
    if (r.correction.corrected) {
      ++s.corrected;
      ++report.corrected;
    }
    if (r.final_clean) {
      ++s.clean;
      ++report.clean;
    }
  }

  if (!work_samples.empty()) {
    report.debug_work_p50 = percentile(work_samples, 50.0);
    report.debug_work_p90 = percentile(work_samples, 90.0);
    report.debug_work_p99 = percentile(work_samples, 99.0);
  }

  if (!baselines.empty()) {
    EMUTILE_CHECK(baselines.size() == report.scenarios.size(),
                  "baseline count does not match scenario count");
    for (std::size_t sc = 0; sc < baselines.size(); ++sc)
      report.scenarios[sc].baseline = baselines[sc];
    recompute_speedup_geomeans(report);
  }
  return report;
}

void CampaignReport::merge(const CampaignReport& other) {
  // A report with no scenarios and no sessions is the merge identity (the
  // state a default-constructed accumulation starts from, and what an empty
  // shard list folds to). Only execution stats carry across, so wall clock
  // and cache accounting stay truthful either way around.
  const auto is_empty = [](const CampaignReport& r) {
    return r.scenarios.empty() && r.sessions == 0;
  };
  const auto fold_exec = [](CampaignReport& into, const CampaignReport& from) {
    into.wall_seconds += from.wall_seconds;
    into.num_threads = std::max(into.num_threads, from.num_threads);
    into.cache_hits += from.cache_hits;
    into.cache_misses += from.cache_misses;
    into.warm_builds += from.warm_builds;
    into.session_wall.merge(from.session_wall);
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      into.phase_wall[p].merge(from.phase_wall[p]);
  };
  if (is_empty(other)) {
    fold_exec(*this, other);
    return;
  }
  if (is_empty(*this)) {
    const CampaignReport exec_only = *this;
    *this = other;
    fold_exec(*this, exec_only);
    return;
  }
  EMUTILE_CHECK(scenarios.size() == other.scenarios.size(),
                "cannot merge reports with different scenario matrices ("
                    << scenarios.size() << " vs " << other.scenarios.size()
                    << ")");
  sessions += other.sessions;
  completed += other.completed;
  cancelled += other.cancelled;
  failed += other.failed;
  detected += other.detected;
  narrowed += other.narrowed;
  corrected += other.corrected;
  clean += other.clean;
  debug_work.merge(other.debug_work);
  build_work.merge(other.build_work);
  debug_work_samples.insert(debug_work_samples.end(),
                            other.debug_work_samples.begin(),
                            other.debug_work_samples.end());
  if (!debug_work_samples.empty()) {
    debug_work_p50 = percentile(debug_work_samples, 50.0);
    debug_work_p90 = percentile(debug_work_samples, 90.0);
    debug_work_p99 = percentile(debug_work_samples, 99.0);
  }
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
    ScenarioStats& s = scenarios[sc];
    const ScenarioStats& o = other.scenarios[sc];
    EMUTILE_CHECK(s.design == o.design && s.error_kind == o.error_kind &&
                      s.num_tiles == o.num_tiles &&
                      s.target_overhead == o.target_overhead,
                  "scenario " << sc << " mismatch: '" << s.design << "' vs '"
                              << o.design << "' — merge needs shards of the "
                              << "same campaign spec");
    s.sessions += o.sessions;
    s.cancelled += o.cancelled;
    s.failed += o.failed;
    s.detected += o.detected;
    s.narrowed += o.narrowed;
    s.corrected += o.corrected;
    s.clean += o.clean;
    s.suspects.merge(o.suspects);
    s.iterations.merge(o.iterations);
    s.debug_work.merge(o.debug_work);
    s.build_work.merge(o.build_work);
    s.warm_builds += o.warm_builds;
    s.session_wall.merge(o.session_wall);
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      s.phase_wall[p].merge(o.phase_wall[p]);
    // Baselines are a pure function of (master seed, design, tiling), so a
    // scenario measured by several shards carries identical values; keep
    // whichever side has one.
    if (!s.baseline.measured && o.baseline.measured) s.baseline = o.baseline;
  }
  recompute_speedup_geomeans(*this);
  wall_seconds += other.wall_seconds;
  num_threads = std::max(num_threads, other.num_threads);
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  warm_builds += other.warm_builds;
  session_wall.merge(other.session_wall);
  for (std::size_t p = 0; p < kNumSessionPhases; ++p)
    phase_wall[p].merge(other.phase_wall[p]);
}

CampaignReport merge_reports(const std::vector<CampaignReport>& shards) {
  CampaignReport merged;
  for (const CampaignReport& shard : shards) merged.merge(shard);
  return merged;
}

}  // namespace emutile
