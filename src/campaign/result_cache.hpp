#pragma once
/// \file result_cache.hpp
/// Disk-backed memoization of campaign sessions.
///
/// A campaign session's outcome is a pure function of (golden design,
/// session options) — everything downstream of the split-derived session
/// seed is deterministic. The cache exploits that: each session is content-
/// addressed by a hash of exactly the inputs that determine its result
/// (design name + design seed, error kind, session seed, pattern count,
/// tiling, localizer, and ECO options), so overlapping or resubmitted
/// campaign specs reuse already-computed sessions instead of re-running
/// them. Any change to a spec changes the derived keys and naturally
/// invalidates stale entries.
///
/// Only the aggregation-relevant slice of a session report is persisted
/// (CachedSession) — precisely the fields build_report() folds — so a report
/// built from cached outcomes is byte-identical to one built from fresh
/// runs. Cancelled sessions are never stored (cancellation reflects the
/// driver's state, not the spec), and neither are sessions that ended in an
/// exception — an error can be transient (resource exhaustion), and
/// memoizing it would replay the failure forever.
///
/// On-disk layout: one `<16-hex-key>.session` text file per entry inside the
/// cache directory, written atomically (temp file + rename). Corrupt or
/// truncated entries read as misses.
///
/// The cache can be size-bounded (set_max_bytes): when a store pushes the
/// total entry bytes past the bound, entries are evicted oldest
/// modification time first (ties broken by file name) until it fits again —
/// an approximate LRU where "recently stored" is what counts, cheap enough
/// to run on the store path and correct under concurrent evictors (a racing
/// removal is simply already-evicted). Eviction never throws; a cache that
/// cannot be pruned just stays big until the next store tries again.
///
/// In front of the disk tier sits a sharded in-memory index: 16 mutex-striped
/// shards keyed by the content hash, each a FIFO-bounded map of decoded
/// CachedSession values. A hot hit takes exactly one shard mutex — never the
/// cache-wide mutex, never the filesystem — so concurrent workers replaying
/// overlapping specs do not serialize on the cache. The index is a pure
/// read-through/write-through replica of immutable content-addressed data:
/// stores populate it, disk hits promote into it, clear() empties both
/// tiers. Disk eviction may leave an index entry behind; that is safe
/// because a key's value never changes (same key => same bytes).

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"

namespace emutile {

/// The aggregation-relevant slice of a SessionOutcome (see build_report).
struct CachedSession {
  std::string error;      ///< nonempty => the session threw
  bool detected = false;
  bool narrowed = false;
  bool corrected = false;
  bool clean = false;
  std::uint64_t suspects = 0;    ///< final candidate count
  std::uint64_t iterations = 0;  ///< localization iterations
  std::uint64_t build_placed = 0, build_routed = 0, build_expanded = 0;
  std::uint64_t debug_placed = 0, debug_routed = 0, debug_expanded = 0;
  std::uint64_t design_clbs = 0;
};

/// Content-address of one campaign job: a hash over every input that
/// determines the session's result. Requires a catalog design (a custom
/// builder closure has no stable content identity).
[[nodiscard]] std::uint64_t session_cache_key(const CampaignSpec& spec,
                                              const CampaignJob& job);

/// Project a finished outcome onto its cacheable slice (outcome must not be
/// cancelled).
[[nodiscard]] CachedSession to_cached(const SessionOutcome& outcome);

/// Reconstruct a SessionOutcome whose aggregation through build_report is
/// identical to the original's.
[[nodiscard]] SessionOutcome from_cached(const CachedSession& cached);

/// Thread-safe disk cache of CachedSession entries. Safe for concurrent use
/// by many workers and (thanks to atomic renames) by many processes sharing
/// one cache directory.
class ResultCache {
 public:
  /// Opens (and creates if needed) the cache directory.
  explicit ResultCache(std::filesystem::path dir);

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// Look up a session by key; counts a hit or a miss. Corrupt entries are
  /// misses.
  [[nodiscard]] std::optional<CachedSession> load(std::uint64_t key);

  /// Persist an entry (atomic; last writer wins on a racing key). Throws
  /// CheckError when the entry cannot be written.
  void store(std::uint64_t key, const CachedSession& session);

  /// Remove every entry (counters are kept).
  void clear();

  /// Bound the cache to `max_bytes` of entries, evicting oldest-mtime-first
  /// after each store that overflows it. 0 (the default) disables eviction.
  /// Takes effect immediately: shrinking the bound prunes on the next store.
  void set_max_bytes(std::size_t max_bytes);

  /// Bound each index shard to `per_shard` entries (FIFO eviction). 0
  /// disables the in-memory index entirely — every load goes to disk —
  /// which is how the coherence tests exercise the disk tier directly.
  void set_index_capacity(std::size_t per_shard);

  [[nodiscard]] std::size_t max_bytes() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  [[nodiscard]] std::size_t stores() const;
  [[nodiscard]] std::size_t evictions() const;  ///< entries evicted by the bound
  [[nodiscard]] std::size_t entries() const;  ///< files currently on disk
  [[nodiscard]] std::size_t bytes() const;    ///< total entry bytes on disk
  [[nodiscard]] std::size_t index_hits() const;    ///< loads served in memory
  [[nodiscard]] std::size_t index_misses() const;  ///< loads that went to disk
  [[nodiscard]] std::size_t index_stores() const;  ///< index insertions
  [[nodiscard]] std::size_t index_entries() const; ///< live in-memory entries

 private:
  static constexpr std::size_t kIndexShards = 16;

  /// One stripe of the in-memory index: its own mutex, a key->value map,
  /// FIFO order for bounded eviction, and per-shard counters that fold into
  /// the result_cache.index_* metrics.
  struct IndexShard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, CachedSession> map;
    std::deque<std::uint64_t> fifo;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t stores = 0;
  };

  [[nodiscard]] std::filesystem::path entry_path(std::uint64_t key) const;
  /// Evict oldest entries until the cache fits max_bytes (no-op when
  /// unbounded or already within). Best-effort and never throws.
  void evict_to_fit();
  /// Probe the in-memory index (one shard mutex, no disk). Counts the
  /// shard's hit/miss and the global index metrics.
  [[nodiscard]] std::optional<CachedSession> index_load(std::uint64_t key);
  /// Insert/refresh an index entry, FIFO-evicting past the shard bound.
  void index_store(std::uint64_t key, const CachedSession& session);

  std::filesystem::path dir_;
  mutable std::mutex mutex_;  // max_bytes + approx_bytes (cold paths only)
  std::mutex evict_mutex_;    // one evictor at a time (scan is O(entries))
  std::size_t max_bytes_ = 0;
  /// Running estimate of total entry bytes, so the common under-bound store
  /// needs no directory scan; re-synced with the disk whenever eviction
  /// scans. Other processes sharing the directory only make it an
  /// undercount (late eviction), never an overcount (early eviction).
  std::size_t approx_bytes_ = 0;
  // Hot-path counters are atomics so an index hit never touches mutex_.
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> stores_{0};
  std::atomic<std::size_t> evictions_{0};
  std::array<IndexShard, kIndexShards> index_;
  std::atomic<std::size_t> index_capacity_per_shard_{4096};
};

}  // namespace emutile
