#include "campaign/campaign_report_io.hpp"

#include <cstdlib>
#include <sstream>

#include "campaign/campaign_spec_io.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"

namespace emutile {

namespace {

void emit_acc(std::ostringstream& os, const char* key, const Accumulator& a) {
  os << key << " " << a.count();
  if (a.count() > 0)
    os << " " << format_double_exact(a.sum()) << " "
       << format_double_exact(a.sum_sq()) << " " << format_double_exact(a.min())
       << " " << format_double_exact(a.max());
  os << "\n";
}

/// Strict sequential reader: the format is machine-to-machine, so every line
/// must carry the expected key in the canonical order serialize emits.
struct ReportReader {
  std::istringstream in;
  int line_no = 0;
  std::istringstream rest;

  explicit ReportReader(const std::string& text) : in(text) {}

  [[noreturn]] void fail(const std::string& message) const {
    EMUTILE_CHECK(false, "shard report line " << line_no << ": " << message);
    std::abort();  // unreachable — EMUTILE_CHECK(false, ...) always throws
  }

  /// Advance to the next line and require its key to be `expected`.
  void expect(const char* expected) {
    std::string line;
    if (!std::getline(in, line)) fail(std::string("missing '") + expected +
                                      "' line (truncated report)");
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t space = line.find(' ');
    const std::string key = line.substr(0, space);
    if (key != expected)
      fail("expected '" + std::string(expected) + "', got '" + key + "'");
    rest = std::istringstream(
        space == std::string::npos ? "" : line.substr(space + 1));
  }

  std::string word(const char* what) {
    std::string w;
    if (!(rest >> w)) fail(std::string("missing ") + what);
    return w;
  }

  std::uint64_t u64(const char* what) {
    const std::string w = word(what);
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(w.c_str(), &end, 10);
    if (end == w.c_str() || *end != '\0' || w[0] == '-')
      fail(std::string("bad unsigned integer for ") + what + ": '" + w + "'");
    return v;
  }

  double real(const char* what) {
    const std::string w = word(what);
    char* end = nullptr;
    const double v = std::strtod(w.c_str(), &end);
    if (end == w.c_str() || *end != '\0')
      fail(std::string("bad number for ") + what + ": '" + w + "'");
    return v;
  }

  void done() {
    std::string extra;
    if (rest >> extra) fail("trailing token '" + extra + "' after value");
  }

  /// Require the input to be exhausted (call after the 'end' footer).
  void end_of_input() {
    std::string line;
    if (std::getline(in, line)) {
      ++line_no;
      fail("content after the 'end' footer");
    }
  }

  Accumulator acc(const char* key) {
    expect(key);
    const std::uint64_t n = u64("sample count");
    Accumulator a;
    if (n > 0) {
      const double sum = real("sum");
      const double sum_sq = real("sum_sq");
      const double min = real("min");
      const double max = real("max");
      a = Accumulator::from_parts(n, sum, sum_sq, min, max);
    }
    done();
    return a;
  }
};

}  // namespace

std::string serialize_campaign_report(const CampaignReport& r) {
  std::ostringstream os;
  os << "emutile-report v2\n"
     << "campaign " << r.sessions << " " << r.completed << " " << r.cancelled
     << " " << r.failed << " " << r.detected << " " << r.narrowed << " "
     << r.corrected << " " << r.clean << "\n";
  emit_acc(os, "debug_work", r.debug_work);
  emit_acc(os, "build_work", r.build_work);
  os << "percentiles " << format_double_exact(r.debug_work_p50) << " "
     << format_double_exact(r.debug_work_p90) << " "
     << format_double_exact(r.debug_work_p99) << "\n"
     << "geomeans " << format_double_exact(r.speedup_quick_geomean) << " "
     << format_double_exact(r.speedup_incremental_geomean) << " "
     << format_double_exact(r.speedup_full_geomean) << "\n"
     << "exec " << format_double_exact(r.wall_seconds) << " " << r.num_threads
     << " " << r.cache_hits << " " << r.cache_misses << "\n"
     << "samples " << r.debug_work_samples.size();
  for (const double sample : r.debug_work_samples)
    os << " " << format_double_exact(sample);
  os << "\n"
     << "scenarios " << r.scenarios.size() << "\n";
  for (const ScenarioStats& s : r.scenarios) {
    EMUTILE_CHECK(s.design.find_first_of(" \t\n") == std::string::npos,
                  "design name '" << s.design
                                  << "' contains whitespace — not "
                                     "representable in the report format");
    os << "scenario " << s.design << " " << to_string(s.error_kind) << " "
       << s.num_tiles << " " << format_double_exact(s.target_overhead) << "\n"
       << "counts " << s.sessions << " " << s.cancelled << " " << s.failed
       << " " << s.detected << " " << s.narrowed << " " << s.corrected << " "
       << s.clean << "\n";
    emit_acc(os, "suspects", s.suspects);
    emit_acc(os, "iterations", s.iterations);
    emit_acc(os, "debug_work", s.debug_work);
    emit_acc(os, "build_work", s.build_work);
    os << "baseline " << (s.baseline.measured ? 1 : 0);
    if (s.baseline.measured)
      os << " " << format_double_exact(s.baseline.speedup_quick) << " "
         << format_double_exact(s.baseline.speedup_incremental) << " "
         << format_double_exact(s.baseline.speedup_full);
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

CampaignReport parse_campaign_report(const std::string& text) {
  ReportReader p(text);
  p.expect("emutile-report");
  if (p.word("format version") != "v2") p.fail("unsupported format version");
  p.done();

  CampaignReport r;
  p.expect("campaign");
  r.sessions = p.u64("sessions");
  r.completed = p.u64("completed");
  r.cancelled = p.u64("cancelled");
  r.failed = p.u64("failed");
  r.detected = p.u64("detected");
  r.narrowed = p.u64("narrowed");
  r.corrected = p.u64("corrected");
  r.clean = p.u64("clean");
  p.done();
  r.debug_work = p.acc("debug_work");
  r.build_work = p.acc("build_work");
  p.expect("percentiles");
  r.debug_work_p50 = p.real("p50");
  r.debug_work_p90 = p.real("p90");
  r.debug_work_p99 = p.real("p99");
  p.done();
  p.expect("geomeans");
  r.speedup_quick_geomean = p.real("quick geomean");
  r.speedup_incremental_geomean = p.real("incremental geomean");
  r.speedup_full_geomean = p.real("full geomean");
  p.done();
  p.expect("exec");
  r.wall_seconds = p.real("wall seconds");
  r.num_threads = p.u64("thread count");
  r.cache_hits = p.u64("cache hits");
  r.cache_misses = p.u64("cache misses");
  p.done();
  p.expect("samples");
  const std::uint64_t num_samples = p.u64("sample count");
  r.debug_work_samples.reserve(num_samples);
  for (std::uint64_t i = 0; i < num_samples; ++i)
    r.debug_work_samples.push_back(p.real("work sample"));
  p.done();
  p.expect("scenarios");
  const std::uint64_t num_scenarios = p.u64("scenario count");
  r.scenarios.resize(num_scenarios);
  for (ScenarioStats& s : r.scenarios) {
    p.expect("scenario");
    s.design = p.word("design name");
    try {
      s.error_kind = error_kind_from_string(p.word("error kind"));
    } catch (const CheckError&) {
      p.fail("unknown error kind");
    }
    s.num_tiles = static_cast<int>(p.u64("tile count"));
    s.target_overhead = p.real("target overhead");
    p.done();
    p.expect("counts");
    s.sessions = p.u64("sessions");
    s.cancelled = p.u64("cancelled");
    s.failed = p.u64("failed");
    s.detected = p.u64("detected");
    s.narrowed = p.u64("narrowed");
    s.corrected = p.u64("corrected");
    s.clean = p.u64("clean");
    p.done();
    s.suspects = p.acc("suspects");
    s.iterations = p.acc("iterations");
    s.debug_work = p.acc("debug_work");
    s.build_work = p.acc("build_work");
    p.expect("baseline");
    const std::uint64_t measured = p.u64("measured flag");
    if (measured > 1) p.fail("baseline flag must be 0 or 1");
    s.baseline.measured = measured == 1;
    if (s.baseline.measured) {
      s.baseline.speedup_quick = p.real("quick speedup");
      s.baseline.speedup_incremental = p.real("incremental speedup");
      s.baseline.speedup_full = p.real("full speedup");
    }
    p.done();
  }
  p.expect("end");
  p.done();
  p.end_of_input();
  return r;
}

CampaignReport load_campaign_report_file(const std::filesystem::path& path) {
  return parse_campaign_report(read_file(path));
}

}  // namespace emutile
