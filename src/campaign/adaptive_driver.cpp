#include "campaign/adaptive_driver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/tiled_baseline_cache.hpp"
#include "util/check.hpp"

namespace emutile {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stand-in magnitude for an infinite half-width inside the allocation
/// ranking: large enough to outrank any real interval (Wilson widths are at
/// most 0.5 and relative work widths of this size mean "no information"),
/// finite so the sqrt(n/(n+k)) shrink model still spreads sessions across
/// several starved scenarios instead of pinning them all on the first one.
constexpr double kWide = 1e6;

/// Sample count the shrink model reasons about — how many observations the
/// scenario's metric currently rests on.
std::size_t metric_samples(const ScenarioStats& s, AdaptiveMetric metric) {
  switch (metric) {
    case AdaptiveMetric::kDetection: return s.completed();
    case AdaptiveMetric::kCorrection: return s.detected;
    case AdaptiveMetric::kDebugWork: return s.debug_work.count();
  }
  return 0;
}

}  // namespace

const char* to_string(AdaptiveMetric metric) {
  switch (metric) {
    case AdaptiveMetric::kDetection: return "detection";
    case AdaptiveMetric::kCorrection: return "correction";
    case AdaptiveMetric::kDebugWork: return "debug-work";
  }
  return "?";
}

AdaptiveCampaignDriver::AdaptiveCampaignDriver(AdaptiveOptions options)
    : options_(std::move(options)) {}

double AdaptiveCampaignDriver::scenario_halfwidth(const ScenarioStats& stats,
                                                  AdaptiveMetric metric,
                                                  double confidence) {
  switch (metric) {
    case AdaptiveMetric::kDetection:
      return stats.detection_interval(confidence).half_width();
    case AdaptiveMetric::kCorrection:
      return stats.correction_interval(confidence).half_width();
    case AdaptiveMetric::kDebugWork: {
      const double hw = stats.debug_work_interval(confidence).half_width();
      if (std::isinf(hw)) return kInf;
      const double mean = stats.debug_work.mean();
      // Relative width, so small and large designs compare on one scale.
      return mean > 0.0 ? hw / mean : kInf;
    }
  }
  return kInf;
}

std::vector<int> AdaptiveCampaignDriver::allocate(
    const std::vector<ScenarioStats>& scenarios, std::size_t budget) const {
  std::vector<int> alloc(scenarios.size(), 0);
  std::vector<double> width(scenarios.size(), 0.0);
  std::vector<std::size_t> samples(scenarios.size(), 0);
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const double hw = scenario_halfwidth(scenarios[s], options_.metric,
                                         options_.confidence);
    width[s] = std::isinf(hw) ? kWide : hw;
    samples[s] = std::max<std::size_t>(1, metric_samples(scenarios[s],
                                                         options_.metric));
  }
  // One session at a time to the scenario whose interval is predicted to
  // still be the widest, under the standard-error shrink model
  // hw(n + k) ~ hw(n) * sqrt(n / (n + k)). Scenarios predicted at or below
  // the target get nothing; ties break toward the lowest scenario index so
  // the allocation is a pure function of the merged report.
  for (std::size_t slot = 0; slot < budget; ++slot) {
    std::size_t best = scenarios.size();
    double best_predicted = options_.target_halfwidth;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const double n = static_cast<double>(samples[s]);
      const double predicted =
          width[s] * std::sqrt(n / (n + static_cast<double>(alloc[s])));
      if (predicted > best_predicted) {
        best_predicted = predicted;
        best = s;
      }
    }
    if (best == scenarios.size()) break;  // everything predicted converged
    ++alloc[best];
  }
  return alloc;
}

AdaptiveResult AdaptiveCampaignDriver::run(const CampaignSpec& base) {
  EMUTILE_CHECK(base.shard_count == 1,
                "the adaptive driver shards rounds itself — pass the spec "
                "unsharded");
  EMUTILE_CHECK(base.sessions_by_scenario.empty() && base.replica_base.empty(),
                "the adaptive driver owns the per-scenario budget vectors");
  EMUTILE_CHECK(options_.target_halfwidth > 0.0,
                "target_halfwidth must be positive");
  EMUTILE_CHECK(options_.initial_sessions >= 1,
                "the exploratory round needs at least one session per "
                "scenario");
  const std::size_t num_scenarios = base.num_scenarios();
  EMUTILE_CHECK(num_scenarios > 0, "adaptive campaign has no scenarios");

  const std::size_t max_total = options_.max_total_sessions > 0
                                    ? options_.max_total_sessions
                                    : base.num_sessions();
  // The exploratory round cannot estimate anything with zero replicas, so
  // one session per scenario is the hard floor of any adaptive budget.
  EMUTILE_CHECK(max_total >= num_scenarios,
                "session budget " << max_total << " cannot cover the "
                                  << num_scenarios
                                  << "-scenario exploratory round (one "
                                     "session per scenario minimum)");
  const std::size_t round_budget =
      options_.round_budget > 0 ? options_.round_budget : num_scenarios;

  AdaptiveRoundExecutor execute = options_.executor;
  // Every round re-runs the same (design, tiling) pairs, so the in-process
  // executor shares one warm-start baseline cache across rounds instead of
  // letting each run_campaign rebuild the pre-injection baselines.
  TiledBaselineCache round_baselines;
  if (!execute) {
    execute = [this, &round_baselines](const CampaignSpec& round_spec,
                                       std::size_t) {
      CampaignOptions engine = options_.engine;
      if (engine.warm_start && engine.baseline_cache == nullptr)
        engine.baseline_cache = &round_baselines;
      return run_campaign(round_spec, engine);
    };
  }

  // Exploratory round: uniform, clamped into the total budget.
  const int initial = static_cast<int>(std::max<std::size_t>(
      1, std::min<std::size_t>(
             static_cast<std::size_t>(options_.initial_sessions),
             max_total / num_scenarios)));
  std::vector<int> replicas_done(num_scenarios, 0);
  std::vector<int> alloc(num_scenarios, initial);

  AdaptiveResult result;
  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    CampaignSpec round_spec = base;
    round_spec.sessions_per_scenario = 0;
    round_spec.sessions_by_scenario = alloc;
    round_spec.replica_base = replicas_done;
    // Baselines are a pure function of (master seed, design, tiling) —
    // replica-independent — so one measurement in the exploratory round
    // covers every later round of the same campaign.
    round_spec.measure_baselines = base.measure_baselines && round == 0;

    result.report.merge(execute(round_spec, round));
    std::size_t round_sessions = 0;
    for (std::size_t s = 0; s < num_scenarios; ++s) {
      replicas_done[s] += alloc[s];
      round_sessions += static_cast<std::size_t>(alloc[s]);
    }
    result.total_sessions += round_sessions;
    result.rounds = round + 1;
    EMUTILE_CHECK(result.report.scenarios.size() == num_scenarios,
                  "round executor returned a report with "
                      << result.report.scenarios.size() << " scenarios for a "
                      << num_scenarios << "-scenario spec");

    AdaptiveRoundInfo info;
    info.round = round;
    info.sessions = round_sessions;
    info.total_sessions = result.total_sessions;
    info.max_halfwidth = 0.0;
    for (const ScenarioStats& s : result.report.scenarios) {
      const double hw =
          scenario_halfwidth(s, options_.metric, options_.confidence);
      info.max_halfwidth = std::max(info.max_halfwidth, hw);
      if (hw > options_.target_halfwidth) ++info.scenarios_above_target;
    }
    result.max_halfwidth = info.max_halfwidth;
    result.round_log.push_back(info);
    if (options_.on_round) options_.on_round(info);

    if (info.scenarios_above_target == 0) {
      result.converged = true;
      break;
    }
    if (result.total_sessions >= max_total) break;

    alloc = allocate(result.report.scenarios,
                     std::min(round_budget, max_total - result.total_sessions));
    bool any = false;
    for (const int n : alloc) any = any || n > 0;
    if (!any) break;  // every wide scenario is predicted converged already
  }
  return result;
}

}  // namespace emutile
