#pragma once
/// \file campaign_spec_io.hpp
/// Textual interchange format for CampaignSpec — the wire format of the
/// session service (spool files, socket submissions) and the basis of the
/// result cache's content addressing.
///
/// The format is line-oriented text: `# comments`, blank lines, and one
/// `key value...` pair per line between the `emutile-campaign v1` header and
/// the `end` footer. Repeated keys build lists (designs, error kinds,
/// tilings); scalar keys may appear at most once. Only catalog designs are
/// representable — a custom netlist builder is a C++ closure and has no
/// textual form.
///
/// serialize_campaign_spec() emits the *canonical* form: fixed key order,
/// every field explicit, doubles printed with enough digits to round-trip
/// exactly. Two specs hash equal iff their canonical forms are identical, so
/// spec_content_hash() is a content address: any semantic change (seed,
/// matrix, tiling knob, localizer option...) yields a new hash, which is how
/// the service keys output directories and the cache detects invalidation.

#include <cstdint>
#include <filesystem>
#include <string>

#include "campaign/campaign_spec.hpp"

namespace emutile {

/// Parse a spec from the line-oriented text format. Throws CheckError with a
/// line number on malformed input (bad header, unknown key, duplicate scalar
/// key, unparsable number, unknown design or error kind, bad shard range).
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& text);

/// Read and parse a spec file. Throws CheckError on IO or parse errors.
[[nodiscard]] CampaignSpec load_campaign_spec_file(
    const std::filesystem::path& path);

/// Canonical serialization (see the file comment). Throws CheckError if any
/// design carries a custom builder. parse(serialize(s)) reproduces `s`.
[[nodiscard]] std::string serialize_campaign_spec(const CampaignSpec& spec);

/// FNV-1a 64-bit hash of the canonical serialization.
[[nodiscard]] std::uint64_t spec_content_hash(const CampaignSpec& spec);

/// spec_content_hash rendered as 16 lowercase hex digits.
[[nodiscard]] std::string spec_content_hash_hex(const CampaignSpec& spec);

/// Parse an ErrorKind from its to_string() name. Throws CheckError.
[[nodiscard]] ErrorKind error_kind_from_string(const std::string& name);

/// FNV-1a 64-bit hash of a byte string (exposed for the result cache).
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

/// Shortest decimal representation of `v` that strtod round-trips exactly —
/// the double format of every canonical/content-addressed string (spec
/// serialization, cache keys). One definition so the two can never drift.
[[nodiscard]] std::string format_double_exact(double v);

/// `v` as 16 lowercase hex digits (spec hashes, cache entry names).
[[nodiscard]] std::string format_u64_hex(std::uint64_t v);

/// Trace-context transport for *spool* submissions, where there is no
/// request line to carry a `traceparent=` token: the context rides as a
/// `# traceparent=<trace>-<span>` comment prepended to the spec text. The
/// parser skips comments, the canonical serialization never emits them, so
/// content hashes, cache keys, and spec round-trips are all unaffected.
[[nodiscard]] std::string prepend_traceparent(const std::string& spec_text,
                                              const std::string& traceparent);

/// The traceparent comment's value if `spec_text` carries one, else "".
[[nodiscard]] std::string extract_traceparent(const std::string& spec_text);

}  // namespace emutile
