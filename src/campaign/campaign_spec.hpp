#pragma once
/// \file campaign_spec.hpp
/// Declarative description of a debug campaign: the scenario matrix
/// (designs x error kinds x tiling sweep points) and how many replica
/// sessions to run per scenario.
///
/// expand() flattens the matrix into a job list with a stable global order.
/// Every job's session seed is derived from the campaign master seed with
/// splitmix64 stream-splitting (split_seed) over the (scenario, replica)
/// pair — never from `seed + i` arithmetic and never from the job's position
/// in the list — so a campaign's results are a pure function of its spec,
/// independent of worker count and scheduling order, and every scenario owns
/// an unbounded replica stream: two specs that differ only in how many
/// replicas each scenario runs draw the *same* sessions for the replicas
/// they share. That superset property is what lets the adaptive driver
/// (adaptive_driver.hpp) grow wide-interval scenarios round by round while
/// staying byte-identical to a uniform run on the shared prefix.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "debug/debug_loop.hpp"
#include "netlist/netlist.hpp"

namespace emutile {

/// One design under campaign. `builder` generates the golden netlist from a
/// seed; when empty the name is looked up in the paper catalog
/// (build_paper_design).
struct CampaignDesign {
  std::string name;
  std::function<Netlist(std::uint64_t seed)> builder;
};

/// One fully-resolved debug session of a campaign. `options.seed` already
/// carries the split-derived per-session seed.
struct CampaignJob {
  std::size_t index = 0;         ///< global job id (stable expansion order)
  std::size_t scenario = 0;      ///< index into the scenario matrix
  std::size_t design_index = 0;  ///< index into CampaignSpec::designs
  std::size_t replica = 0;       ///< replica number within the scenario
  DebugSessionOptions options;
};

/// The campaign scenario matrix. A scenario is one (design, error kind,
/// tiling point) triple; each scenario runs `sessions_per_scenario` sessions
/// with independent seeds.
struct CampaignSpec {
  std::vector<CampaignDesign> designs;
  std::vector<ErrorKind> error_kinds = {ErrorKind::kLutFunction,
                                        ErrorKind::kWrongPolarity,
                                        ErrorKind::kWrongConnection};
  /// Tiling sweep points; the per-session seed overrides each point's seed.
  std::vector<TilingParams> tilings = {TilingParams{}};
  int sessions_per_scenario = 1;
  /// Per-scenario budget overrides for adaptive rounds. When non-empty it
  /// must carry num_scenarios() entries and scenario `s` runs
  /// sessions_by_scenario[s] sessions (sessions_per_scenario is ignored),
  /// starting at absolute replica index replica_base[s] (0 when replica_base
  /// is empty). Replica indices select positions in the scenario's seed
  /// stream, so a follow-up round with replica_base picking up where an
  /// earlier round stopped extends that round's sample instead of redrawing
  /// it.
  std::vector<int> sessions_by_scenario;
  std::vector<int> replica_base;  ///< first replica per scenario (see above)
  std::uint64_t master_seed = 1;
  std::size_t num_patterns = 256;
  LocalizerOptions localizer;
  EcoOptions eco;
  /// When set, the engine additionally measures per-scenario speedup of the
  /// tiled ECO against the Quick_ECO, Incremental_ECO, and full re-P&R
  /// baselines (work-unit ratios on a standard change, as in the Figure 5
  /// bench — the full strategy set).
  bool measure_baselines = false;
  /// Shard selection (see shard()): this spec covers the shard_index-th of
  /// shard_count contiguous slices of the canonical job list. Job indices,
  /// seeds, and scenario numbering are those of the unsharded campaign, so
  /// per-shard reports merge back into the unsharded report exactly.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Explicit job-range restriction (see slice()): when sliced() this spec
  /// covers only global job indices [slice_begin, slice_end) — intersected
  /// with the shard selection above. slice_begin == slice_end == 0 means
  /// unset. This is the coordinator's work-stealing handle: a stolen half of
  /// a shard is the same spec narrowed to the unfinished index range, so
  /// seeds and indices stay those of the unsharded campaign.
  std::size_t slice_begin = 0;
  std::size_t slice_end = 0;

  /// Append a design resolved from the paper catalog (Table 1 name).
  void add_catalog_design(const std::string& name);

  /// Append a custom design with an explicit netlist builder.
  void add_design(std::string name,
                  std::function<Netlist(std::uint64_t)> builder);

  [[nodiscard]] std::size_t num_scenarios() const;
  [[nodiscard]] std::size_t num_sessions() const;

  /// Seed for building design `design_index`'s golden netlist.
  [[nodiscard]] std::uint64_t design_seed(std::size_t design_index) const;

  /// Seed of replica `replica` in scenario `scenario`'s session stream — a
  /// pure function of (master_seed, scenario, replica), independent of any
  /// other scenario's budget.
  [[nodiscard]] std::uint64_t session_seed(std::size_t scenario,
                                           std::size_t replica) const;

  /// Seed for a baseline speedup measurement; `pair_index` identifies the
  /// unique (design, tiling) pair being measured.
  [[nodiscard]] std::uint64_t baseline_seed(std::size_t pair_index) const;

  /// Seed of the physical build shared by every session of (design, tiling)
  /// pair `pair_index` (= design_index * tilings.size() + tiling_index).
  /// Sessions of one scenario sample over injected errors on *one*
  /// implementation — the session seed drives injection/patterns/localizer
  /// only — which is what lets campaigns share a pre-injection tiled
  /// baseline across sessions (warm start) without changing any report byte.
  [[nodiscard]] std::uint64_t build_seed(std::size_t pair_index) const;

  /// Stable job-slicing for multi-process/multi-host campaigns: a copy of
  /// this spec restricted to the `index`-th of `count` contiguous slices of
  /// the canonical job list. Each job keeps its unsharded global index and
  /// split-derived seed, so the union of all shards' expand() outputs is
  /// exactly the unsharded expand() and CampaignReport::merge can recombine
  /// the per-shard reports.
  [[nodiscard]] CampaignSpec shard(std::size_t index, std::size_t count) const;

  /// True when an explicit job-range restriction is in effect.
  [[nodiscard]] bool sliced() const { return slice_end > slice_begin; }

  /// A copy of this spec restricted to global job indices [begin, end) — the
  /// work-stealing primitive. Unlike shard(), slicing composes with an
  /// existing shard/slice selection as long as it only narrows: the result
  /// covers the intersection. Requires begin < end and, when already
  /// sliced(), [begin, end) ⊆ [slice_begin, slice_end).
  [[nodiscard]] CampaignSpec slice(std::size_t begin, std::size_t end) const;

  /// Flatten the matrix into jobs ordered (design, error kind, tiling,
  /// replica) — the canonical order every aggregate is computed in. When the
  /// spec is sharded, only this shard's contiguous slice is returned (still
  /// carrying unsharded indices and seeds).
  [[nodiscard]] std::vector<CampaignJob> expand() const;
};

}  // namespace emutile
