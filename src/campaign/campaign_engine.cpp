#include "campaign/campaign_engine.hpp"

#include <chrono>
#include <exception>
#include <mutex>
#include <utility>

#include "designs/catalog.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace emutile {

namespace {

/// Tiled-vs-baseline work ratio on the scripted standard change.
ScenarioBaseline measure_baseline(const CampaignSpec& spec,
                                  std::size_t design_index,
                                  TilingParams tiling, const Netlist& golden,
                                  std::uint64_t seed) {
  ScenarioBaseline result;
  try {
    tiling.seed = seed;
    TiledDesign tiled = TilingEngine::build(Netlist(golden), tiling);
    TiledDesign for_quick = tiled.clone();
    TiledDesign for_full = tiled.clone();

    const EcoStrategyResult rt =
        tiled_eco(tiled, scripted_standard_change(tiled), spec.eco);
    DesignHierarchy hier(spec.designs[design_index].name);
    hier.bind_remaining(for_quick.netlist, hier.add_block("functional_block"));
    const EcoStrategyResult rq =
        quick_eco(for_quick, hier, scripted_standard_change(for_quick), seed);
    const EcoStrategyResult rf =
        full_eco(for_full, scripted_standard_change(for_full), seed);

    const double tiled_work = work_units(rt.effort);
    if (!rt.success || tiled_work <= 0.0) return result;
    result.measured = true;
    result.speedup_quick = work_units(rq.effort) / tiled_work;
    result.speedup_full = work_units(rf.effort) / tiled_work;
  } catch (const std::exception& e) {
    EMUTILE_WARN("baseline measurement failed: " << e.what());
  }
  return result;
}

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  EMUTILE_CHECK(options.num_threads >= 1, "campaign needs at least 1 thread");
  const std::vector<CampaignJob> jobs = spec.expand();
  ThreadPool pool(options.num_threads);

  // Build every golden netlist once; sessions share them read-only (each
  // session copies before mutating).
  std::vector<Netlist> goldens(spec.designs.size());
  std::vector<std::string> golden_errors(spec.designs.size());
  pool.parallel_for(spec.designs.size(), [&](std::size_t i) {
    try {
      const CampaignDesign& d = spec.designs[i];
      goldens[i] = d.builder ? d.builder(spec.design_seed(i))
                             : build_paper_design(d.name, spec.design_seed(i));
    } catch (const std::exception& e) {
      golden_errors[i] = e.what();
    }
  });

  std::vector<SessionOutcome> outcomes(jobs.size());
  std::size_t finished = 0;  // guarded by progress_mutex
  std::mutex progress_mutex;
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const CampaignJob& job = jobs[i];
    SessionOutcome& out = outcomes[i];
    if (!golden_errors[job.design_index].empty()) {
      out.error = "design '" + spec.designs[job.design_index].name +
                  "' failed to build: " + golden_errors[job.design_index];
    } else if (options.cancel && options.cancel()) {
      out.report.cancelled = true;
    } else {
      DebugSessionOptions session = job.options;
      if (options.cancel) {
        // Compose campaign cancellation with any caller-provided hook.
        const auto user_hook = std::move(session.hooks.on_phase);
        const auto cancel = options.cancel;
        session.hooks.on_phase = [user_hook, cancel](SessionPhase phase) {
          if (cancel()) return false;
          return !user_hook || user_hook(phase);
        };
      }
      try {
        out.report = run_debug_session(goldens[job.design_index], session);
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    }
    if (options.on_progress) {
      // Count and report under one lock so `done` values arrive in order.
      std::lock_guard<std::mutex> lock(progress_mutex);
      options.on_progress(++finished, jobs.size());
    }
  });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<ScenarioBaseline> baselines;
  if (spec.measure_baselines) {
    // The baseline depends only on (design, tiling), so measure each unique
    // pair once and fan the result out across the error-kind scenarios.
    const std::size_t unique = spec.designs.size() * spec.tilings.size();
    std::vector<ScenarioBaseline> per_pair(unique);
    pool.parallel_for(unique, [&](std::size_t u) {
      const std::size_t di = u / spec.tilings.size();
      const std::size_t ti = u % spec.tilings.size();
      if (!golden_errors[di].empty()) return;
      if (options.cancel && options.cancel()) return;
      per_pair[u] = measure_baseline(spec, di, spec.tilings[ti], goldens[di],
                                     spec.baseline_seed(u));
    });
    baselines.resize(spec.num_scenarios());
    for (std::size_t sc = 0; sc < baselines.size(); ++sc) {
      const std::size_t ti = sc % spec.tilings.size();
      const std::size_t di =
          sc / (spec.tilings.size() * spec.error_kinds.size());
      baselines[sc] = per_pair[di * spec.tilings.size() + ti];
    }
  }

  CampaignReport report = build_report(spec, jobs, outcomes, baselines);
  report.wall_seconds = wall_seconds;
  report.num_threads = options.num_threads;
  return report;
}

}  // namespace emutile
