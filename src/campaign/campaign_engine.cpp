#include "campaign/campaign_engine.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "campaign/campaign_spec_io.hpp"
#include "campaign/result_cache.hpp"
#include "core/tiled_baseline_cache.hpp"
#include "designs/catalog.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/fault_inject.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace emutile {

Netlist build_campaign_golden(const CampaignSpec& spec,
                              std::size_t design_index) {
  const CampaignDesign& d = spec.designs.at(design_index);
  const std::uint64_t seed = spec.design_seed(design_index);
  return d.builder ? d.builder(seed) : build_paper_design(d.name, seed);
}

ScenarioBaseline measure_baseline_pair(const CampaignSpec& spec,
                                       std::size_t pair_index,
                                       const Netlist& golden) {
  const std::size_t design_index = pair_index / spec.tilings.size();
  TilingParams tiling = spec.tilings[pair_index % spec.tilings.size()];
  const std::uint64_t seed = spec.baseline_seed(pair_index);
  ScenarioBaseline result;
  try {
    tiling.seed = seed;
    TiledDesign tiled = TilingEngine::build(Netlist(golden), tiling);
    TiledDesign for_quick = tiled.clone();
    TiledDesign for_incremental = tiled.clone();
    TiledDesign for_full = tiled.clone();

    const EcoStrategyResult rt =
        tiled_eco(tiled, scripted_standard_change(tiled), spec.eco);
    DesignHierarchy hier(spec.designs[design_index].name);
    hier.bind_remaining(for_quick.netlist, hier.add_block("functional_block"));
    const EcoStrategyResult rq =
        quick_eco(for_quick, hier, scripted_standard_change(for_quick), seed);
    IncrementalOptions incremental_options;
    incremental_options.seed = seed;
    const EcoStrategyResult ri =
        incremental_eco(for_incremental,
                        scripted_standard_change(for_incremental),
                        incremental_options);
    const EcoStrategyResult rf =
        full_eco(for_full, scripted_standard_change(for_full), seed);

    const double tiled_work = work_units(rt.effort);
    const double quick_work = work_units(rq.effort);
    const double incremental_work = work_units(ri.effort);
    const double full_work = work_units(rf.effort);
    // All four strategies must have done real work, or the ratios (and the
    // geomean over them) are meaningless.
    if (!rt.success || tiled_work <= 0.0 || quick_work <= 0.0 ||
        incremental_work <= 0.0 || full_work <= 0.0)
      return result;
    result.measured = true;
    result.speedup_quick = quick_work / tiled_work;
    result.speedup_incremental = incremental_work / tiled_work;
    result.speedup_full = full_work / tiled_work;
  } catch (const std::exception& e) {
    EMUTILE_WARN("baseline measurement failed: " << e.what());
  }
  return result;
}

std::vector<ScenarioBaseline> fan_out_baselines(
    const CampaignSpec& spec, const std::vector<ScenarioBaseline>& per_pair) {
  EMUTILE_CHECK(per_pair.size() == spec.designs.size() * spec.tilings.size(),
                "per-pair baseline count does not match the spec");
  std::vector<ScenarioBaseline> baselines(spec.num_scenarios());
  for (std::size_t sc = 0; sc < baselines.size(); ++sc) {
    const std::size_t ti = sc % spec.tilings.size();
    const std::size_t di =
        sc / (spec.tilings.size() * spec.error_kinds.size());
    baselines[sc] = per_pair[di * spec.tilings.size() + ti];
  }
  return baselines;
}

namespace {

/// Content key of the (design, tiling) pair's pre-injection baseline: the
/// golden netlist identity (catalog name + design seed) plus every tiling
/// parameter. Custom-builder designs have no stable content identity and
/// never share a baseline cache entry.
std::string tiled_baseline_key(const CampaignSpec& spec,
                               const CampaignJob& job) {
  const TilingParams& t = job.options.tiling;
  std::ostringstream os;
  os << "emutile-baseline-key v1 design="
     << spec.designs[job.design_index].name
     << " dseed=" << spec.design_seed(job.design_index) << " tiling="
     << t.num_tiles << "," << format_double_exact(t.target_overhead) << ","
     << format_double_exact(t.placer_effort) << "," << t.tracks_per_channel
     << "," << t.route_headroom << "," << t.seed;
  return os.str();
}

}  // namespace

SessionOutcome run_campaign_session(const CampaignSpec& spec,
                                    const CampaignJob& job,
                                    const Netlist& golden,
                                    const std::function<bool()>& cancel,
                                    ResultCache* cache, CacheLookup* lookup,
                                    TiledBaselineCache* baselines) {
  if (lookup) *lookup = CacheLookup::kNotConsulted;
  SessionOutcome out;
  if (cancel && cancel()) {
    out.report.cancelled = true;
    return out;
  }
  const bool cacheable =
      cache != nullptr && !spec.designs[job.design_index].builder;
  std::uint64_t key = 0;
  if (cacheable) {
    key = session_cache_key(spec, job);
    // Cache IO failures (unreadable directory, disk trouble) must not break
    // the never-throws contract — they degrade to an uncached run.
    try {
      const ScopedSpan lookup_span(Tracer::global(), "cache.lookup");
      if (std::optional<CachedSession> hit = cache->load(key)) {
        if (lookup) *lookup = CacheLookup::kHit;
        return from_cached(*hit);
      }
    } catch (const std::exception& e) {
      EMUTILE_WARN("cache load failed for key " << key << ": " << e.what());
    }
    if (lookup) *lookup = CacheLookup::kMiss;
  }
  DebugSessionOptions session = job.options;
  // Warm start: share one pre-injection tiled baseline across every session
  // of this (design, tiling) pair. Connection errors change connectivity
  // and would build cold anyway, so they skip the lookup; a baseline build
  // failure degrades to a cold build (the session will hit the same error
  // and record it properly).
  double baseline_wall_seconds = 0.0;
  if (baselines != nullptr && !spec.designs[job.design_index].builder &&
      job.options.error_kind != ErrorKind::kWrongConnection) {
    const auto baseline_t0 = std::chrono::steady_clock::now();
    try {
      session.warm_baseline = baselines->get_or_build(
          tiled_baseline_key(spec, job), [&] {
            return TilingEngine::build(Netlist(golden), job.options.tiling);
          });
    } catch (const std::exception& e) {
      EMUTILE_WARN("baseline build failed, session builds cold: "
                   << e.what());
    }
    // The session that builds the shared baseline did real build work; fold
    // it into this session's build phase below so the timing profile never
    // under-reports warm-start mode (cache hits add ~nothing here).
    baseline_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      baseline_t0)
            .count();
  }
  // Per-phase trace spans: on_phase fires just before each phase on this
  // thread, so the hook closes the previous phase's span and opens the next
  // (the TLS parent — session.run — is already on the stack). The span state
  // sits behind a shared_ptr because hooks are copyable std::functions.
  struct PhaseSpans {
    std::optional<ScopedSpan> open;
    void enter(SessionPhase phase) {
      open.reset();
      open.emplace(Tracer::global(),
                   std::string("session.phase.") + to_string(phase));
    }
  };
  std::shared_ptr<PhaseSpans> phase_spans;
  if (Tracer::enabled()) {
    phase_spans = std::make_shared<PhaseSpans>();
    const auto user_hook = std::move(session.hooks.on_phase);
    session.hooks.on_phase = [user_hook, phase_spans](SessionPhase phase) {
      if (user_hook && !user_hook(phase)) return false;
      phase_spans->enter(phase);
      return true;
    };
  }
  if (cancel) {
    // Compose campaign cancellation with any caller-provided hook.
    const auto user_hook = std::move(session.hooks.on_phase);
    session.hooks.on_phase = [user_hook, cancel](SessionPhase phase) {
      if (cancel()) return false;
      return !user_hook || user_hook(phase);
    };
  }
  try {
    out.report = run_debug_session(golden, session);
    if (phase_spans) phase_spans->open.reset();
    if (baseline_wall_seconds > 0.0) {
      out.report.phase_seconds[static_cast<std::size_t>(
          SessionPhase::kBuild)] += baseline_wall_seconds;
      out.report.wall_seconds += baseline_wall_seconds;
    }
    // Feed the phase-timer data into the process-wide latency histograms
    // (session.wall_us, session.phase_us.<phase>). Observability only: the
    // deterministic report path never reads these.
    if (!out.report.cancelled) {
      MetricsRegistry& reg = MetricsRegistry::global();
      reg.histogram("session.wall_us")
          .record(static_cast<std::uint64_t>(out.report.wall_seconds * 1e6));
      for (std::size_t p = 0; p < kNumSessionPhases; ++p) {
        reg.histogram(std::string("session.phase_us.") +
                      to_string(static_cast<SessionPhase>(p)))
            .record(static_cast<std::uint64_t>(out.report.phase_seconds[p] *
                                               1e6));
      }
    }
  } catch (const std::exception& e) {
    if (phase_spans) phase_spans->open.reset();
    out.error = e.what();
  }
  // A cancelled outcome reflects this driver's state, not the spec, and an
  // exception may be transient (resource exhaustion) — only spec-determined
  // successful results may be memoized, or a one-off failure would replay
  // from the cache forever. A failed store (disk full, permissions, cache
  // dir removed) just means this result is not memoized.
  if (cacheable && !out.report.cancelled && out.error.empty()) {
    try {
      // Durability ordering under test: a crash here leaves the result
      // neither cached nor journaled, so a restart re-runs the session —
      // the only acceptable loss. The reverse order (journal before cache)
      // would let a journal record point at a result that never landed.
      EMUTILE_FAULT_POINT("cache.pre-store");
      cache->store(key, to_cached(out));
    } catch (const std::exception& e) {
      EMUTILE_WARN("cache store failed for key " << key
                                                 << ", result not memoized: "
                                                 << e.what());
    }
  }
  return out;
}

CampaignReport run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  EMUTILE_CHECK(options.num_threads >= 1, "campaign needs at least 1 thread");
  const std::vector<CampaignJob> jobs = spec.expand();
  ThreadPool pool(options.num_threads);

  // Shared pre-injection baselines: the first session of each (design,
  // tiling) pair builds one, the rest clone it. A caller-provided cache
  // amortizes across campaigns (the session service); otherwise the cache
  // lives for this run only.
  TiledBaselineCache local_tiled_baselines;
  TiledBaselineCache* tiled_baselines =
      options.warm_start
          ? (options.baseline_cache ? options.baseline_cache
                                    : &local_tiled_baselines)
          : nullptr;

  // A sharded spec only needs part of the campaign's work: goldens for the
  // designs its job slice touches, and the baseline pairs assigned to it.
  // Baseline pairs are round-robin partitioned across shards so one fleet
  // measures each pair exactly once; the union over all shards covers every
  // pair (merge() keeps whichever shard measured a scenario).
  const std::size_t baseline_pairs = spec.designs.size() * spec.tilings.size();
  std::vector<char> design_has_jobs(spec.designs.size(),
                                    spec.shard_count == 1 ? 1 : 0);
  if (spec.shard_count > 1)
    for (const CampaignJob& job : jobs) design_has_jobs[job.design_index] = 1;
  const auto pair_assigned = [&](std::size_t u) {
    return spec.shard_count == 1 || u % spec.shard_count == spec.shard_index;
  };
  std::vector<char> design_needed = design_has_jobs;
  if (spec.measure_baselines)
    for (std::size_t u = 0; u < baseline_pairs; ++u)
      if (pair_assigned(u)) design_needed[u / spec.tilings.size()] = 1;

  // Build the needed golden netlists once; sessions share them read-only
  // (each session copies before mutating).
  std::vector<Netlist> goldens(spec.designs.size());
  std::vector<std::string> golden_errors(spec.designs.size());
  pool.parallel_for(spec.designs.size(), [&](std::size_t i) {
    if (!design_needed[i]) return;
    try {
      goldens[i] = build_campaign_golden(spec, i);
    } catch (const std::exception& e) {
      golden_errors[i] = e.what();
    }
  });

  std::vector<SessionOutcome> outcomes(jobs.size());
  std::size_t finished = 0;     // guarded by progress_mutex
  std::size_t cache_hits = 0;   // guarded by progress_mutex
  std::size_t cache_misses = 0; // guarded by progress_mutex
  std::mutex progress_mutex;
  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(jobs.size(), [&](std::size_t i) {
    const CampaignJob& job = jobs[i];
    CacheLookup lookup = CacheLookup::kNotConsulted;
    if (!golden_errors[job.design_index].empty()) {
      // The design never built; cancel is still honored so a cancelled
      // campaign reports these jobs consistently with its siblings.
      if (options.cancel && options.cancel())
        outcomes[i].report.cancelled = true;
      else
        outcomes[i].error = "design '" + spec.designs[job.design_index].name +
                            "' failed to build: " +
                            golden_errors[job.design_index];
    } else {
      outcomes[i] =
          run_campaign_session(spec, job, goldens[job.design_index],
                               options.cancel, options.cache, &lookup,
                               tiled_baselines);
    }
    // Progress fires on every accounting path — completed, failed,
    // cancelled, and cache-served sessions alike.
    std::lock_guard<std::mutex> lock(progress_mutex);
    if (lookup == CacheLookup::kHit) ++cache_hits;
    if (lookup == CacheLookup::kMiss) ++cache_misses;
    ++finished;
    if (options.on_progress)
      options.on_progress(options.campaign_id, finished, jobs.size());
  });
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<ScenarioBaseline> baselines;
  if (spec.measure_baselines) {
    // The baseline depends only on (design, tiling), so measure each unique
    // pair once and fan the result out across the error-kind scenarios.
    std::vector<ScenarioBaseline> per_pair(baseline_pairs);
    pool.parallel_for(baseline_pairs, [&](std::size_t u) {
      const std::size_t di = u / spec.tilings.size();
      if (!pair_assigned(u)) return;
      if (!golden_errors[di].empty()) return;
      if (options.cancel && options.cancel()) return;
      per_pair[u] = measure_baseline_pair(spec, u, goldens[di]);
    });
    baselines = fan_out_baselines(spec, per_pair);
  }

  CampaignReport report = build_report(spec, jobs, outcomes, baselines);
  report.wall_seconds = wall_seconds;
  report.num_threads = options.num_threads;
  report.cache_hits = cache_hits;
  report.cache_misses = cache_misses;
  return report;
}

}  // namespace emutile
