#include "campaign/campaign_spec_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "designs/catalog.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"

namespace emutile {

// Try increasing precision until strtod round-trips. Keeps the canonical
// form human-readable for common values (0.25 stays "0.25") yet hash-stable
// for any input.
std::string format_double_exact(double v) {
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string format_u64_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

namespace {

struct LineParser {
  std::istringstream in;
  int line_no = 0;
  std::string key;
  std::istringstream rest;

  explicit LineParser(const std::string& text) : in(text) {}

  /// Advance to the next non-blank, non-comment line; false at EOF.
  bool next() {
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      const std::size_t last = line.find_last_not_of(" \t\r");
      line = line.substr(start, last - start + 1);
      const std::size_t space = line.find_first_of(" \t");
      key = line.substr(0, space);
      rest = std::istringstream(
          space == std::string::npos ? "" : line.substr(space + 1));
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& message) const {
    EMUTILE_CHECK(false,
                  "campaign spec line " << line_no << ": " << message);
    std::abort();  // unreachable — EMUTILE_CHECK(false, ...) always throws
  }

  std::string word(const char* what) {
    std::string w;
    if (!(rest >> w)) fail(std::string("missing ") + what);
    return w;
  }

  std::uint64_t u64(const char* what) {
    const std::string w = word(what);
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(w.c_str(), &end, 10);
    if (end == w.c_str() || *end != '\0' || w[0] == '-')
      fail(std::string("bad unsigned integer for ") + what + ": '" + w + "'");
    return v;
  }

  double real(const char* what) {
    const std::string w = word(what);
    char* end = nullptr;
    const double v = std::strtod(w.c_str(), &end);
    if (end == w.c_str() || *end != '\0')
      fail(std::string("bad number for ") + what + ": '" + w + "'");
    return v;
  }

  void done() {
    std::string extra;
    if (rest >> extra) fail("trailing token '" + extra + "' after value");
  }
};

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

ErrorKind error_kind_from_string(const std::string& name) {
  for (const ErrorKind kind :
       {ErrorKind::kLutFunction, ErrorKind::kWrongPolarity,
        ErrorKind::kWrongConnection}) {
    if (name == to_string(kind)) return kind;
  }
  EMUTILE_CHECK(false, "unknown error kind '" << name << "'");
  return ErrorKind::kLutFunction;  // unreachable
}

CampaignSpec parse_campaign_spec(const std::string& text) {
  LineParser p(text);
  EMUTILE_CHECK(p.next() && p.key == "emutile-campaign" &&
                    p.word("format version") == "v1",
                "campaign spec must start with 'emutile-campaign v1'");
  p.done();

  CampaignSpec spec;
  // The defaulted list fields mean "the caller didn't choose"; an explicit
  // spec replaces them with exactly what its lines say.
  spec.error_kinds.clear();
  spec.tilings.clear();

  bool saw_end = false;
  std::vector<std::string> seen_scalars;
  const auto scalar_once = [&](const std::string& key) {
    for (const std::string& s : seen_scalars)
      if (s == key) p.fail("duplicate key '" + key + "'");
    seen_scalars.push_back(key);
  };

  while (p.next()) {
    if (p.key == "end") {
      p.done();
      saw_end = true;
      break;
    } else if (p.key == "design") {
      const std::string name = p.word("design name");
      p.done();
      try {
        spec.add_catalog_design(name);
      } catch (const CheckError&) {
        p.fail("unknown catalog design '" + name + "'");
      }
    } else if (p.key == "error_kind") {
      const std::string name = p.word("error kind");
      p.done();
      try {
        spec.error_kinds.push_back(error_kind_from_string(name));
      } catch (const CheckError&) {
        p.fail("unknown error kind '" + name + "'");
      }
    } else if (p.key == "tiling") {
      TilingParams t;
      t.num_tiles = static_cast<int>(p.u64("tiles"));
      t.target_overhead = p.real("overhead");
      t.placer_effort = p.real("placer_effort");
      t.tracks_per_channel = static_cast<int>(p.u64("tracks"));
      t.route_headroom = static_cast<int>(p.u64("headroom"));
      p.done();
      spec.tilings.push_back(t);
    } else if (p.key == "sessions_per_scenario") {
      scalar_once(p.key);
      spec.sessions_per_scenario = static_cast<int>(p.u64("session count"));
      p.done();
    } else if (p.key == "sessions_by_scenario" || p.key == "replica_base") {
      scalar_once(p.key);
      std::vector<int>& v = p.key == "sessions_by_scenario"
                                ? spec.sessions_by_scenario
                                : spec.replica_base;
      std::string w;
      while (p.rest >> w) {
        char* end = nullptr;
        const std::uint64_t n = std::strtoull(w.c_str(), &end, 10);
        if (end == w.c_str() || *end != '\0' || w[0] == '-' ||
            n > 0x7fffffffull)
          p.fail("bad per-scenario count '" + w + "'");
        v.push_back(static_cast<int>(n));
      }
      if (v.empty()) p.fail("needs at least one per-scenario count");
    } else if (p.key == "master_seed") {
      scalar_once(p.key);
      spec.master_seed = p.u64("seed");
      p.done();
    } else if (p.key == "num_patterns") {
      scalar_once(p.key);
      spec.num_patterns = p.u64("pattern count");
      p.done();
    } else if (p.key == "localizer") {
      scalar_once(p.key);
      spec.localizer.probes_per_iteration = static_cast<int>(p.u64("probes"));
      spec.localizer.max_iterations = static_cast<int>(p.u64("max_iters"));
      spec.localizer.stop_at = p.u64("stop_at");
      spec.localizer.seed = p.u64("seed");
      p.done();
    } else if (p.key == "localizer_eco") {
      scalar_once(p.key);
      spec.localizer.eco.seed = p.u64("seed");
      spec.localizer.eco.placer_effort = p.real("placer_effort");
      spec.localizer.eco.max_region_expansions =
          static_cast<int>(p.u64("max_expansions"));
      p.done();
    } else if (p.key == "eco") {
      scalar_once(p.key);
      spec.eco.seed = p.u64("seed");
      spec.eco.placer_effort = p.real("placer_effort");
      spec.eco.max_region_expansions =
          static_cast<int>(p.u64("max_expansions"));
      p.done();
    } else if (p.key == "measure_baselines") {
      scalar_once(p.key);
      const std::uint64_t v = p.u64("flag");
      if (v > 1) p.fail("measure_baselines must be 0 or 1");
      spec.measure_baselines = v == 1;
      p.done();
    } else if (p.key == "shard") {
      scalar_once(p.key);
      spec.shard_index = p.u64("shard index");
      spec.shard_count = p.u64("shard count");
      if (spec.shard_count < 1 || spec.shard_index >= spec.shard_count)
        p.fail("bad shard selection " + std::to_string(spec.shard_index) +
               "/" + std::to_string(spec.shard_count));
      p.done();
    } else if (p.key == "slice") {
      scalar_once(p.key);
      spec.slice_begin = p.u64("slice begin");
      spec.slice_end = p.u64("slice end");
      if (spec.slice_end <= spec.slice_begin)
        p.fail("bad slice [" + std::to_string(spec.slice_begin) + ", " +
               std::to_string(spec.slice_end) + ")");
      p.done();
    } else {
      p.fail("unknown key '" + p.key + "'");
    }
  }
  EMUTILE_CHECK(saw_end, "campaign spec is missing the 'end' footer");
  EMUTILE_CHECK(!p.next(), "content after the 'end' footer");

  // Omitted lists fall back to the CampaignSpec defaults, mirroring the
  // programmatic API.
  if (spec.error_kinds.empty())
    spec.error_kinds = CampaignSpec{}.error_kinds;
  if (spec.tilings.empty()) spec.tilings = CampaignSpec{}.tilings;
  for (const std::vector<int>* v :
       {&spec.sessions_by_scenario, &spec.replica_base}) {
    EMUTILE_CHECK(v->empty() || v->size() == spec.num_scenarios(),
                  "per-scenario budget vector has "
                      << v->size() << " entries but the spec has "
                      << spec.num_scenarios() << " scenarios");
  }
  return spec;
}

CampaignSpec load_campaign_spec_file(const std::filesystem::path& path) {
  return parse_campaign_spec(read_file(path));
}

std::string serialize_campaign_spec(const CampaignSpec& spec) {
  std::ostringstream os;
  os << "emutile-campaign v1\n";
  for (const CampaignDesign& d : spec.designs) {
    EMUTILE_CHECK(!d.builder,
                  "design '" << d.name
                             << "' has a custom builder — only catalog "
                                "designs can be serialized");
    os << "design " << d.name << "\n";
  }
  for (const ErrorKind kind : spec.error_kinds)
    os << "error_kind " << to_string(kind) << "\n";
  // The tiling's own seed is omitted on purpose: expand() overrides it with
  // the split-derived session seed, so it can never influence results.
  for (const TilingParams& t : spec.tilings)
    os << "tiling " << t.num_tiles << " " << format_double_exact(t.target_overhead)
       << " " << format_double_exact(t.placer_effort) << " " << t.tracks_per_channel
       << " " << t.route_headroom << "\n";
  os << "sessions_per_scenario " << spec.sessions_per_scenario << "\n";
  // The per-scenario budget vectors are omitted when empty so plain uniform
  // specs keep their historical canonical form (and content hashes).
  const auto emit_budgets = [&](const char* key, const std::vector<int>& v) {
    if (v.empty()) return;
    EMUTILE_CHECK(v.size() == spec.num_scenarios(),
                  key << " has " << v.size() << " entries for "
                      << spec.num_scenarios() << " scenarios");
    os << key;
    for (const int n : v) os << " " << n;
    os << "\n";
  };
  emit_budgets("sessions_by_scenario", spec.sessions_by_scenario);
  emit_budgets("replica_base", spec.replica_base);
  os << "master_seed " << spec.master_seed << "\n"
     << "num_patterns " << spec.num_patterns << "\n"
     << "localizer " << spec.localizer.probes_per_iteration << " "
     << spec.localizer.max_iterations << " " << spec.localizer.stop_at << " "
     << spec.localizer.seed << "\n"
     << "localizer_eco " << spec.localizer.eco.seed << " "
     << format_double_exact(spec.localizer.eco.placer_effort) << " "
     << spec.localizer.eco.max_region_expansions << "\n"
     << "eco " << spec.eco.seed << " " << format_double_exact(spec.eco.placer_effort)
     << " " << spec.eco.max_region_expansions << "\n"
     << "measure_baselines " << (spec.measure_baselines ? 1 : 0) << "\n"
     << "shard " << spec.shard_index << " " << spec.shard_count << "\n";
  // Omitted when unset so pre-slice specs keep their content hash (the
  // result cache and warm-start keys depend on it).
  if (spec.sliced())
    os << "slice " << spec.slice_begin << " " << spec.slice_end << "\n";
  os << "end\n";
  return os.str();
}

std::uint64_t spec_content_hash(const CampaignSpec& spec) {
  return fnv1a64(serialize_campaign_spec(spec));
}

std::string spec_content_hash_hex(const CampaignSpec& spec) {
  return format_u64_hex(spec_content_hash(spec));
}

std::string prepend_traceparent(const std::string& spec_text,
                                const std::string& traceparent) {
  if (traceparent.empty()) return spec_text;
  return "# traceparent=" + traceparent + "\n" + spec_text;
}

std::string extract_traceparent(const std::string& spec_text) {
  static constexpr std::string_view kPrefix = "# traceparent=";
  std::istringstream in(spec_text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') return "";  // past the comment preamble
    if (line.compare(0, kPrefix.size(), kPrefix) == 0)
      return line.substr(kPrefix.size());
  }
  return "";
}

}  // namespace emutile
