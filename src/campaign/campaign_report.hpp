#pragma once
/// \file campaign_report.hpp
/// Aggregated statistics over a campaign's debug sessions.
///
/// Aggregation runs in canonical job order over deterministic work counters
/// (instances placed, nets routed, router expansions — never wall-clock), so
/// the same spec produces a byte-identical CSV/JSON report no matter how
/// many worker threads ran the sessions. Wall-clock throughput is collected
/// separately and appears only in print_summary(), which is allowed to vary
/// run to run.

#include <array>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "core/pnr_effort.hpp"
#include "util/stats.hpp"

namespace emutile {

/// Deterministic CAD-work proxy for an effort record (every counter is a
/// pure function of the session seed, unlike the ms timers).
[[nodiscard]] inline double work_units(const PnrEffort& e) {
  return static_cast<double>(e.instances_placed) +
         static_cast<double>(e.nets_routed) +
         static_cast<double>(e.nodes_expanded);
}

/// What one campaign session produced: the session report, or the error
/// that aborted it.
struct SessionOutcome {
  DebugSessionReport report;
  std::string error;  ///< nonempty => the session threw
};

/// Optional per-scenario baseline measurement: tiled-ECO work-unit speedup
/// against the three baseline strategies on a standard change (the full
/// Figure 5 set: Quick_ECO, Incremental_ECO, full re-P&R).
struct ScenarioBaseline {
  bool measured = false;
  double speedup_quick = 0.0;        ///< Quick_ECO work / tiled work
  double speedup_incremental = 0.0;  ///< Incremental_ECO work / tiled work
  double speedup_full = 0.0;         ///< full re-P&R work / tiled work
};

/// Per-scenario aggregate row.
struct ScenarioStats {
  std::string design;
  ErrorKind error_kind = ErrorKind::kLutFunction;
  int num_tiles = 0;
  double target_overhead = 0.0;
  std::size_t sessions = 0;   ///< jobs expanded for this scenario
  std::size_t cancelled = 0;  ///< stopped by a hook before finishing
  std::size_t failed = 0;     ///< threw (flow error)
  std::size_t detected = 0;
  std::size_t narrowed = 0;   ///< localization shrank the candidate set
  std::size_t corrected = 0;
  std::size_t clean = 0;      ///< corrected and re-verified clean
  Accumulator suspects;       ///< final candidate count (detected sessions)
  Accumulator iterations;     ///< localization iterations (detected sessions)
  Accumulator debug_work;     ///< per-session debugging-ECO work units
  Accumulator build_work;     ///< per-session initial-build work units
  ScenarioBaseline baseline;

  // ---- wall-clock profile (freshly executed sessions only: cache hits ----
  // ---- carry no timing; excluded from to_csv/to_json, reported by      ----
  // ---- timing_csv/timing_json and print_summary)                       ----
  std::size_t warm_builds = 0;  ///< sessions that cloned the shared baseline
  Accumulator session_wall;     ///< total wall seconds per timed session
  std::array<Accumulator, kNumSessionPhases> phase_wall;  ///< per phase

  /// Sessions that ran to the end (not cancelled, not failed) — the trial
  /// count behind the proportion intervals below.
  [[nodiscard]] std::size_t completed() const {
    return sessions - cancelled - failed;
  }
  /// Wilson score interval for this scenario's detection rate
  /// (detected / completed). Zero completed sessions -> [0, 1].
  [[nodiscard]] Interval detection_interval(double confidence = 0.95) const;
  /// Wilson score interval for this scenario's correction rate
  /// (clean / detected). Zero detections -> [0, 1].
  [[nodiscard]] Interval correction_interval(double confidence = 0.95) const;
  /// Student-t interval for the mean debug work; (-inf, inf) below 2 samples.
  [[nodiscard]] Interval debug_work_interval(double confidence = 0.95) const;
};

/// The campaign-wide aggregate.
struct CampaignReport {
  std::size_t sessions = 0;
  std::size_t completed = 0;  ///< ran to the end (not cancelled, not failed)
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  std::size_t detected = 0;
  std::size_t narrowed = 0;
  std::size_t corrected = 0;
  std::size_t clean = 0;
  Accumulator debug_work;  ///< over completed sessions
  Accumulator build_work;
  /// Debugging-work latency profile over completed sessions (work units).
  double debug_work_p50 = 0.0;
  double debug_work_p90 = 0.0;
  double debug_work_p99 = 0.0;
  /// Geometric-mean baseline speedups over measured scenarios (0 if none).
  double speedup_quick_geomean = 0.0;
  double speedup_incremental_geomean = 0.0;
  double speedup_full_geomean = 0.0;
  std::vector<ScenarioStats> scenarios;
  /// Raw per-session debug-work samples (completed sessions, canonical job
  /// order). Retained so merge() can recompute the percentiles exactly;
  /// excluded from to_csv/to_json.
  std::vector<double> debug_work_samples;

  // ---- wall-clock / execution stats (set by the engine; excluded from ----
  // ---- to_csv/to_json so cached and fresh runs emit identical bytes)  ----
  double wall_seconds = 0.0;
  std::size_t num_threads = 1;
  std::size_t cache_hits = 0;    ///< sessions served from the result cache
  std::size_t cache_misses = 0;  ///< cacheable sessions that had to run
  std::size_t warm_builds = 0;   ///< sessions that cloned a shared baseline
  Accumulator session_wall;      ///< per-session wall seconds (timed sessions)
  std::array<Accumulator, kNumSessionPhases> phase_wall;  ///< per phase

  [[nodiscard]] double detection_rate() const;    ///< detected / completed
  [[nodiscard]] double localization_rate() const; ///< narrowed / detected
  [[nodiscard]] double correction_rate() const;   ///< clean / detected
  [[nodiscard]] double sessions_per_second() const;

  /// One CSV row per scenario (deterministic).
  [[nodiscard]] std::string to_csv() const;

  /// Campaign aggregate plus scenario rows as JSON (deterministic).
  [[nodiscard]] std::string to_json() const;

  /// Per-scenario wall-clock phase profile as CSV: one row per scenario
  /// with mean seconds per SessionPhase over the sessions that actually
  /// executed this run (cache hits carry no timing). Nondeterministic by
  /// nature — kept out of to_csv so the deterministic report contract
  /// (cached == fresh, warm == cold, 1 == N threads, byte for byte) holds.
  [[nodiscard]] std::string timing_csv() const;

  /// Campaign-level and per-scenario phase profile as JSON (same caveats
  /// as timing_csv).
  [[nodiscard]] std::string timing_json() const;

  /// Human-readable summary including wall-clock throughput.
  void print_summary(std::ostream& os) const;

  /// Fold another shard's report into this one, as if both shards' jobs had
  /// run in one campaign: counters add, accumulators combine, percentiles
  /// and geomeans are recomputed from the retained samples/baselines. Both
  /// reports must come from shards of the same spec (matching scenario
  /// rows); baselines present on either side are kept. A report with no
  /// scenarios and no sessions (the default-constructed state) is the merge
  /// identity on either side — only its execution stats (wall clock, cache
  /// counters) carry over — so accumulation loops can start from an empty
  /// report without special-casing their first shard.
  void merge(const CampaignReport& other);
};

/// Fold any number of shard reports into one. Well-defined for every list
/// size: an empty list yields the default-constructed (empty) report, a
/// single shard is returned unchanged, and longer lists fold left in order
/// — the same order the coordinator merges its shards in.
[[nodiscard]] CampaignReport merge_reports(
    const std::vector<CampaignReport>& shards);

/// Fold session outcomes (indexed like `jobs`) and optional per-scenario
/// baselines (indexed by scenario; may be empty) into a report. Aggregation
/// visits jobs in index order regardless of completion order.
[[nodiscard]] CampaignReport build_report(
    const CampaignSpec& spec, const std::vector<CampaignJob>& jobs,
    const std::vector<SessionOutcome>& outcomes,
    const std::vector<ScenarioBaseline>& baselines);

}  // namespace emutile
