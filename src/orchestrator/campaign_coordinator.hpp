#pragma once
/// \file campaign_coordinator.hpp
/// Multi-host campaign orchestration: one CampaignSpec fanned out across an
/// elastic fleet of serviced instances and merged back into a single report.
///
/// The coordinator composes the pieces the lower layers already guarantee:
/// CampaignSpec::shard(i, n) slices the canonical job list without changing
/// any job's identity or seed (and CampaignSpec::slice(b, e) narrows a shard
/// to an explicit job range the same way); each serviced instance runs its
/// shard to a deterministic report; CampaignReport::merge recombines shard
/// reports byte-identically to an unsharded run_campaign. What the
/// coordinator adds is the traffic engineering in between:
///
///   dispatch     shards are SUBMITted over the healthy instances (wire
///                instances — unix: or tcp: addresses — via ServiceClient,
///                spool instances by dropping the shard spec into
///                <root>/spool). Placement prefers the instance whose
///                result/baseline caches already hold a shard's sessions
///                (the coordinator remembers which job ranges each instance
///                has seen); ties fall back to round-robin
///   supervision  STATUS is polled every poll_interval; per-instance
///                progress and merged totals stream out via on_snapshot.
///                Wire instances are polled over an opt-in persistent
///                connection, so fleet polling does not pay a dial per tick
///                on TCP
///   re-dispatch  an instance that dies (connection refused), hangs past
///                stall_deadline without progress, rejects a SUBMIT
///                (ServiceError code `busy`), or whose campaign ends
///                failed/cancelled is marked unhealthy and its shard is
///                re-dispatched — cache-affinity placement routes it to
///                wherever its sessions are already cached, and the
///                deterministic seeds make any re-run byte-identical
///   work stealing  when an instance drains its shard early and sits idle,
///                the coordinator splits the slowest in-flight shard's
///                remaining job range in two (CampaignSpec::slice), keeps
///                the first half where its cache is warm, and hands the
///                second half to the idle instance. Merged reports stay
///                byte-identical because every job's seed is (scenario,
///                replica)-derived, not placement-derived
///   elasticity   the fleet is reconcilable mid-campaign: a changed fleet
///                file (watched by mtime, or forced via reload_flag /
///                SIGHUP in the orchestrate tool) or a FLEET command on the
///                control_address listener joins new instances into the
///                rotation — they pick up re-dispatched and stolen work —
///                and retires missing ones (no new dispatches; in-flight
///                shards are still collected). Departures are the existing
///                drain/death paths
///   rolling upgrades  a draining instance (DRAIN/SIGUSR2, surfacing as
///                ServiceError code `draining` on SUBMIT and draining=1 on
///                STATUS) is taken out of the dispatch rotation but its
///                in-flight shards are still collected — it finishes what
///                it holds. Unhealthy wire instances are re-probed with
///                PING every reprobe_interval, so a replacement daemon on
///                the same address (restarted with --attach) rejoins the
///                rotation mid-run — the fleet rolls through an upgrade one
///                instance at a time without losing submitted work
///   degradation  when no healthy instance remains (or none ever existed),
///                remaining shards run in-process via run_campaign — the
///                fleet burning down degrades throughput, never correctness
///   collection   a finished shard is WAITed (fast — already terminal),
///                fetched over SHARDREPORT, and parsed from the mergeable
///                wire format (campaign_report_io)
///
/// Determinism contract: run() returns a report whose to_csv()/to_json()
/// bytes equal a direct run_campaign(spec) of the same unsharded spec, no
/// matter how shards were placed, stolen, re-dispatched, or how many fell
/// back to local execution.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"
#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orchestrator/fleet_config_io.hpp"
#include "service/address.hpp"

namespace emutile {

class ServiceClient;

/// Where one shard currently stands.
enum class ShardState : std::uint8_t {
  kPending,  ///< waiting for a (re-)dispatch
  kRemote,   ///< submitted to an instance, in flight
  kLocal,    ///< running in-process (fallback)
  kDone      ///< shard report collected
};

[[nodiscard]] const char* to_string(ShardState state);

struct ShardProgress {
  std::size_t shard = 0;         ///< shard index (0-based; steals append)
  ShardState state = ShardState::kPending;
  std::string instance;          ///< serving instance name; "local" fallback
  std::string campaign_id;       ///< remote campaign id (empty until known)
  std::size_t sessions_done = 0;
  std::size_t sessions_total = 0;
  std::size_t dispatches = 0;    ///< submission attempts so far
};

/// Point-in-time aggregate streamed to CoordinatorOptions::on_snapshot.
struct FleetSnapshot {
  std::vector<ShardProgress> shards;
  std::size_t sessions_done = 0;   ///< merged partial across all shards
  std::size_t sessions_total = 0;
  std::size_t shards_done = 0;
  std::size_t healthy_instances = 0;
  std::size_t total_instances = 0;
};

struct CoordinatorOptions {
  /// How many shards to slice the spec into; 0 means one per fleet instance.
  std::size_t num_shards = 0;
  /// Priority forwarded to every SUBMIT.
  int priority = 0;
  /// STATUS poll cadence (also the snapshot cadence).
  std::chrono::milliseconds poll_interval{200};
  /// Re-dispatch a shard whose instance reported no progress for this long
  /// (0 disables stall detection). This is also the only way a *dead*
  /// spool-addressed instance is ever detected — dropping a spec into its
  /// spool cannot fail the way a socket connect does — so the default is on,
  /// generously. Spool instances only surface progress at completion; size
  /// the deadline to the slowest expected shard, not the slowest session
  /// (an over-eager deadline still converges: after exhausting the fleet
  /// the shard runs in-process, merely wasting remote work).
  std::chrono::milliseconds stall_deadline{600'000};
  /// Per-exchange receive timeout for wire instances.
  int request_timeout_ms = 30'000;
  /// PING unhealthy wire instances on this cadence and return answering
  /// ones to the dispatch rotation — how a daemon restarted on the same
  /// address (rolling upgrade with --attach) rejoins a run in progress.
  /// Dead addresses keep failing the ping and stay out. 0 disables
  /// re-probing.
  std::chrono::milliseconds reprobe_interval{2'000};
  /// Worker threads for shards that fall back to in-process execution.
  std::size_t local_threads = 2;
  /// When false, a fully-failed fleet raises CheckError instead of running
  /// remaining shards in-process.
  bool allow_local_fallback = true;
  /// Split the slowest in-flight shard for an idle instance (see the work-
  /// stealing paragraph above). Off, an early-draining instance just idles.
  bool enable_stealing = true;
  /// Never steal fewer remaining sessions than this — splitting a nearly-
  /// finished shard trades real cache warmth for negligible parallelism.
  std::size_t min_steal_sessions = 2;
  /// When set, re-read this fleet file whenever its mtime changes (and when
  /// `reload_flag` fires) and reconcile membership mid-campaign: new names
  /// join, missing names retire, changed addresses reconnect.
  std::filesystem::path fleet_file;
  /// Optional caller-owned flag (e.g. flipped by a SIGHUP handler): when
  /// found true it is cleared and `fleet_file` is re-read immediately.
  std::atomic<bool>* reload_flag = nullptr;
  /// When set (a wire address), run() listens here for control requests:
  /// `PING` answers pong, `FLEET` returns the current membership, and
  /// `FLEET\n<fleet-config>` applies a new membership — the wire-command
  /// path to mid-campaign joins.
  std::optional<ServiceAddress> control_address;
  /// Streamed once per poll tick with the current fleet aggregate.
  std::function<void(const FleetSnapshot&)> on_snapshot;
  /// After every shard is collected, fetch METRICS from each wire instance
  /// and merge the registries into OrchestrationResult::fleet_metrics — the
  /// fleet-wide observability view next to the fleet-wide report. Instances
  /// that fail the fetch are skipped (metrics are never worth a re-dispatch).
  bool collect_metrics = true;
  /// Optional caller-owned journal (e.g. the orchestrate tool's
  /// events.jsonl): dispatch/retry/steal/join/local-fallback/collect records
  /// stream into it as the run progresses. May be null; must outlive run().
  EventJournal* journal = nullptr;
  /// Trace context the whole run is parented on. Invalid (the default) mints
  /// a fresh trace per run(); the orchestrate tool passes its own root so a
  /// re-used coordinator keeps one trace per invocation.
  TraceContext trace{};
  /// After every shard is collected, fetch TRACESPANS from each wire
  /// instance, shift the spans onto the local clock (clock-offset correction
  /// via the request/reply midpoint), and stitch everything reachable under
  /// this run's trace id into OrchestrationResult::fleet_trace. Same
  /// best-effort stance as collect_metrics.
  bool collect_trace = true;
};

/// What an orchestrated campaign produced, beyond the merged report.
struct OrchestrationResult {
  CampaignReport report;         ///< merged; byte-identical to unsharded run
  std::size_t num_shards = 0;    ///< final count, steals included
  std::size_t redispatches = 0;  ///< dispatches beyond each shard's first
  std::size_t local_shards = 0;  ///< shards that ran in-process
  std::size_t steals = 0;        ///< shard splits handed to idle instances
  /// Dispatches routed by cache-affinity (the chosen instance had already
  /// seen part of the shard's job range).
  std::size_t affinity_dispatches = 0;
  std::size_t joined_instances = 0;  ///< instances that joined mid-campaign
  std::vector<ShardProgress> shards;  ///< final per-shard state
  /// Sum of every reachable wire instance's metrics registry (counters
  /// add, histogram buckets add — see MetricsSnapshot::merge). Empty when
  /// collect_metrics is off or no instance answered.
  MetricsSnapshot fleet_metrics;
  std::size_t metrics_instances = 0;  ///< instances that contributed
  /// Closed spans from this run's trace, stitched across the fleet: the
  /// coordinator's own spans plus every reachable wire instance's, clock-
  /// offset-corrected, deduplicated by span id, sorted by start. Empty when
  /// collect_trace is off or tracing is compiled out.
  std::vector<TraceSpan> fleet_trace;
  std::size_t trace_instances = 0;  ///< instances that contributed spans
  TraceContext trace{};             ///< the run's root context (invalid when off)
};

class CampaignCoordinator {
 public:
  explicit CampaignCoordinator(FleetConfig fleet,
                               CoordinatorOptions options = {});
  ~CampaignCoordinator();  // out-of-line: members of nested incomplete types

  /// Orchestrate `spec` across the fleet and block until the merged report
  /// is complete. The spec must be unsharded and unsliced (the coordinator
  /// owns the slicing) and serializable (catalog designs only) to travel
  /// the wire; a custom-builder spec runs entirely in-process. Throws
  /// CheckError when a shard cannot be completed anywhere (e.g. fallback
  /// disabled and every instance down).
  [[nodiscard]] OrchestrationResult run(const CampaignSpec& spec);

 private:
  struct ShardWork;
  struct InstanceState;

  /// The instance's (lazily dialed, persistent-enabled) client.
  [[nodiscard]] ServiceClient& client_for(InstanceState& instance);
  /// Submit `shard` to the best instance (preference, then cache affinity,
  /// then round-robin); true on success. Marks instances it fails against
  /// unhealthy.
  [[nodiscard]] bool dispatch(ShardWork& shard);
  /// One STATUS/report-collection pass over an in-flight shard. May flip it
  /// to kDone or back to kPending (failure → re-dispatch).
  void poll_shard(ShardWork& shard);
  void run_local(ShardWork& shard);
  /// Split the slowest in-flight shard for an idle instance, if any.
  void maybe_steal();
  /// Reconcile live membership with a freshly-parsed fleet config.
  void apply_fleet(const FleetConfig& fresh);
  /// Control listener + reload flag + fleet-file mtime watch, once per tick.
  void poll_membership();
  void handle_control_connection(int fd);
  [[nodiscard]] FleetSnapshot snapshot() const;

  FleetConfig fleet_;
  CoordinatorOptions options_;
  // Per-run state (run() resets everything; a coordinator may be reused).
  std::vector<std::unique_ptr<ShardWork>> shards_;  ///< stable addresses
  std::vector<InstanceState> instances_;
  bool serializable_ = false;
  std::size_t rr_cursor_ = 0;     ///< round-robin dispatch position
  std::size_t redispatches_ = 0;
  std::size_t local_shards_ = 0;
  std::size_t steals_ = 0;
  std::size_t affinity_dispatches_ = 0;
  std::size_t joined_instances_ = 0;
  int control_fd_ = -1;           ///< control_address listener (run() only)
  std::filesystem::file_time_type fleet_file_mtime_{};
  TraceContext run_root_{};       ///< this run's orchestrate.run context
};

/// Adaptive-round executor backed by a fleet coordinator: each round is
/// orchestrated like any campaign — sharded across the serviced instances,
/// supervised, re-dispatched on failure, merged — so an adaptive campaign's
/// follow-up rounds simply become extra shards flowing over the fleet. The
/// coordinator must outlive the returned executor.
[[nodiscard]] AdaptiveRoundExecutor make_adaptive_executor(
    CampaignCoordinator& coordinator);

}  // namespace emutile
