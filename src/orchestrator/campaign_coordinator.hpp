#pragma once
/// \file campaign_coordinator.hpp
/// Multi-host campaign orchestration: one CampaignSpec fanned out across a
/// fleet of serviced instances and merged back into a single report.
///
/// The coordinator composes the pieces the lower layers already guarantee:
/// CampaignSpec::shard(i, n) slices the canonical job list without changing
/// any job's identity or seed; each serviced instance runs its shard to a
/// deterministic report; CampaignReport::merge recombines shard reports
/// byte-identically to an unsharded run_campaign. What the coordinator adds
/// is the traffic engineering in between:
///
///   dispatch     shards are SUBMITted round-robin over the healthy
///                instances (socket instances over the wire protocol via
///                ServiceClient, spool instances by dropping the shard spec
///                into <root>/spool)
///   supervision  STATUS is polled every poll_interval; per-instance
///                progress and merged totals stream out via on_snapshot
///   re-dispatch  an instance that dies (connection refused), hangs past
///                stall_deadline without progress, rejects a SUBMIT
///                (`ERR busy`), or whose campaign ends failed/cancelled is
///                marked unhealthy and its shard is re-dispatched to the
///                next healthy instance — sessions already computed are
///                recovered from that instance's result cache, and the
///                deterministic seeds make any re-run byte-identical
///   rolling upgrades  a draining instance (DRAIN/SIGUSR2, surfacing as a
///                "draining" busy error on SUBMIT and draining=1 on STATUS)
///                is taken out of the dispatch rotation but its in-flight
///                shards are still collected — it finishes what it holds.
///                Unhealthy socket instances are re-probed with PING every
///                reprobe_interval, so a replacement daemon on the same
///                socket (restarted with --attach) rejoins the rotation
///                mid-run — the fleet rolls through an upgrade one instance
///                at a time without losing submitted work
///   degradation  when no healthy instance remains (or none ever existed),
///                remaining shards run in-process via run_campaign — the
///                fleet burning down degrades throughput, never correctness
///   collection   a finished shard is WAITed (fast — already terminal),
///                fetched over SHARDREPORT, and parsed from the mergeable
///                wire format (campaign_report_io)
///
/// Determinism contract: run() returns a report whose to_csv()/to_json()
/// bytes equal a direct run_campaign(spec) of the same unsharded spec, no
/// matter how shards were placed, how often they were re-dispatched, or how
/// many fell back to local execution.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/adaptive_driver.hpp"
#include "campaign/campaign_report.hpp"
#include "campaign/campaign_spec.hpp"
#include "obs/event_journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orchestrator/fleet_config_io.hpp"

namespace emutile {

/// Where one shard currently stands.
enum class ShardState : std::uint8_t {
  kPending,  ///< waiting for a (re-)dispatch
  kRemote,   ///< submitted to an instance, in flight
  kLocal,    ///< running in-process (fallback)
  kDone      ///< shard report collected
};

[[nodiscard]] const char* to_string(ShardState state);

struct ShardProgress {
  std::size_t shard = 0;         ///< shard index (0-based)
  ShardState state = ShardState::kPending;
  std::string instance;          ///< serving instance name; "local" fallback
  std::string campaign_id;       ///< remote campaign id (empty until known)
  std::size_t sessions_done = 0;
  std::size_t sessions_total = 0;
  std::size_t dispatches = 0;    ///< submission attempts so far
};

/// Point-in-time aggregate streamed to CoordinatorOptions::on_snapshot.
struct FleetSnapshot {
  std::vector<ShardProgress> shards;
  std::size_t sessions_done = 0;   ///< merged partial across all shards
  std::size_t sessions_total = 0;
  std::size_t shards_done = 0;
  std::size_t healthy_instances = 0;
  std::size_t total_instances = 0;
};

struct CoordinatorOptions {
  /// How many shards to slice the spec into; 0 means one per fleet instance.
  std::size_t num_shards = 0;
  /// Priority forwarded to every SUBMIT.
  int priority = 0;
  /// STATUS poll cadence (also the snapshot cadence).
  std::chrono::milliseconds poll_interval{200};
  /// Re-dispatch a shard whose instance reported no progress for this long
  /// (0 disables stall detection). This is also the only way a *dead*
  /// spool-addressed instance is ever detected — dropping a spec into its
  /// spool cannot fail the way a socket connect does — so the default is on,
  /// generously. Spool instances only surface progress at completion; size
  /// the deadline to the slowest expected shard, not the slowest session
  /// (an over-eager deadline still converges: after exhausting the fleet
  /// the shard runs in-process, merely wasting remote work).
  std::chrono::milliseconds stall_deadline{600'000};
  /// Per-exchange receive timeout for socket instances.
  int request_timeout_ms = 30'000;
  /// PING unhealthy socket instances on this cadence and return answering
  /// ones to the dispatch rotation — how a daemon restarted on the same
  /// socket (rolling upgrade with --attach) rejoins a run in progress. Dead
  /// sockets keep failing the ping and stay out. 0 disables re-probing.
  std::chrono::milliseconds reprobe_interval{2'000};
  /// Worker threads for shards that fall back to in-process execution.
  std::size_t local_threads = 2;
  /// When false, a fully-failed fleet raises CheckError instead of running
  /// remaining shards in-process.
  bool allow_local_fallback = true;
  /// Streamed once per poll tick with the current fleet aggregate.
  std::function<void(const FleetSnapshot&)> on_snapshot;
  /// After every shard is collected, fetch METRICS from each socket instance
  /// and merge the registries into OrchestrationResult::fleet_metrics — the
  /// fleet-wide observability view next to the fleet-wide report. Instances
  /// that fail the fetch are skipped (metrics are never worth a re-dispatch).
  bool collect_metrics = true;
  /// Optional caller-owned journal (e.g. the orchestrate tool's
  /// events.jsonl): dispatch/retry/local-fallback/collect records stream
  /// into it as the run progresses. May be null; must outlive run().
  EventJournal* journal = nullptr;
  /// Trace context the whole run is parented on. Invalid (the default) mints
  /// a fresh trace per run(); the orchestrate tool passes its own root so a
  /// re-used coordinator keeps one trace per invocation.
  TraceContext trace{};
  /// After every shard is collected, fetch TRACESPANS from each socket
  /// instance, shift the spans onto the local clock (clock-offset correction
  /// via the request/reply midpoint), and stitch everything reachable under
  /// this run's trace id into OrchestrationResult::fleet_trace. Same
  /// best-effort stance as collect_metrics.
  bool collect_trace = true;
};

/// What an orchestrated campaign produced, beyond the merged report.
struct OrchestrationResult {
  CampaignReport report;         ///< merged; byte-identical to unsharded run
  std::size_t num_shards = 0;
  std::size_t redispatches = 0;  ///< dispatches beyond each shard's first
  std::size_t local_shards = 0;  ///< shards that ran in-process
  std::vector<ShardProgress> shards;  ///< final per-shard state
  /// Sum of every reachable socket instance's metrics registry (counters
  /// add, histogram buckets add — see MetricsSnapshot::merge). Empty when
  /// collect_metrics is off or no instance answered.
  MetricsSnapshot fleet_metrics;
  std::size_t metrics_instances = 0;  ///< instances that contributed
  /// Closed spans from this run's trace, stitched across the fleet: the
  /// coordinator's own spans plus every reachable socket instance's, clock-
  /// offset-corrected, deduplicated by span id, sorted by start. Empty when
  /// collect_trace is off or tracing is compiled out.
  std::vector<TraceSpan> fleet_trace;
  std::size_t trace_instances = 0;  ///< instances that contributed spans
  TraceContext trace{};             ///< the run's root context (invalid when off)
};

class CampaignCoordinator {
 public:
  explicit CampaignCoordinator(FleetConfig fleet,
                               CoordinatorOptions options = {});

  /// Orchestrate `spec` across the fleet and block until the merged report
  /// is complete. The spec must be unsharded (the coordinator owns the
  /// slicing) and serializable (catalog designs only) to travel the wire;
  /// a custom-builder spec runs entirely in-process. Throws CheckError when
  /// a shard cannot be completed anywhere (e.g. fallback disabled and every
  /// instance down).
  [[nodiscard]] OrchestrationResult run(const CampaignSpec& spec);

 private:
  struct ShardWork;
  struct InstanceState;

  /// Submit `shard` to the next healthy instance; true on success. Marks
  /// instances it fails against unhealthy.
  [[nodiscard]] bool dispatch(ShardWork& shard,
                              std::vector<InstanceState>& instances);
  /// One STATUS/report-collection pass over an in-flight shard. May flip it
  /// to kDone or back to kPending (failure → re-dispatch).
  void poll_shard(ShardWork& shard, std::vector<InstanceState>& instances);
  void run_local(ShardWork& shard);
  [[nodiscard]] FleetSnapshot snapshot(
      const std::vector<ShardWork>& shards,
      const std::vector<InstanceState>& instances) const;

  FleetConfig fleet_;
  CoordinatorOptions options_;
  std::size_t rr_cursor_ = 0;     ///< round-robin dispatch position
  std::size_t redispatches_ = 0;
  std::size_t local_shards_ = 0;
  TraceContext run_root_{};       ///< this run's orchestrate.run context
};

/// Adaptive-round executor backed by a fleet coordinator: each round is
/// orchestrated like any campaign — sharded across the serviced instances,
/// supervised, re-dispatched on failure, merged — so an adaptive campaign's
/// follow-up rounds simply become extra shards flowing over the fleet. The
/// coordinator must outlive the returned executor.
[[nodiscard]] AdaptiveRoundExecutor make_adaptive_executor(
    CampaignCoordinator& coordinator);

}  // namespace emutile
