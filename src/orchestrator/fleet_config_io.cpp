#include "orchestrator/fleet_config_io.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/file_io.hpp"

namespace emutile {

FleetConfig parse_fleet_config(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  const auto fail = [&line_no](const std::string& message) {
    EMUTILE_CHECK(false, "fleet config line " << line_no << ": " << message);
  };

  // Advance to the next non-blank, non-comment line; empty string at EOF.
  const auto next = [&]() -> std::string {
    while (std::getline(in, line)) {
      ++line_no;
      const std::size_t start = line.find_first_not_of(" \t\r");
      if (start == std::string::npos || line[start] == '#') continue;
      const std::size_t last = line.find_last_not_of(" \t\r");
      return line.substr(start, last - start + 1);
    }
    return "";
  };

  const std::string header = next();
  if (header != "emutile-fleet v1")
    fail("fleet config must start with 'emutile-fleet v1'");

  FleetConfig config;
  bool saw_end = false;
  for (std::string entry = next(); !entry.empty(); entry = next()) {
    if (entry == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(entry);
    std::string key, name, kind, value, extra;
    fields >> key;
    if (key != "instance") fail("unknown key '" + key + "'");
    if (!(fields >> name)) fail("instance needs a name");
    if (!(fields >> kind)) fail("instance '" + name + "' needs an address kind");
    if (!(fields >> value))
      fail("instance '" + name + "' needs a " + kind + " address");
    if (fields >> extra) fail("trailing token '" + extra + "' after address");
    FleetInstance instance;
    instance.name = name;
    std::string scheme;
    if (kind == "socket" || kind == "unix") scheme = "unix:";
    else if (kind == "tcp") scheme = "tcp:";
    else if (kind == "spool") scheme = "spool:";
    else fail("unknown address kind '" + kind + "' (socket|tcp|spool)");
    try {
      instance.address = parse_service_address(scheme + value);
    } catch (const CheckError& e) {
      fail("instance '" + name + "': " + e.what());
    }
    for (const FleetInstance& existing : config.instances)
      if (existing.name == name) fail("duplicate instance name '" + name + "'");
    config.instances.push_back(std::move(instance));
  }
  EMUTILE_CHECK(saw_end, "fleet config is missing the 'end' footer");
  EMUTILE_CHECK(next().empty(), "content after the 'end' footer");
  EMUTILE_CHECK(!config.instances.empty(),
                "fleet config declares no instances");
  return config;
}

FleetConfig load_fleet_config_file(const std::filesystem::path& path) {
  return parse_fleet_config(read_file(path));
}

std::string serialize_fleet_config(const FleetConfig& config) {
  std::ostringstream os;
  os << "emutile-fleet v1\n";
  for (const FleetInstance& instance : config.instances) {
    os << "instance " << instance.name << " ";
    switch (instance.address.kind) {
      case AddressKind::kUnix:
        os << "socket " << instance.address.path.string();
        break;
      case AddressKind::kTcp:
        os << "tcp " << instance.address.host << ":" << instance.address.port;
        break;
      case AddressKind::kSpool:
        os << "spool " << instance.address.path.string();
        break;
    }
    os << "\n";
  }
  os << "end\n";
  return os.str();
}

}  // namespace emutile
