#pragma once
/// \file fleet_config_io.hpp
/// The fleet-config format: which serviced instances a campaign coordinator
/// fans shards out to, and how each one is addressed.
///
/// Line-oriented text, same conventions as the campaign spec format
/// (`# comments`, blank lines, `emutile-fleet v1` header, `end` footer):
///
///   emutile-fleet v1
///   instance alpha socket /var/emutile-a/serviced.sock
///   instance beta  tcp    10.0.0.7:7733
///   instance gamma spool  /var/emutile-c
///   end
///
/// Three address kinds (the ServiceAddress schemes of address.hpp):
///   socket <path>       the instance's Unix control socket — full protocol
///                       (SUBMIT/STATUS/WAIT/SHARDREPORT), live progress.
///                       `unix` is accepted as a synonym on input.
///   tcp <host:port>     the instance's TCP control endpoint — same protocol,
///                       cross-host
///   spool <root>        the instance's service *root* directory — the
///                       coordinator drops shard specs into <root>/spool and
///                       watches <root>/out for the shard report; degraded
///                       but works with --no-socket daemons and network
///                       filesystems
///
/// Instance names must be unique — they key health tracking, cache-affinity
/// history, and membership reconciliation (a coordinator reloading the fleet
/// file mid-campaign matches instances by name: new names join, missing
/// names retire), and appear in fleet snapshots and logs.

#include <string>
#include <vector>

#include "service/address.hpp"

namespace emutile {

struct FleetInstance {
  std::string name;
  ServiceAddress address;
};

struct FleetConfig {
  std::vector<FleetInstance> instances;
};

/// Parse a fleet config. Throws CheckError with a line number on malformed
/// input (bad header, unknown key or address kind, a tcp address without
/// host:port, duplicate or missing instance name, empty fleet, trailing
/// content).
[[nodiscard]] FleetConfig parse_fleet_config(const std::string& text);

/// Read and parse a fleet-config file. Throws CheckError on IO/parse errors.
[[nodiscard]] FleetConfig load_fleet_config_file(
    const std::filesystem::path& path);

/// Canonical serialization (`socket`/`tcp`/`spool` kinds);
/// parse(serialize(c)) reproduces `c`.
[[nodiscard]] std::string serialize_fleet_config(const FleetConfig& config);

}  // namespace emutile
