#pragma once
/// \file fleet_config_io.hpp
/// The fleet-config format: which serviced instances a campaign coordinator
/// fans shards out to, and how each one is addressed.
///
/// Line-oriented text, same conventions as the campaign spec format
/// (`# comments`, blank lines, `emutile-fleet v1` header, `end` footer):
///
///   emutile-fleet v1
///   instance alpha socket /var/emutile-a/serviced.sock
///   instance beta  spool  /var/emutile-b
///   end
///
/// Two address kinds:
///   socket <path>  the instance's Unix control socket — full protocol
///                  (SUBMIT/STATUS/WAIT/SHARDREPORT), live progress
///   spool <root>   the instance's service *root* directory — the
///                  coordinator drops shard specs into <root>/spool and
///                  watches <root>/out for the shard report; degraded but
///                  works with --no-socket daemons and network filesystems
///
/// Instance names must be unique — they key health tracking and appear in
/// fleet snapshots and logs.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace emutile {

enum class InstanceAddress : std::uint8_t {
  kSocket,  ///< path is the daemon's Unix control socket
  kSpool    ///< path is the daemon's service root (spool/ + out/ under it)
};

[[nodiscard]] const char* to_string(InstanceAddress address);

struct FleetInstance {
  std::string name;
  InstanceAddress address = InstanceAddress::kSocket;
  std::filesystem::path path;
};

struct FleetConfig {
  std::vector<FleetInstance> instances;
};

/// Parse a fleet config. Throws CheckError with a line number on malformed
/// input (bad header, unknown key or address kind, duplicate or missing
/// instance name, empty fleet, trailing content).
[[nodiscard]] FleetConfig parse_fleet_config(const std::string& text);

/// Read and parse a fleet-config file. Throws CheckError on IO/parse errors.
[[nodiscard]] FleetConfig load_fleet_config_file(
    const std::filesystem::path& path);

/// Canonical serialization; parse(serialize(c)) reproduces `c`.
[[nodiscard]] std::string serialize_fleet_config(const FleetConfig& config);

}  // namespace emutile
