#include "orchestrator/campaign_coordinator.hpp"

#include <algorithm>
#include <iterator>
#include <string_view>
#include <thread>
#include <utility>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "obs/trace_io.hpp"
#include "service/service_client.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

namespace emutile {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::kPending: return "pending";
    case ShardState::kRemote: return "remote";
    case ShardState::kLocal: return "local";
    case ShardState::kDone: return "done";
  }
  return "?";
}

/// One shard's worth of work and where it currently lives.
struct CampaignCoordinator::ShardWork {
  CampaignSpec spec;
  std::string text;  ///< canonical wire form of `spec`
  ShardProgress progress;
  std::size_t instance_index = 0;           ///< valid while kRemote
  Clock::time_point last_progress{};        ///< last observed forward motion
  std::filesystem::path spool_out_dir;      ///< discovered out dir (spool)
  CampaignReport report;                    ///< valid once kDone
};

struct CampaignCoordinator::InstanceState {
  const FleetInstance* config = nullptr;
  bool healthy = true;
};

CampaignCoordinator::CampaignCoordinator(FleetConfig fleet,
                                         CoordinatorOptions options)
    : fleet_(std::move(fleet)), options_(std::move(options)) {}

bool CampaignCoordinator::dispatch(ShardWork& shard,
                                   std::vector<InstanceState>& instances) {
  const std::string name_hint =
      "shard" + std::to_string(shard.progress.shard);
  for (std::size_t probe = 0; probe < instances.size(); ++probe) {
    const std::size_t index = (rr_cursor_ + probe) % instances.size();
    InstanceState& instance = instances[index];
    if (!instance.healthy) continue;
    // Each dispatch attempt gets its own synthesized span under the run
    // root; the context travels as the SUBMIT traceparent so the remote
    // campaign's spans hang off this exact attempt (re-dispatches stay
    // distinguishable in the stitched trace).
    const bool traced = Tracer::enabled() && run_root_.valid();
    const TraceContext dispatch_ctx =
        traced ? Tracer::global().child_context(run_root_) : TraceContext{};
    const std::string traceparent =
        traced ? format_traceparent(dispatch_ctx) : std::string();
    const std::uint64_t dispatch_start_us = traced ? journal_now_us() : 0;
    try {
      if (instance.config->address == InstanceAddress::kSocket) {
        const ServiceClient client(instance.config->path,
                                   options_.request_timeout_ms);
        shard.progress.campaign_id = client.submit(
            shard.text, options_.priority, name_hint, traceparent);
      } else {
        // Spool instances get the spec dropped into <root>/spool; the id is
        // daemon-assigned, so poll_shard discovers the output directory by
        // matching the canonical spec text instead. The traceparent rides a
        // comment line the canonical serialization never carries, so the
        // spec-text matching below still works on the out dir's spec.txt.
        shard.progress.campaign_id.clear();
        shard.spool_out_dir.clear();
        static_cast<void>(spool_submit_spec(
            instance.config->path, name_hint,
            prepend_traceparent(shard.text, traceparent)));
      }
    } catch (const ServiceClient::BusyError& e) {
      // A draining instance will never admit again — take it out of the
      // rotation (the reprobe loop readmits its replacement). A merely
      // loaded one stays healthy: if the whole fleet is busy the shard
      // stays pending until a queue frees up — that backpressure is the
      // point of the bounded SUBMIT queue.
      if (std::string_view(e.what()).find("draining") !=
          std::string_view::npos) {
        EMUTILE_WARN("fleet instance '" << instance.config->name
                                        << "' is draining — rotating out");
        instance.healthy = false;
      }
      continue;
    } catch (const std::exception& e) {
      EMUTILE_WARN("fleet instance '" << instance.config->name
                                      << "' failed a dispatch: " << e.what());
      instance.healthy = false;
      continue;
    }
    if (traced)
      Tracer::global().record_span("orchestrate.dispatch", dispatch_ctx,
                                   run_root_.span_id, dispatch_start_us,
                                   journal_now_us() - dispatch_start_us);
    shard.instance_index = index;
    shard.progress.instance = instance.config->name;
    shard.progress.state = ShardState::kRemote;
    shard.progress.sessions_done = 0;
    shard.last_progress = Clock::now();
    ++shard.progress.dispatches;
    if (shard.progress.dispatches > 1) {
      ++redispatches_;
      MetricsRegistry::global().counter("coordinator.redispatches").add();
    }
    MetricsRegistry::global().counter("coordinator.dispatches").add();
    if (options_.journal)
      options_.journal->record(
          "dispatch", {{"shard", shard.progress.shard},
                       {"instance", instance.config->name},
                       {"attempt", shard.progress.dispatches}});
    rr_cursor_ = (index + 1) % instances.size();
    return true;
  }
  return false;
}

void CampaignCoordinator::poll_shard(ShardWork& shard,
                                     std::vector<InstanceState>& instances) {
  InstanceState& instance = instances[shard.instance_index];
  const auto give_back = [&](const std::string& why, bool instance_dead) {
    EMUTILE_WARN("shard " << shard.progress.shard << " on '"
                          << instance.config->name << "': " << why
                          << " — re-dispatching");
    if (instance_dead) instance.healthy = false;
    shard.progress.state = ShardState::kPending;
    if (options_.journal)
      options_.journal->record("retry",
                               {{"shard", shard.progress.shard},
                                {"instance", instance.config->name},
                                {"why", why}});
  };
  // Evaluated lazily, *after* this poll has had its chance to refresh
  // last_progress — a tick that observes fresh progress (e.g. right after a
  // long in-process fallback blocked the loop) must never act on a stale
  // pre-poll timestamp and kill a healthy instance.
  const auto stalled = [&] {
    return options_.stall_deadline.count() > 0 &&
           Clock::now() - shard.last_progress > options_.stall_deadline;
  };

  if (instance.config->address == InstanceAddress::kSocket) {
    const ServiceClient client(instance.config->path,
                               options_.request_timeout_ms);
    try {
      const RemoteCampaignStatus status =
          client.status(shard.progress.campaign_id);
      if (status.daemon_draining && instance.healthy) {
        // Rolling upgrade in progress: stop handing this instance new
        // shards, but keep polling — a draining daemon finishes (or
        // journals) what it already holds, and this shard is collected
        // below like any other.
        EMUTILE_WARN("fleet instance '" << instance.config->name
                                        << "' is draining — rotating out");
        instance.healthy = false;
      }
      if (status.sessions_done > shard.progress.sessions_done)
        shard.last_progress = Clock::now();
      shard.progress.sessions_done = status.sessions_done;
      if (status.state == "finished") {
        // Already terminal, so WAIT returns immediately — it confirms the
        // final report hit the disk before we fetch it.
        static_cast<void>(client.wait(shard.progress.campaign_id,
                                      options_.request_timeout_ms));
        shard.report = parse_campaign_report(
            client.fetch_shard_report(shard.progress.campaign_id));
        shard.progress.state = ShardState::kDone;
        shard.progress.sessions_done = shard.progress.sessions_total;
        if (options_.journal)
          options_.journal->record("collect",
                                   {{"shard", shard.progress.shard},
                                    {"instance", instance.config->name}});
      } else if (status.terminal()) {
        // failed or cancelled out from under us: the instance answered, so
        // it stays healthy, but this shard needs a new home.
        give_back("campaign ended " + status.state, /*instance_dead=*/false);
      } else if (stalled()) {
        try {
          client.cancel(shard.progress.campaign_id);  // best-effort
        } catch (const std::exception&) {
        }
        give_back("no progress past the stall deadline",
                  /*instance_dead=*/true);
      }
    } catch (const std::exception& e) {
      give_back(e.what(), /*instance_dead=*/true);
    }
    return;
  }

  // Spool instance: discover the output directory by canonical spec text,
  // then watch for the shard report (written atomically, so it reads whole
  // or not at all).
  try {
    const std::filesystem::path out = instance.config->path / "out";
    if (shard.spool_out_dir.empty() && std::filesystem::exists(out)) {
      for (const auto& entry : std::filesystem::directory_iterator(out)) {
        if (!entry.is_directory()) continue;
        const std::filesystem::path spec_file = entry.path() / "spec.txt";
        std::error_code ec;
        if (!std::filesystem::exists(spec_file, ec)) continue;
        try {
          if (read_file(spec_file) == shard.text) {
            shard.spool_out_dir = entry.path();
            shard.last_progress = Clock::now();
            break;
          }
        } catch (const std::exception&) {
          // A vanished or unreadable dir is another campaign's business.
        }
      }
    }
    if (!shard.spool_out_dir.empty()) {
      if (std::filesystem::exists(shard.spool_out_dir / "report.shard")) {
        shard.report =
            load_campaign_report_file(shard.spool_out_dir / "report.shard");
        shard.progress.state = ShardState::kDone;
        shard.progress.sessions_done = shard.progress.sessions_total;
        if (options_.journal)
          options_.journal->record("collect",
                                   {{"shard", shard.progress.shard},
                                    {"instance", instance.config->name}});
        return;
      }
      if (std::filesystem::exists(shard.spool_out_dir / "error.txt")) {
        give_back("campaign failed (error.txt present)",
                  /*instance_dead=*/false);
        return;
      }
    }
    if (stalled())
      give_back("no progress past the stall deadline", /*instance_dead=*/true);
  } catch (const std::exception& e) {
    give_back(e.what(), /*instance_dead=*/true);
  }
}

void CampaignCoordinator::run_local(ShardWork& shard) {
  CampaignOptions options;
  options.num_threads = std::max<std::size_t>(1, options_.local_threads);
  options.campaign_id = "shard" + std::to_string(shard.progress.shard);
  shard.progress.state = ShardState::kLocal;
  shard.progress.instance = "local";
  ++shard.progress.dispatches;
  if (shard.progress.dispatches > 1) {
    ++redispatches_;
    MetricsRegistry::global().counter("coordinator.redispatches").add();
  }
  ++local_shards_;
  MetricsRegistry::global().counter("coordinator.local_fallbacks").add();
  if (options_.journal)
    options_.journal->record("local-fallback",
                             {{"shard", shard.progress.shard}});
  // Explicit parent: the in-process fallback runs on the supervision thread,
  // but the run root was opened via record_span, not the TLS stack.
  const ScopedSpan local_span(Tracer::global(), "orchestrate.local",
                              run_root_);
  shard.report = run_campaign(shard.spec, options);
  shard.progress.state = ShardState::kDone;
  shard.progress.sessions_done = shard.progress.sessions_total;
}

FleetSnapshot CampaignCoordinator::snapshot(
    const std::vector<ShardWork>& shards,
    const std::vector<InstanceState>& instances) const {
  FleetSnapshot snap;
  snap.total_instances = instances.size();
  for (const InstanceState& instance : instances)
    if (instance.healthy) ++snap.healthy_instances;
  snap.shards.reserve(shards.size());
  for (const ShardWork& shard : shards) {
    snap.shards.push_back(shard.progress);
    snap.sessions_done += shard.progress.sessions_done;
    snap.sessions_total += shard.progress.sessions_total;
    if (shard.progress.state == ShardState::kDone) ++snap.shards_done;
  }
  return snap;
}

OrchestrationResult CampaignCoordinator::run(const CampaignSpec& spec) {
  EMUTILE_CHECK(spec.shard_count == 1,
                "the coordinator shards the spec itself — pass it unsharded");
  // A coordinator may be reused: each run's counters start from zero.
  rr_cursor_ = 0;
  redispatches_ = 0;
  local_shards_ = 0;

  // Root the run's trace: adopt the caller's context or mint a fresh trace.
  // orchestrate.run is synthesized at the end (record_span) rather than
  // scoped, so dispatch() can parent on it from the first tick.
  run_root_ = TraceContext{};
  std::uint64_t run_start_us = 0;
  if (Tracer::enabled()) {
    run_root_ = Tracer::global().child_context(options_.trace);
    run_start_us = journal_now_us();
  }

  // A spec that cannot travel the wire (custom netlist builders) can still
  // be orchestrated — entirely in-process.
  bool serializable = true;
  try {
    static_cast<void>(serialize_campaign_spec(spec));
  } catch (const CheckError&) {
    serializable = false;
  }

  std::size_t num_shards =
      options_.num_shards > 0 ? options_.num_shards : fleet_.instances.size();
  num_shards = std::max<std::size_t>(1, num_shards);
  if (!serializable) {
    EMUTILE_CHECK(options_.allow_local_fallback,
                  "spec has custom-builder designs (no wire form) and local "
                  "fallback is disabled");
    num_shards = 1;
  }

  std::vector<ShardWork> shards(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    ShardWork& shard = shards[i];
    shard.spec = num_shards == 1 ? spec : spec.shard(i, num_shards);
    if (serializable) shard.text = serialize_campaign_spec(shard.spec);
    shard.progress.shard = i;
    shard.progress.sessions_total = shard.spec.expand().size();
  }

  std::vector<InstanceState> instances(fleet_.instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i)
    instances[i].config = &fleet_.instances[i];
  if (!serializable)
    for (InstanceState& instance : instances) instance.healthy = false;

  // The supervision loop: dispatch pending shards, poll in-flight ones,
  // stream a snapshot, sleep. A shard bounces kPending -> kRemote -> kDone,
  // detouring back to kPending on every failure until it exhausts the fleet
  // (one dispatch per instance plus slack) and runs locally.
  const std::size_t max_remote_dispatches = instances.size() + 1;
  Clock::time_point last_reprobe = Clock::now();
  for (;;) {
    // Re-probe unhealthy socket instances on the reprobe cadence: a PING
    // answered means a live daemon is back on that socket (typically the
    // upgraded replacement of a drained one, re-attached to the same root)
    // and it rejoins the rotation. A dead socket fails the connect inside
    // ping() and stays out — probing it costs microseconds.
    if (options_.reprobe_interval.count() > 0 &&
        Clock::now() - last_reprobe >= options_.reprobe_interval) {
      last_reprobe = Clock::now();
      for (InstanceState& instance : instances) {
        if (instance.healthy ||
            instance.config->address != InstanceAddress::kSocket)
          continue;
        const ServiceClient client(instance.config->path,
                                   options_.request_timeout_ms);
        if (client.ping()) {
          EMUTILE_WARN("fleet instance '" << instance.config->name
                                          << "' answered a re-probe — "
                                          << "rejoining the rotation");
          MetricsRegistry::global().counter("coordinator.rejoins").add();
          if (options_.journal)
            options_.journal->record("rejoin",
                                     {{"instance", instance.config->name}});
          instance.healthy = true;
        }
      }
    }

    std::size_t done = 0;
    bool any_healthy = false;
    for (const InstanceState& instance : instances)
      any_healthy = any_healthy || instance.healthy;

    for (ShardWork& shard : shards) {
      if (shard.progress.state == ShardState::kPending) {
        const bool exhausted =
            shard.progress.dispatches >= max_remote_dispatches;
        if (any_healthy && !exhausted && dispatch(shard, instances)) {
          // in flight now
        } else if (!any_healthy || exhausted ||
                   std::none_of(instances.begin(), instances.end(),
                                [](const InstanceState& i) {
                                  return i.healthy;
                                })) {
          EMUTILE_CHECK(options_.allow_local_fallback,
                        "no healthy fleet instance left for shard "
                            << shard.progress.shard
                            << " and local fallback is disabled");
          run_local(shard);
        }
        // else: every healthy instance answered busy — stay pending and
        // retry next tick; their bounded queues are draining.
      } else if (shard.progress.state == ShardState::kRemote) {
        poll_shard(shard, instances);
      }
      if (shard.progress.state == ShardState::kDone) ++done;
    }

    if (options_.on_snapshot) options_.on_snapshot(snapshot(shards, instances));
    if (done == shards.size()) break;
    std::this_thread::sleep_for(options_.poll_interval);
  }

  OrchestrationResult result;
  result.num_shards = num_shards;
  result.redispatches = redispatches_;
  result.local_shards = local_shards_;
  // Merge in shard-index order — the exact order the byte-identity contract
  // of CampaignReport::merge is tested against.
  for (ShardWork& shard : shards) result.report.merge(shard.report);
  result.shards.reserve(shards.size());
  for (const ShardWork& shard : shards) result.shards.push_back(shard.progress);

  // Fleet-wide observability: fold every reachable socket instance's
  // registry into one snapshot (integral values, so the merged series equal
  // the per-instance sums exactly). Best-effort — a dead instance loses its
  // metrics, never the run.
  if (options_.collect_metrics) {
    for (const InstanceState& instance : instances) {
      if (instance.config->address != InstanceAddress::kSocket) continue;
      try {
        const ServiceClient client(instance.config->path,
                                   options_.request_timeout_ms);
        result.fleet_metrics.merge(parse_metrics_text(client.fetch_metrics()));
        ++result.metrics_instances;
      } catch (const std::exception& e) {
        EMUTILE_WARN("fleet instance '" << instance.config->name
                                        << "' skipped in the metrics merge: "
                                        << e.what());
      }
    }
    if (options_.journal)
      options_.journal->record("fleet-metrics",
                               {{"instances", result.metrics_instances}});
  }

  // Fleet trace stitching: close the run root, then pull every socket
  // instance's span buffer over TRACESPANS and splice it onto the local
  // clock. journal_now_us() is a per-process epoch, so remote stamps mean
  // nothing here as-is; the reply's now_us was taken roughly at the
  // exchange midpoint, so midpoint - now_us estimates the remote→local
  // offset (symmetric-latency assumption, the NTP one). Best-effort like
  // the metrics merge — a dead instance loses its spans, never the run.
  if (Tracer::enabled() && run_root_.valid()) {
    Tracer& tracer = Tracer::global();
    tracer.record_span("orchestrate.run", run_root_,
                       options_.trace.valid() ? options_.trace.span_id : 0,
                       run_start_us, journal_now_us() - run_start_us);
    result.trace = run_root_;
    if (options_.collect_trace) {
      std::vector<TraceSpan> stitched =
          tracer.collect_trace(run_root_.trace_id, /*include_open=*/false);
      for (const InstanceState& instance : instances) {
        if (instance.config->address != InstanceAddress::kSocket) continue;
        try {
          const ServiceClient client(instance.config->path,
                                     options_.request_timeout_ms);
          const std::uint64_t t0 = journal_now_us();
          RemoteTraceSpans remote = client.fetch_trace_spans();
          const std::uint64_t t1 = journal_now_us();
          const std::int64_t offset =
              static_cast<std::int64_t>((t0 + t1) / 2) -
              static_cast<std::int64_t>(remote.now_us);
          std::vector<TraceSpan> spans = std::move(remote.spans);
          // Other traces' spans (and still-open ones — no defensible
          // duration) stay behind.
          spans.erase(
              std::remove_if(spans.begin(), spans.end(),
                             [&](const TraceSpan& s) {
                               return s.open ||
                                      s.trace_id != run_root_.trace_id;
                             }),
              spans.end());
          shift_spans(spans, offset);
          stitched.insert(stitched.end(),
                          std::make_move_iterator(spans.begin()),
                          std::make_move_iterator(spans.end()));
          ++result.trace_instances;
        } catch (const std::exception& e) {
          EMUTILE_WARN("fleet instance '" << instance.config->name
                                          << "' skipped in the trace stitch: "
                                          << e.what());
        }
      }
      // In-process fleets share one global tracer, so a span can arrive both
      // locally and over the wire — keep the first copy, then restore the
      // canonical (start_us, span_id) order the shifts may have disturbed.
      stitched = dedup_spans(std::move(stitched));
      std::sort(stitched.begin(), stitched.end(),
                [](const TraceSpan& a, const TraceSpan& b) {
                  return a.start_us != b.start_us ? a.start_us < b.start_us
                                                  : a.span_id < b.span_id;
                });
      result.fleet_trace = std::move(stitched);
      if (options_.journal)
        options_.journal->record("fleet-trace",
                                 {{"instances", result.trace_instances},
                                  {"spans", result.fleet_trace.size()}});
    }
  }
  return result;
}

AdaptiveRoundExecutor make_adaptive_executor(CampaignCoordinator& coordinator) {
  return [&coordinator](const CampaignSpec& spec, std::size_t) {
    return coordinator.run(spec).report;
  };
}

}  // namespace emutile
