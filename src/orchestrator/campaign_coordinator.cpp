#include "orchestrator/campaign_coordinator.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <iterator>
#include <string_view>
#include <system_error>
#include <thread>
#include <utility>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_report_io.hpp"
#include "campaign/campaign_spec_io.hpp"
#include "obs/trace_io.hpp"
#include "service/service_client.hpp"
#include "util/check.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"

namespace emutile {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

const char* to_string(ShardState state) {
  switch (state) {
    case ShardState::kPending: return "pending";
    case ShardState::kRemote: return "remote";
    case ShardState::kLocal: return "local";
    case ShardState::kDone: return "done";
  }
  return "?";
}

/// One shard's worth of work and where it currently lives. Owned through a
/// unique_ptr so work stealing can append shards mid-run without moving the
/// ones already in flight.
struct CampaignCoordinator::ShardWork {
  CampaignSpec spec;
  std::string text;  ///< canonical wire form of `spec`
  ShardProgress progress;
  std::size_t job_begin = 0;  ///< absolute job range this shard covers
  std::size_t job_end = 0;
  /// One-shot placement preference (the steal target); consumed by the next
  /// dispatch. -1 means none.
  int preferred_instance = -1;
  std::size_t instance_index = 0;           ///< valid while kRemote
  Clock::time_point last_progress{};        ///< last observed forward motion
  std::filesystem::path spool_out_dir;      ///< discovered out dir (spool)
  CampaignReport report;                    ///< valid once kDone
};

/// Live view of one fleet member. The config is held by value: the fleet can
/// be reconfigured mid-run (apply_fleet), so pointers into fleet_.instances
/// would dangle.
struct CampaignCoordinator::InstanceState {
  FleetInstance config;
  bool healthy = true;
  /// Retired instances (dropped from a reloaded fleet config) take no new
  /// dispatches but their in-flight shards are still polled and collected.
  bool retired = false;
  /// Lazily-dialed persistent client (wire instances only). Reset whenever
  /// the instance is presumed dead, so a replacement daemon gets a fresh
  /// HELLO probe.
  std::unique_ptr<ServiceClient> client;
  /// Job ranges this instance has been asked to run — its caches plausibly
  /// hold these sessions, which is what cache-affinity placement scores.
  std::vector<std::pair<std::size_t, std::size_t>> history;
};

namespace {

/// How many of the shard's jobs this instance has plausibly cached.
/// History ranges may overlap after re-dispatches; the double counting only
/// sharpens the preference for the instance that saw the work most.
std::size_t affinity_overlap_impl(
    const std::vector<std::pair<std::size_t, std::size_t>>& history,
    std::size_t begin, std::size_t end) {
  std::size_t total = 0;
  for (const auto& [b, e] : history) {
    const std::size_t lo = std::max(b, begin);
    const std::size_t hi = std::min(e, end);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

}  // namespace

CampaignCoordinator::CampaignCoordinator(FleetConfig fleet,
                                         CoordinatorOptions options)
    : fleet_(std::move(fleet)), options_(std::move(options)) {}

CampaignCoordinator::~CampaignCoordinator() = default;

ServiceClient& CampaignCoordinator::client_for(InstanceState& instance) {
  if (!instance.client) {
    instance.client = std::make_unique<ServiceClient>(
        instance.config.address, options_.request_timeout_ms);
    // One connection per instance across the whole supervision loop (when
    // the daemon advertises the `persist` cap) — fleet polling should not
    // pay a dial per tick, least of all on TCP. Falls back to one-shot
    // exchanges transparently on any persistent-channel error.
    instance.client->set_persistent(true);
  }
  return *instance.client;
}

bool CampaignCoordinator::dispatch(ShardWork& shard) {
  const std::string name_hint =
      "shard" + std::to_string(shard.progress.shard);
  const auto eligible = [&](std::size_t i) {
    return instances_[i].healthy && !instances_[i].retired;
  };

  // Candidate order: the steal target first (if any), then the instance
  // whose caches overlap this shard's job range the most, then round-robin
  // over everyone else. The first candidate that admits the SUBMIT wins.
  std::vector<std::size_t> order;
  order.reserve(instances_.size());
  const auto push_unique = [&](std::size_t i) {
    if (std::find(order.begin(), order.end(), i) == order.end())
      order.push_back(i);
  };
  if (shard.preferred_instance >= 0) {
    const auto preferred = static_cast<std::size_t>(shard.preferred_instance);
    if (preferred < instances_.size() && eligible(preferred))
      push_unique(preferred);
  }
  std::size_t best_overlap = 0;
  std::size_t best_index = instances_.size();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (!eligible(i)) continue;
    const std::size_t overlap = affinity_overlap_impl(
        instances_[i].history, shard.job_begin, shard.job_end);
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best_index = i;
    }
  }
  if (best_index < instances_.size()) push_unique(best_index);
  for (std::size_t probe = 0; probe < instances_.size(); ++probe) {
    const std::size_t index = (rr_cursor_ + probe) % instances_.size();
    if (eligible(index)) push_unique(index);
  }

  for (const std::size_t index : order) {
    InstanceState& instance = instances_[index];
    // Each dispatch attempt gets its own synthesized span under the run
    // root; the context travels as the SUBMIT traceparent so the remote
    // campaign's spans hang off this exact attempt (re-dispatches stay
    // distinguishable in the stitched trace).
    const bool traced = Tracer::enabled() && run_root_.valid();
    const TraceContext dispatch_ctx =
        traced ? Tracer::global().child_context(run_root_) : TraceContext{};
    const std::string traceparent =
        traced ? format_traceparent(dispatch_ctx) : std::string();
    const std::uint64_t dispatch_start_us = traced ? journal_now_us() : 0;
    try {
      if (instance.config.address.is_wire()) {
        shard.progress.campaign_id = client_for(instance).submit(
            shard.text, options_.priority, name_hint, traceparent);
      } else {
        // Spool instances get the spec dropped into <root>/spool; the id is
        // daemon-assigned, so poll_shard discovers the output directory by
        // matching the canonical spec text instead. The traceparent rides a
        // comment line the canonical serialization never carries, so the
        // spec-text matching below still works on the out dir's spec.txt.
        shard.progress.campaign_id.clear();
        shard.spool_out_dir.clear();
        static_cast<void>(spool_submit_spec(
            instance.config.address.path, name_hint,
            prepend_traceparent(shard.text, traceparent)));
      }
    } catch (const ServiceError& e) {
      switch (e.code()) {
        case ServiceErrorCode::kDraining:
          // A draining instance will never admit again — take it out of the
          // rotation (the reprobe loop readmits its replacement); its
          // in-flight shards are still collected.
          EMUTILE_WARN("fleet instance '" << instance.config.name
                                          << "' is draining — rotating out");
          instance.healthy = false;
          break;
        case ServiceErrorCode::kBusy:
          // A loaded instance stays healthy: if the whole fleet is busy the
          // shard stays pending until a queue frees up — that backpressure
          // is the point of the bounded SUBMIT queue.
          break;
        default:
          // io / protocol / overdeadline: presume the instance dead. Drop
          // the client so a replacement daemon gets a fresh HELLO.
          EMUTILE_WARN("fleet instance '" << instance.config.name
                                          << "' failed a dispatch: "
                                          << e.what());
          instance.healthy = false;
          instance.client.reset();
          break;
      }
      continue;
    } catch (const std::exception& e) {
      EMUTILE_WARN("fleet instance '" << instance.config.name
                                      << "' failed a dispatch: " << e.what());
      instance.healthy = false;
      instance.client.reset();
      continue;
    }
    if (traced)
      Tracer::global().record_span("orchestrate.dispatch", dispatch_ctx,
                                   run_root_.span_id, dispatch_start_us,
                                   journal_now_us() - dispatch_start_us);
    const bool by_affinity =
        affinity_overlap_impl(instance.history, shard.job_begin,
                              shard.job_end) > 0;
    instance.history.emplace_back(shard.job_begin, shard.job_end);
    shard.preferred_instance = -1;
    shard.instance_index = index;
    shard.progress.instance = instance.config.name;
    shard.progress.state = ShardState::kRemote;
    shard.progress.sessions_done = 0;
    shard.last_progress = Clock::now();
    ++shard.progress.dispatches;
    if (shard.progress.dispatches > 1) {
      ++redispatches_;
      MetricsRegistry::global().counter("coordinator.redispatches").add();
    }
    if (by_affinity) {
      ++affinity_dispatches_;
      MetricsRegistry::global().counter("coordinator.affinity_dispatches")
          .add();
    }
    MetricsRegistry::global().counter("coordinator.dispatches").add();
    if (options_.journal)
      options_.journal->record(
          "dispatch", {{"shard", shard.progress.shard},
                       {"instance", instance.config.name},
                       {"attempt", shard.progress.dispatches},
                       {"affinity", by_affinity ? 1 : 0}});
    rr_cursor_ = (index + 1) % instances_.size();
    return true;
  }
  return false;
}

void CampaignCoordinator::poll_shard(ShardWork& shard) {
  InstanceState& instance = instances_[shard.instance_index];
  const auto give_back = [&](const std::string& why, bool instance_dead) {
    EMUTILE_WARN("shard " << shard.progress.shard << " on '"
                          << instance.config.name << "': " << why
                          << " — re-dispatching");
    if (instance_dead) {
      instance.healthy = false;
      instance.client.reset();
    }
    shard.progress.state = ShardState::kPending;
    if (options_.journal)
      options_.journal->record("retry",
                               {{"shard", shard.progress.shard},
                                {"instance", instance.config.name},
                                {"why", why}});
  };
  // Evaluated lazily, *after* this poll has had its chance to refresh
  // last_progress — a tick that observes fresh progress (e.g. right after a
  // long in-process fallback blocked the loop) must never act on a stale
  // pre-poll timestamp and kill a healthy instance.
  const auto stalled = [&] {
    return options_.stall_deadline.count() > 0 &&
           Clock::now() - shard.last_progress > options_.stall_deadline;
  };

  if (instance.config.address.is_wire()) {
    ServiceClient& client = client_for(instance);
    try {
      const RemoteCampaignStatus status =
          client.status(shard.progress.campaign_id);
      if (status.daemon_draining && instance.healthy) {
        // Rolling upgrade in progress: stop handing this instance new
        // shards, but keep polling — a draining daemon finishes (or
        // journals) what it already holds, and this shard is collected
        // below like any other.
        EMUTILE_WARN("fleet instance '" << instance.config.name
                                        << "' is draining — rotating out");
        instance.healthy = false;
      }
      if (status.sessions_done > shard.progress.sessions_done)
        shard.last_progress = Clock::now();
      shard.progress.sessions_done = status.sessions_done;
      if (status.state == "finished") {
        // Already terminal, so WAIT returns immediately — it confirms the
        // final report hit the disk before we fetch it.
        static_cast<void>(client.wait(shard.progress.campaign_id,
                                      options_.request_timeout_ms));
        shard.report = parse_campaign_report(
            client.fetch_shard_report(shard.progress.campaign_id));
        shard.progress.state = ShardState::kDone;
        shard.progress.sessions_done = shard.progress.sessions_total;
        if (options_.journal)
          options_.journal->record("collect",
                                   {{"shard", shard.progress.shard},
                                    {"instance", instance.config.name}});
      } else if (status.terminal()) {
        // failed or cancelled out from under us: the instance answered, so
        // it stays healthy, but this shard needs a new home.
        give_back("campaign ended " + status.state, /*instance_dead=*/false);
      } else if (stalled()) {
        try {
          client.cancel(shard.progress.campaign_id);  // best-effort
        } catch (const std::exception&) {
        }
        give_back("no progress past the stall deadline",
                  /*instance_dead=*/true);
      }
    } catch (const std::exception& e) {
      give_back(e.what(), /*instance_dead=*/true);
    }
    return;
  }

  // Spool instance: discover the output directory by canonical spec text,
  // then watch for the shard report (written atomically, so it reads whole
  // or not at all).
  try {
    const std::filesystem::path out = instance.config.address.path / "out";
    if (shard.spool_out_dir.empty() && std::filesystem::exists(out)) {
      for (const auto& entry : std::filesystem::directory_iterator(out)) {
        if (!entry.is_directory()) continue;
        const std::filesystem::path spec_file = entry.path() / "spec.txt";
        std::error_code ec;
        if (!std::filesystem::exists(spec_file, ec)) continue;
        try {
          if (read_file(spec_file) == shard.text) {
            shard.spool_out_dir = entry.path();
            shard.last_progress = Clock::now();
            break;
          }
        } catch (const std::exception&) {
          // A vanished or unreadable dir is another campaign's business.
        }
      }
    }
    if (!shard.spool_out_dir.empty()) {
      if (std::filesystem::exists(shard.spool_out_dir / "report.shard")) {
        shard.report =
            load_campaign_report_file(shard.spool_out_dir / "report.shard");
        shard.progress.state = ShardState::kDone;
        shard.progress.sessions_done = shard.progress.sessions_total;
        if (options_.journal)
          options_.journal->record("collect",
                                   {{"shard", shard.progress.shard},
                                    {"instance", instance.config.name}});
        return;
      }
      if (std::filesystem::exists(shard.spool_out_dir / "error.txt")) {
        give_back("campaign failed (error.txt present)",
                  /*instance_dead=*/false);
        return;
      }
    }
    if (stalled())
      give_back("no progress past the stall deadline", /*instance_dead=*/true);
  } catch (const std::exception& e) {
    give_back(e.what(), /*instance_dead=*/true);
  }
}

void CampaignCoordinator::run_local(ShardWork& shard) {
  CampaignOptions options;
  options.num_threads = std::max<std::size_t>(1, options_.local_threads);
  options.campaign_id = "shard" + std::to_string(shard.progress.shard);
  shard.progress.state = ShardState::kLocal;
  shard.progress.instance = "local";
  ++shard.progress.dispatches;
  if (shard.progress.dispatches > 1) {
    ++redispatches_;
    MetricsRegistry::global().counter("coordinator.redispatches").add();
  }
  ++local_shards_;
  MetricsRegistry::global().counter("coordinator.local_fallbacks").add();
  if (options_.journal)
    options_.journal->record("local-fallback",
                             {{"shard", shard.progress.shard}});
  // Explicit parent: the in-process fallback runs on the supervision thread,
  // but the run root was opened via record_span, not the TLS stack.
  const ScopedSpan local_span(Tracer::global(), "orchestrate.local",
                              run_root_);
  shard.report = run_campaign(shard.spec, options);
  shard.progress.state = ShardState::kDone;
  shard.progress.sessions_done = shard.progress.sessions_total;
}

void CampaignCoordinator::maybe_steal() {
  if (!options_.enable_stealing || !serializable_) return;
  // Pending shards would soak up an idle instance through the normal
  // dispatch path — stealing only makes sense once everything is placed.
  for (const auto& shard : shards_)
    if (shard->progress.state == ShardState::kPending) return;

  // An idle instance: healthy, accepting work, on the wire (a spool
  // instance's progress is invisible until completion — never steal for
  // one), and serving no in-flight shard.
  std::size_t idle = instances_.size();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const InstanceState& instance = instances_[i];
    if (!instance.healthy || instance.retired ||
        !instance.config.address.is_wire())
      continue;
    bool busy = false;
    for (const auto& shard : shards_)
      busy = busy || (shard->progress.state == ShardState::kRemote &&
                      shard->instance_index == i);
    if (!busy) {
      idle = i;
      break;
    }
  }
  if (idle == instances_.size()) return;

  // The victim: the in-flight wire shard with the most remaining sessions.
  // measure_baselines shards assign baseline scenarios round-robin by shard
  // index, which slicing would disturb — leave them whole.
  ShardWork* victim = nullptr;
  std::size_t most_remaining = 0;
  for (const auto& shard : shards_) {
    if (shard->progress.state != ShardState::kRemote) continue;
    if (!instances_[shard->instance_index].config.address.is_wire()) continue;
    if (shard->spec.measure_baselines) continue;
    const std::size_t done =
        std::min(shard->progress.sessions_done, shard->progress.sessions_total);
    const std::size_t remaining = shard->progress.sessions_total - done;
    if (remaining >= options_.min_steal_sessions &&
        remaining > most_remaining) {
      most_remaining = remaining;
      victim = shard.get();
    }
  }
  if (victim == nullptr) return;

  // Split the victim's *unfinished* range in half: jobs run in expansion
  // order, so [job_begin + done, job_end) approximates what is left. The
  // victim keeps the front half (its caches are warm there — completed
  // sessions in the re-run are cache hits); the back half goes to the idle
  // instance. Clamped so both halves stay non-empty.
  const std::size_t done =
      std::min(victim->progress.sessions_done, victim->progress.sessions_total);
  std::size_t mid = victim->job_begin + done +
                    (victim->job_end - victim->job_begin - done) / 2;
  mid = std::clamp(mid, victim->job_begin + 1, victim->job_end - 1);

  // Best-effort cancel of the victim's in-flight campaign — it is about to
  // be superseded by the narrowed re-dispatch. A failed cancel just wastes
  // remote cycles; the result cache makes the overlap free either way.
  try {
    client_for(instances_[victim->instance_index])
        .cancel(victim->progress.campaign_id);
  } catch (const std::exception&) {
  }

  auto stolen = std::make_unique<ShardWork>();
  stolen->spec = victim->spec.slice(mid, victim->job_end);
  stolen->text = serialize_campaign_spec(stolen->spec);
  stolen->job_begin = mid;
  stolen->job_end = victim->job_end;
  stolen->preferred_instance = static_cast<int>(idle);
  stolen->progress.shard = shards_.size();
  stolen->progress.sessions_total = stolen->spec.expand().size();

  const std::size_t victim_index = victim->progress.shard;
  victim->spec = victim->spec.slice(victim->job_begin, mid);
  victim->text = serialize_campaign_spec(victim->spec);
  victim->job_end = mid;
  victim->progress.state = ShardState::kPending;
  victim->progress.campaign_id.clear();
  victim->progress.sessions_done = 0;
  victim->progress.sessions_total = victim->spec.expand().size();
  victim->spool_out_dir.clear();
  victim->last_progress = Clock::now();
  // No preference: cache affinity routes the narrowed front half straight
  // back to the instance that was already running it.

  ++steals_;
  MetricsRegistry::global().counter("coordinator.steals").add();
  EMUTILE_WARN("stealing jobs [" << mid << ", " << stolen->job_end
                                 << ") of shard " << victim_index
                                 << " for idle instance '"
                                 << instances_[idle].config.name << "'");
  if (options_.journal)
    options_.journal->record("steal",
                             {{"victim", victim_index},
                              {"shard", stolen->progress.shard},
                              {"instance", instances_[idle].config.name},
                              {"at", mid}});
  shards_.push_back(std::move(stolen));
}

void CampaignCoordinator::apply_fleet(const FleetConfig& fresh) {
  const auto find_fresh = [&](const std::string& name) -> const FleetInstance* {
    for (const FleetInstance& instance : fresh.instances)
      if (instance.name == name) return &instance;
    return nullptr;
  };
  for (InstanceState& instance : instances_) {
    const FleetInstance* updated = find_fresh(instance.config.name);
    if (updated == nullptr) {
      if (!instance.retired) {
        EMUTILE_WARN("fleet instance '" << instance.config.name
                                        << "' left the fleet — retiring");
        instance.retired = true;
        if (options_.journal)
          options_.journal->record("retire",
                                   {{"instance", instance.config.name}});
      }
      continue;
    }
    if (instance.retired || !(updated->address == instance.config.address)) {
      // Back in the fleet, possibly at a new address: reconnect and rejoin.
      instance.config = *updated;
      instance.client.reset();
      instance.healthy = true;
      instance.retired = false;
    }
  }
  for (const FleetInstance& instance : fresh.instances) {
    const auto known = std::find_if(
        instances_.begin(), instances_.end(), [&](const InstanceState& state) {
          return state.config.name == instance.name;
        });
    if (known != instances_.end()) continue;
    EMUTILE_WARN("fleet instance '" << instance.name
                                    << "' joined mid-campaign");
    InstanceState state;
    state.config = instance;
    if (!serializable_) state.healthy = false;
    instances_.push_back(std::move(state));
    ++joined_instances_;
    MetricsRegistry::global().counter("coordinator.joins").add();
    if (options_.journal)
      options_.journal->record("join", {{"instance", instance.name}});
  }
}

void CampaignCoordinator::handle_control_connection(int fd) {
  std::string request;
  if (fd_read_all(fd, request, /*timeout_ms=*/2'000)) {
    std::string response;
    const std::size_t eol = request.find('\n');
    const std::string first =
        eol == std::string::npos ? request : request.substr(0, eol);
    const std::string body =
        eol == std::string::npos ? std::string() : request.substr(eol + 1);
    if (first == "PING") {
      response = "OK pong\n";
    } else if (first == "FLEET") {
      try {
        if (body.find_first_not_of(" \t\r\n") == std::string::npos) {
          // Bare FLEET: report the current membership (retired excluded).
          FleetConfig current;
          for (const InstanceState& instance : instances_)
            if (!instance.retired)
              current.instances.push_back(instance.config);
          response = "OK fleet " +
                     std::to_string(current.instances.size()) + "\n" +
                     serialize_fleet_config(current);
        } else {
          apply_fleet(parse_fleet_config(body));
          std::size_t active = 0;
          for (const InstanceState& instance : instances_)
            if (!instance.retired) ++active;
          response = "OK fleet " + std::to_string(active) + "\n";
        }
      } catch (const std::exception& e) {
        response = std::string("ERR ") + e.what() + "\n";
      }
    } else {
      response = "ERR unknown control command '" + first + "'\n";
    }
    static_cast<void>(fd_write_all(fd, response));
  }
  ::close(fd);
}

void CampaignCoordinator::poll_membership() {
  // Control listener: drain whatever connected since the last tick.
  while (control_fd_ >= 0) {
    const int fd = ::accept(control_fd_, nullptr, nullptr);
    if (fd < 0) break;
    handle_control_connection(fd);
  }
  // Explicit reload (the orchestrate tool's SIGHUP handler flips this).
  bool reload = options_.reload_flag != nullptr &&
                options_.reload_flag->exchange(false);
  // Fleet-file watch: any mtime change triggers a re-read.
  if (!reload && !options_.fleet_file.empty()) {
    std::error_code ec;
    const auto mtime =
        std::filesystem::last_write_time(options_.fleet_file, ec);
    if (!ec && mtime != fleet_file_mtime_) {
      fleet_file_mtime_ = mtime;
      reload = true;
    }
  }
  if (reload && !options_.fleet_file.empty()) {
    try {
      apply_fleet(load_fleet_config_file(options_.fleet_file));
    } catch (const std::exception& e) {
      EMUTILE_WARN("fleet reload failed (keeping current membership): "
                   << e.what());
    }
  }
}

FleetSnapshot CampaignCoordinator::snapshot() const {
  FleetSnapshot snap;
  snap.total_instances = instances_.size();
  for (const InstanceState& instance : instances_)
    if (instance.healthy && !instance.retired) ++snap.healthy_instances;
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snap.shards.push_back(shard->progress);
    snap.sessions_done += shard->progress.sessions_done;
    snap.sessions_total += shard->progress.sessions_total;
    if (shard->progress.state == ShardState::kDone) ++snap.shards_done;
  }
  return snap;
}

OrchestrationResult CampaignCoordinator::run(const CampaignSpec& spec) {
  EMUTILE_CHECK(spec.shard_count == 1,
                "the coordinator shards the spec itself — pass it unsharded");
  EMUTILE_CHECK(!spec.sliced(),
                "the coordinator slices the spec itself — pass it unsliced");
  // A coordinator may be reused: each run's counters start from zero.
  rr_cursor_ = 0;
  redispatches_ = 0;
  local_shards_ = 0;
  steals_ = 0;
  affinity_dispatches_ = 0;
  joined_instances_ = 0;
  shards_.clear();
  instances_.clear();

  // Root the run's trace: adopt the caller's context or mint a fresh trace.
  // orchestrate.run is synthesized at the end (record_span) rather than
  // scoped, so dispatch() can parent on it from the first tick.
  run_root_ = TraceContext{};
  std::uint64_t run_start_us = 0;
  if (Tracer::enabled()) {
    run_root_ = Tracer::global().child_context(options_.trace);
    run_start_us = journal_now_us();
  }

  // A spec that cannot travel the wire (custom netlist builders) can still
  // be orchestrated — entirely in-process.
  serializable_ = true;
  try {
    static_cast<void>(serialize_campaign_spec(spec));
  } catch (const CheckError&) {
    serializable_ = false;
  }

  std::size_t num_shards =
      options_.num_shards > 0 ? options_.num_shards : fleet_.instances.size();
  num_shards = std::max<std::size_t>(1, num_shards);
  if (!serializable_) {
    EMUTILE_CHECK(options_.allow_local_fallback,
                  "spec has custom-builder designs (no wire form) and local "
                  "fallback is disabled");
    num_shards = 1;
  }

  const std::size_t total_jobs = spec.num_sessions();
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<ShardWork>();
    shard->spec = num_shards == 1 ? spec : spec.shard(i, num_shards);
    if (serializable_) shard->text = serialize_campaign_spec(shard->spec);
    shard->progress.shard = i;
    shard->progress.sessions_total = shard->spec.expand().size();
    // Mirror expand()'s contiguous slicing so job ranges line up exactly.
    shard->job_begin = total_jobs * i / num_shards;
    shard->job_end = total_jobs * (i + 1) / num_shards;
    shards_.push_back(std::move(shard));
  }

  instances_.reserve(fleet_.instances.size());
  for (const FleetInstance& instance : fleet_.instances) {
    InstanceState state;
    state.config = instance;
    if (!serializable_) state.healthy = false;
    instances_.push_back(std::move(state));
  }

  // Elasticity plumbing: remember the fleet file's starting mtime (only
  // *changes* trigger a reload) and open the control listener.
  if (!options_.fleet_file.empty()) {
    std::error_code ec;
    fleet_file_mtime_ =
        std::filesystem::last_write_time(options_.fleet_file, ec);
  }
  struct ControlGuard {
    int& fd;
    ~ControlGuard() {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  } control_guard{control_fd_};
  if (options_.control_address) {
    EMUTILE_CHECK(options_.control_address->is_wire(),
                  "control address must be a unix: or tcp: address");
    control_fd_ = listen_service_address(*options_.control_address,
                                         /*backlog=*/16,
                                         /*nonblocking=*/true);
  }

  // The supervision loop: reconcile membership, dispatch pending shards,
  // poll in-flight ones, steal for idle instances, stream a snapshot,
  // sleep. A shard bounces kPending -> kRemote -> kDone, detouring back to
  // kPending on every failure until it exhausts the fleet (one dispatch per
  // instance plus slack) and runs locally.
  Clock::time_point last_reprobe = Clock::now();
  for (;;) {
    poll_membership();

    // Re-probe unhealthy wire instances on the reprobe cadence: a PING
    // answered means a live daemon is back on that address (typically the
    // upgraded replacement of a drained one, re-attached to the same root)
    // and it rejoins the rotation. A dead address fails the connect inside
    // ping() and stays out — probing it costs microseconds.
    if (options_.reprobe_interval.count() > 0 &&
        Clock::now() - last_reprobe >= options_.reprobe_interval) {
      last_reprobe = Clock::now();
      for (InstanceState& instance : instances_) {
        if (instance.healthy || instance.retired ||
            !instance.config.address.is_wire())
          continue;
        if (client_for(instance).ping()) {
          EMUTILE_WARN("fleet instance '" << instance.config.name
                                          << "' answered a re-probe — "
                                          << "rejoining the rotation");
          MetricsRegistry::global().counter("coordinator.rejoins").add();
          if (options_.journal)
            options_.journal->record("rejoin",
                                     {{"instance", instance.config.name}});
          instance.healthy = true;
        }
      }
    }

    // One dispatch per live instance plus slack; joins raise the budget.
    const std::size_t max_remote_dispatches = instances_.size() + 1;
    std::size_t done = 0;
    bool any_healthy = false;
    for (const InstanceState& instance : instances_)
      any_healthy =
          any_healthy || (instance.healthy && !instance.retired);

    // Index loop: maybe_steal() below appends, and a re-dispatched shard
    // appended this very tick should still be considered next tick.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      ShardWork& shard = *shards_[i];
      if (shard.progress.state == ShardState::kPending) {
        const bool exhausted =
            shard.progress.dispatches >= max_remote_dispatches;
        if (any_healthy && !exhausted && dispatch(shard)) {
          // in flight now
        } else if (!any_healthy || exhausted) {
          EMUTILE_CHECK(options_.allow_local_fallback,
                        "no healthy fleet instance left for shard "
                            << shard.progress.shard
                            << " and local fallback is disabled");
          run_local(shard);
        }
        // else: every healthy instance answered busy — stay pending and
        // retry next tick; their bounded queues are draining.
      } else if (shard.progress.state == ShardState::kRemote) {
        poll_shard(shard);
      }
      if (shard.progress.state == ShardState::kDone) ++done;
    }

    maybe_steal();

    if (options_.on_snapshot) options_.on_snapshot(snapshot());
    if (done == shards_.size()) break;
    std::this_thread::sleep_for(options_.poll_interval);
  }

  OrchestrationResult result;
  result.num_shards = shards_.size();
  result.redispatches = redispatches_;
  result.local_shards = local_shards_;
  result.steals = steals_;
  result.affinity_dispatches = affinity_dispatches_;
  result.joined_instances = joined_instances_;
  // Merge in job order. Stealing may have appended shards out of index
  // order, but every shard covers a disjoint contiguous job range, so
  // sorting by job_begin restores the exact order the byte-identity
  // contract of CampaignReport::merge is tested against.
  std::vector<ShardWork*> ordered;
  ordered.reserve(shards_.size());
  for (const auto& shard : shards_) ordered.push_back(shard.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardWork* a, const ShardWork* b) {
              return a->job_begin < b->job_begin;
            });
  for (ShardWork* shard : ordered) result.report.merge(shard->report);
  result.shards.reserve(shards_.size());
  for (const auto& shard : shards_) result.shards.push_back(shard->progress);

  // Fleet-wide observability: fold every reachable wire instance's
  // registry into one snapshot (integral values, so the merged series equal
  // the per-instance sums exactly). Best-effort — a dead instance loses its
  // metrics, never the run. Retired instances are still asked: they may
  // have served shards before leaving.
  if (options_.collect_metrics) {
    for (InstanceState& instance : instances_) {
      if (!instance.config.address.is_wire()) continue;
      try {
        result.fleet_metrics.merge(
            parse_metrics_text(client_for(instance).fetch_metrics()));
        ++result.metrics_instances;
      } catch (const std::exception& e) {
        EMUTILE_WARN("fleet instance '" << instance.config.name
                                        << "' skipped in the metrics merge: "
                                        << e.what());
      }
    }
    if (options_.journal)
      options_.journal->record("fleet-metrics",
                               {{"instances", result.metrics_instances}});
  }

  // Fleet trace stitching: close the run root, then pull every wire
  // instance's span buffer over TRACESPANS and splice it onto the local
  // clock. journal_now_us() is a per-process epoch, so remote stamps mean
  // nothing here as-is; the reply's now_us was taken roughly at the
  // exchange midpoint, so midpoint - now_us estimates the remote→local
  // offset (symmetric-latency assumption, the NTP one). Best-effort like
  // the metrics merge — a dead instance loses its spans, never the run.
  if (Tracer::enabled() && run_root_.valid()) {
    Tracer& tracer = Tracer::global();
    tracer.record_span("orchestrate.run", run_root_,
                       options_.trace.valid() ? options_.trace.span_id : 0,
                       run_start_us, journal_now_us() - run_start_us);
    result.trace = run_root_;
    if (options_.collect_trace) {
      std::vector<TraceSpan> stitched =
          tracer.collect_trace(run_root_.trace_id, /*include_open=*/false);
      for (InstanceState& instance : instances_) {
        if (!instance.config.address.is_wire()) continue;
        try {
          ServiceClient& client = client_for(instance);
          const std::uint64_t t0 = journal_now_us();
          RemoteTraceSpans remote = client.fetch_trace_spans();
          const std::uint64_t t1 = journal_now_us();
          const std::int64_t offset =
              static_cast<std::int64_t>((t0 + t1) / 2) -
              static_cast<std::int64_t>(remote.now_us);
          std::vector<TraceSpan> spans = std::move(remote.spans);
          // Other traces' spans (and still-open ones — no defensible
          // duration) stay behind.
          spans.erase(
              std::remove_if(spans.begin(), spans.end(),
                             [&](const TraceSpan& s) {
                               return s.open ||
                                      s.trace_id != run_root_.trace_id;
                             }),
              spans.end());
          shift_spans(spans, offset);
          stitched.insert(stitched.end(),
                          std::make_move_iterator(spans.begin()),
                          std::make_move_iterator(spans.end()));
          ++result.trace_instances;
        } catch (const std::exception& e) {
          EMUTILE_WARN("fleet instance '" << instance.config.name
                                          << "' skipped in the trace stitch: "
                                          << e.what());
        }
      }
      // In-process fleets share one global tracer, so a span can arrive both
      // locally and over the wire — keep the first copy, then restore the
      // canonical (start_us, span_id) order the shifts may have disturbed.
      stitched = dedup_spans(std::move(stitched));
      std::sort(stitched.begin(), stitched.end(),
                [](const TraceSpan& a, const TraceSpan& b) {
                  return a.start_us != b.start_us ? a.start_us < b.start_us
                                                  : a.span_id < b.span_id;
                });
      result.fleet_trace = std::move(stitched);
      if (options_.journal)
        options_.journal->record("fleet-trace",
                                 {{"instances", result.trace_instances},
                                  {"spans", result.fleet_trace.size()}});
    }
  }
  // Drop the per-run clients (and their persistent connections) eagerly —
  // a reused coordinator re-dials rather than holding fleet sockets open
  // between runs.
  for (InstanceState& instance : instances_) instance.client.reset();
  return result;
}

AdaptiveRoundExecutor make_adaptive_executor(CampaignCoordinator& coordinator) {
  return [&coordinator](const CampaignSpec& spec, std::size_t) {
    return coordinator.run(spec).report;
  };
}

}  // namespace emutile
