#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "netlist/netlist_ops.hpp"
#include "util/check.hpp"

namespace emutile {

double routed_sink_delay_ns(const Routing& routing, const RrGraph& rr,
                            NetId net, SiteIndex sink_site) {
  const RrNodeId sink_node = rr.sink(sink_site);
  double delay = 0.0;
  for (RrNodeId n : routing.path_to(net, sink_node))
    delay += RrGraph::intrinsic_delay_ns(rr.node(n).type);
  return delay;
}

TimingReport analyze_timing(const Netlist& nl, const PackedDesign& packed,
                            const Placement& placement, const Routing& routing,
                            std::span<const PhysNet> nets,
                            const TimingParams& params) {
  const RrGraph& rr = routing.rr();

  // Wire delay per (net, sink instance).
  std::unordered_map<std::uint64_t, double> wire_delay;
  auto key = [](NetId n, InstId i) {
    return (static_cast<std::uint64_t>(n.value()) << 32) | i.value();
  };
  for (const PhysNet& pn : nets) {
    for (InstId sink : pn.sink_insts) {
      const SiteIndex site = placement.site_of(sink);
      double d;
      if (routing.has_tree(pn.net)) {
        d = routed_sink_delay_ns(routing, rr, pn.net, site);
      } else {
        // Fallback: placement-based estimate.
        auto [sx, sy] = placement.position(pn.src_inst);
        auto [tx, ty] = placement.position(sink);
        d = params.unrouted_per_unit *
            (std::abs(sx - tx) + std::abs(sy - ty));
      }
      wire_delay[key(pn.net, sink)] = d;
    }
  }

  // Arrival time of each net at its driver output pin.
  std::vector<double> arrival(nl.net_bound(), 0.0);
  for (CellId pi : nl.primary_inputs())
    arrival[nl.cell_output(pi).value()] = params.iob_delay;
  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kDff)
      arrival[c.output.value()] = params.clk_to_q;
  }

  // Arrival of a net at a specific consuming instance.
  auto arrival_at = [&](NetId net, CellId consumer) -> double {
    const InstId inst = packed.inst_of_cell(consumer);
    auto it = wire_delay.find(key(net, inst));
    const double wire = it != wire_delay.end() ? it->second : 0.0;
    return arrival[net.value()] + wire;
  };

  for (CellId id : topo_order_luts(nl)) {
    const Cell& c = nl.cell(id);
    double worst = 0.0;
    for (NetId in : c.inputs) worst = std::max(worst, arrival_at(in, id));
    arrival[c.output.value()] = worst + params.lut_delay;
  }

  // Endpoints: DFF D pins and primary outputs.
  TimingReport report;
  auto consider = [&](double t, const std::string& name) {
    ++report.endpoints;
    if (t > report.critical_path_ns) {
      report.critical_path_ns = t;
      report.critical_endpoint = name;
    }
  };

  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kDff) {
      const NetId d_net = c.inputs[0];
      const InstId inst = packed.inst_of_cell(id);
      const Instance& in = packed.inst(inst);
      const FfSource src = in.ff_f == id ? in.ff_f_src : in.ff_g_src;
      double t;
      if (src == FfSource::kDirect) {
        t = arrival_at(d_net, id);
      } else {
        t = arrival[d_net.value()] + params.internal_feed;
      }
      consider(t + params.setup, c.name);
    } else if (c.kind == CellKind::kOutput) {
      consider(arrival_at(c.inputs[0], id) + params.iob_delay, c.name);
    }
  }
  return report;
}

}  // namespace emutile
