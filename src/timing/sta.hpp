#pragma once
/// \file sta.hpp
/// Static timing analysis over a packed, placed, and routed design.
///
/// Emulation is functionality-first (the paper explicitly treats circuit
/// performance as secondary), but Table 1 reports the *timing overhead* of
/// tiling, so the reproduction needs a consistent delay estimate: logic
/// delays per cell class plus wire delays accumulated along the routed path
/// of every source->sink connection. The design is single-clock; the
/// critical path is the longest register-to-register / input-to-output path
/// including setup time.

#include <span>
#include <string>

#include "netlist/netlist.hpp"
#include "place/placement.hpp"
#include "route/routing.hpp"
#include "synth/packer.hpp"

namespace emutile {

/// Delay model parameters (nanoseconds), XC4000-flavored magnitudes.
struct TimingParams {
  float lut_delay = 2.0f;       ///< LUT input -> output
  float clk_to_q = 1.5f;        ///< DFF clock -> Q
  float setup = 0.5f;           ///< DFF setup
  float iob_delay = 1.0f;       ///< pad <-> internal
  float internal_feed = 0.2f;   ///< LUT -> same-CLB FF direct feed
  float unrouted_per_unit = 0.8f;  ///< fallback estimate per manhattan unit
};

struct TimingReport {
  double critical_path_ns = 0.0;
  std::string critical_endpoint;  ///< name of the worst endpoint cell
  std::size_t endpoints = 0;
};

/// Compute the critical path. Every externally routed net must have a route
/// tree in `routing`; internal CLB feeds use the internal_feed delay.
[[nodiscard]] TimingReport analyze_timing(const Netlist& nl,
                                          const PackedDesign& packed,
                                          const Placement& placement,
                                          const Routing& routing,
                                          std::span<const PhysNet> nets,
                                          const TimingParams& params = {});

/// Wire delay of one routed source->sink connection (sum of intrinsic node
/// delays along the route-tree path to the sink instance's SINK node).
[[nodiscard]] double routed_sink_delay_ns(const Routing& routing,
                                          const RrGraph& rr, NetId net,
                                          SiteIndex sink_site);

}  // namespace emutile
