#include "sim/simulator.hpp"

#include "netlist/netlist_ops.hpp"
#include "util/check.hpp"

namespace emutile {

Simulator::Simulator(const Netlist& nl) : nl_(&nl) {
  order_ = topo_order_luts(nl);
  values_.assign(nl.net_bound(), 0);
  ff_state_.assign(nl.cell_bound(), 0);
  for (CellId id : nl.live_cells())
    if (nl.cell(id).kind == CellKind::kDff) dffs_.push_back(id);
  // Constants are fixed for the whole run.
  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kConst1) values_[c.output.value()] = 1;
  }
}

void Simulator::reset() {
  for (CellId ff : dffs_) {
    ff_state_[ff.value()] = 0;
    values_[nl_->cell(ff).output.value()] = 0;
  }
  cycle_ = 0;
}

void Simulator::eval_comb() {
  for (CellId id : order_) {
    const Cell& c = nl_->cell(id);
    unsigned assignment = 0;
    for (std::size_t i = 0; i < c.inputs.size(); ++i)
      if (values_[c.inputs[i].value()]) assignment |= 1u << i;
    values_[c.output.value()] = c.function.eval(assignment) ? 1 : 0;
  }
}

std::vector<std::uint8_t> Simulator::evaluate(
    const std::vector<std::uint8_t>& pi_values) {
  const auto& pis = nl_->primary_inputs();
  EMUTILE_CHECK(pi_values.size() == pis.size(),
                "expected " << pis.size() << " input values, got "
                            << pi_values.size());
  for (std::size_t i = 0; i < pis.size(); ++i)
    values_[nl_->cell_output(pis[i]).value()] = pi_values[i] ? 1 : 0;
  // FF outputs hold their current state.
  for (CellId ff : dffs_)
    values_[nl_->cell(ff).output.value()] = ff_state_[ff.value()];
  eval_comb();

  const auto& pos = nl_->primary_outputs();
  std::vector<std::uint8_t> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    out[i] = values_[nl_->cell(pos[i]).inputs[0].value()];
  return out;
}

std::vector<std::uint8_t> Simulator::step(
    const std::vector<std::uint8_t>& pi_values) {
  std::vector<std::uint8_t> out = evaluate(pi_values);
  // Rising clock edge: capture D into every flip-flop.
  for (CellId ff : dffs_)
    ff_state_[ff.value()] = values_[nl_->cell(ff).inputs[0].value()];
  ++cycle_;
  return out;
}

bool Simulator::ff_state(CellId dff) const {
  EMUTILE_CHECK(dff.valid() && dff.value() < ff_state_.size() &&
                    nl_->cell(dff).kind == CellKind::kDff,
                "not a flip-flop");
  return ff_state_[dff.value()] != 0;
}

}  // namespace emutile
