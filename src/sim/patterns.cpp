#include "sim/patterns.hpp"

#include "util/check.hpp"

namespace emutile {

std::vector<Pattern> random_patterns(std::size_t width, std::size_t count,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Pattern> out(count, Pattern(width));
  for (Pattern& p : out)
    for (std::size_t i = 0; i < width; ++i)
      p[i] = rng.next_bool(0.5) ? 1 : 0;
  return out;
}

std::vector<Pattern> exhaustive_patterns(std::size_t width) {
  EMUTILE_CHECK(width <= 20, "exhaustive patterns capped at 2^20 vectors");
  const std::size_t n = std::size_t{1} << width;
  std::vector<Pattern> out(n, Pattern(width));
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t i = 0; i < width; ++i)
      out[v][i] = (v >> i) & 1u;
  return out;
}

std::vector<Pattern> marching_patterns(std::size_t width) {
  std::vector<Pattern> out;
  out.reserve(2 * width + 2);
  out.emplace_back(width, std::uint8_t{0});
  for (std::size_t i = 0; i < width; ++i) {
    Pattern p(width, 0);
    p[i] = 1;
    out.push_back(std::move(p));
  }
  out.emplace_back(width, std::uint8_t{1});
  for (std::size_t i = 0; i < width; ++i) {
    Pattern p(width, 1);
    p[i] = 0;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace emutile
