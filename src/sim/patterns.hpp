#pragma once
/// \file patterns.hpp
/// Test pattern generation (pseudocode step 10: "generate test patterns").
/// Patterns are produced in software, exactly as in the paper's flow.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace emutile {

using Pattern = std::vector<std::uint8_t>;

/// `count` uniformly random input vectors of the given width.
[[nodiscard]] std::vector<Pattern> random_patterns(std::size_t width,
                                                   std::size_t count,
                                                   std::uint64_t seed);

/// All 2^width vectors (width must be <= 20).
[[nodiscard]] std::vector<Pattern> exhaustive_patterns(std::size_t width);

/// Walking-ones then walking-zeros (classic connectivity checks).
[[nodiscard]] std::vector<Pattern> marching_patterns(std::size_t width);

}  // namespace emutile
