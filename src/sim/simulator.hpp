#pragma once
/// \file simulator.hpp
/// Two-valued cycle-accurate functional simulator.
///
/// This is the "emulation" substrate: the paper executes designs on real
/// XC4000 parts; here a levelized compiled-code simulator plays that role.
/// It exposes full visibility (any net, any flip-flop) which doubles as the
/// FPGA readback path the debug flow uses to harvest MISR signatures.

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace emutile {

/// Levelized simulator over a Netlist. The netlist must stay structurally
/// unchanged while a Simulator is alive (rebuild one after an ECO).
class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Set all flip-flops to 0 (the XC4000 global reset state).
  void reset();

  /// Drive primary inputs, evaluate combinational logic, sample primary
  /// outputs, then clock every flip-flop once. `pi_values` is ordered like
  /// Netlist::primary_inputs(). Returns POs ordered like primary_outputs().
  std::vector<std::uint8_t> step(const std::vector<std::uint8_t>& pi_values);

  /// Evaluate combinational logic for the given inputs without clocking
  /// (useful for purely combinational designs and for probing).
  std::vector<std::uint8_t> evaluate(const std::vector<std::uint8_t>& pi_values);

  /// Value of a net after the most recent evaluate()/step().
  [[nodiscard]] bool net_value(NetId net) const {
    return values_[net.value()] != 0;
  }

  /// Current state of a flip-flop (readback).
  [[nodiscard]] bool ff_state(CellId dff) const;

  /// Number of cycles stepped since the last reset.
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  void eval_comb();

  const Netlist* nl_;
  std::vector<CellId> order_;           // topological LUT order
  std::vector<std::uint8_t> values_;    // by NetId
  std::vector<std::uint8_t> ff_state_;  // by CellId (DFFs only)
  std::vector<CellId> dffs_;
  std::uint64_t cycle_ = 0;
};

/// 64-bit signature of a value stream (the software-side model of a MISR):
/// fold each sampled bit into a multiply-xor compressor. Used to compare
/// hardware-collected signatures against golden simulation.
class SignatureAccumulator {
 public:
  void add(bool bit) {
    sig_ = (sig_ ^ (bit ? 0x9E3779B97F4A7C15ull : 0x2545F4914F6CDD1Dull));
    sig_ *= 0xBF58476D1CE4E5B9ull;
    sig_ ^= sig_ >> 31;
  }
  [[nodiscard]] std::uint64_t value() const { return sig_; }

 private:
  std::uint64_t sig_ = 0x853C49E6748FEA9Bull;
};

}  // namespace emutile
