#pragma once
/// \file blif_writer.hpp
/// Emits a Netlist as a flat BLIF model (round-trips with blif_parser).

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace emutile {

/// Write `nl` as BLIF. LUT covers are emitted as on-set minterm rows.
void write_blif(const Netlist& nl, std::ostream& out);

/// Convenience: render to a string.
[[nodiscard]] std::string to_blif_string(const Netlist& nl);

/// Convenience: write to a file path (throws on IO failure).
void write_blif_file(const Netlist& nl, const std::string& path);

}  // namespace emutile
