#pragma once
/// \file cell_library.hpp
/// Cell kinds and LUT truth tables.
///
/// The target architecture is an XC4000-style FPGA whose logic element is a
/// 4-input LUT, so the library is deliberately small: primary inputs/outputs,
/// LUTs (up to 8 inputs pre-mapping; exactly <=4 post-mapping), D flip-flops
/// on a single implicit global clock, and constants.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace emutile {

/// Kinds of cells in the logic netlist.
enum class CellKind : std::uint8_t {
  kInput,   ///< primary input; drives one net
  kOutput,  ///< primary output marker; consumes one net
  kLut,     ///< lookup table with a TruthTable
  kDff,     ///< D flip-flop (port 0 = D, output = Q), implicit global clock
  kConst0,  ///< constant 0 driver
  kConst1,  ///< constant 1 driver
};

[[nodiscard]] const char* to_string(CellKind kind);

/// Complete single-output Boolean function of up to kMaxInputs variables,
/// stored as a bit-per-minterm table. Bit index m holds f(m) where bit i of
/// m is the value of input i.
class TruthTable {
 public:
  static constexpr int kMaxInputs = 8;

  /// Constant-0 function of `num_inputs` variables (0 allowed).
  explicit TruthTable(int num_inputs = 0);

  /// Builds from explicit minterm bits; bits.size() must be 2^num_inputs.
  static TruthTable from_bits(int num_inputs, const std::vector<bool>& bits);

  /// f = input `var` (projection).
  static TruthTable variable(int num_inputs, int var);
  static TruthTable constant(int num_inputs, bool value);

  /// Common two-or-more-input functions over all `num_inputs` variables.
  static TruthTable and_all(int num_inputs);
  static TruthTable or_all(int num_inputs);
  static TruthTable xor_all(int num_inputs);
  static TruthTable nand_all(int num_inputs);
  static TruthTable nor_all(int num_inputs);
  /// Inverter / buffer (num_inputs == 1).
  static TruthTable inverter();
  static TruthTable buffer();
  /// 2:1 mux: inputs (sel, a, b) -> sel ? b : a.
  static TruthTable mux21();

  [[nodiscard]] int num_inputs() const { return num_inputs_; }
  [[nodiscard]] unsigned num_minterms() const { return 1u << num_inputs_; }

  [[nodiscard]] bool bit(unsigned minterm) const;
  void set_bit(unsigned minterm, bool value);

  /// Evaluate with input assignment packed as bits of `assignment`.
  [[nodiscard]] bool eval(unsigned assignment) const { return bit(assignment); }

  /// True if the function value can depend on input `var`.
  [[nodiscard]] bool depends_on(int var) const;

  /// Shannon cofactor: fix input `var` to `value`; result has one less input
  /// (remaining variables keep their relative order).
  [[nodiscard]] TruthTable cofactor(int var, bool value) const;

  /// Negate the function.
  [[nodiscard]] TruthTable complement() const;

  /// Reorder inputs: new input i is old input perm[i].
  [[nodiscard]] TruthTable permute(const std::vector<int>& perm) const;

  [[nodiscard]] bool is_constant(bool value) const;

  friend bool operator==(const TruthTable& a, const TruthTable& b) {
    return a.num_inputs_ == b.num_inputs_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const TruthTable& a, const TruthTable& b) {
    return !(a == b);
  }

  /// Hex string of the table, most significant minterm first (for BLIF-side
  /// diagnostics and hashing).
  [[nodiscard]] std::string to_hex() const;

 private:
  int num_inputs_ = 0;
  std::array<std::uint64_t, 4> bits_{};  // 256 minterm bits
};

}  // namespace emutile
