#include "netlist/blif_writer.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.name() << "\n.inputs";
  for (CellId pi : nl.primary_inputs())
    out << ' ' << nl.net(nl.cell_output(pi)).name;
  out << "\n.outputs";
  for (CellId po : nl.primary_outputs())
    out << ' ' << nl.net(nl.cell(po).inputs.at(0)).name;
  out << '\n';

  for (CellId id : nl.live_cells()) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kOutput:
        break;
      case CellKind::kConst0:
        out << ".names " << nl.net(c.output).name << '\n';
        break;
      case CellKind::kConst1:
        out << ".names " << nl.net(c.output).name << "\n1\n";
        break;
      case CellKind::kDff:
        out << ".latch " << nl.net(c.inputs.at(0)).name << ' '
            << nl.net(c.output).name << " re clk 0\n";
        break;
      case CellKind::kLut: {
        out << ".names";
        for (NetId in : c.inputs) out << ' ' << nl.net(in).name;
        out << ' ' << nl.net(c.output).name << '\n';
        const TruthTable& tt = c.function;
        for (unsigned m = 0; m < tt.num_minterms(); ++m) {
          if (!tt.bit(m)) continue;
          for (int i = 0; i < tt.num_inputs(); ++i)
            out << (((m >> i) & 1u) ? '1' : '0');
          out << " 1\n";
        }
        break;
      }
    }
  }
  out << ".end\n";
}

std::string to_blif_string(const Netlist& nl) {
  std::ostringstream os;
  write_blif(nl, os);
  return os.str();
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  EMUTILE_CHECK(f.good(), "cannot open '" << path << "' for writing");
  write_blif(nl, f);
  EMUTILE_CHECK(f.good(), "write to '" << path << "' failed");
}

}  // namespace emutile
