#include "netlist/blif_parser.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace emutile {

namespace {

struct Token {
  std::vector<std::string> words;
  int line = 0;
};

/// Splits the stream into logical lines: strips comments (#), joins
/// continuations (trailing backslash), and tokenizes on whitespace.
std::vector<Token> lex(std::istream& in) {
  std::vector<Token> tokens;
  std::string line;
  std::string pending;
  int line_no = 0, start_line = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    bool continued = false;
    if (auto bs = line.find_last_not_of(" \t\r");
        bs != std::string::npos && line[bs] == '\\') {
      line.erase(bs);
      continued = true;
    }
    if (pending.empty()) start_line = line_no;
    pending += line + ' ';
    if (continued) continue;
    std::istringstream ss(pending);
    Token tok;
    tok.line = start_line;
    std::string w;
    while (ss >> w) tok.words.push_back(w);
    if (!tok.words.empty()) tokens.push_back(std::move(tok));
    pending.clear();
  }
  return tokens;
}

/// Builder that resolves BLIF signal names to nets, creating forward
/// references lazily (BLIF allows use-before-definition).
class BlifBuilder {
 public:
  explicit BlifBuilder(Netlist& nl) : nl_(nl) {}

  /// Net that the named signal will be read from. If the signal is not yet
  /// defined, a placeholder is recorded and patched at finish().
  NetId use(const std::string& name) {
    if (auto it = defined_.find(name); it != defined_.end()) return it->second;
    if (auto it = placeholders_.find(name); it != placeholders_.end())
      return it->second.first;
    // Placeholder: a const-0 driver whose sinks get transferred on define.
    const CellId ph = nl_.add_const("__blif_fwd_" + name, false);
    const NetId net = nl_.cell_output(ph);
    placeholders_.emplace(name, std::make_pair(net, ph));
    return net;
  }

  /// Declare that `net` now carries the named signal.
  void define(const std::string& name, NetId net) {
    EMUTILE_CHECK(defined_.emplace(name, net).second,
                  "BLIF: signal '" << name << "' defined twice");
    if (auto it = placeholders_.find(name); it != placeholders_.end()) {
      nl_.transfer_sinks(it->second.first, net);
      nl_.remove_cell(it->second.second);
      placeholders_.erase(it);
    }
  }

  [[nodiscard]] bool is_defined(const std::string& name) const {
    return defined_.find(name) != defined_.end();
  }

  [[nodiscard]] NetId defined_net(const std::string& name) const {
    auto it = defined_.find(name);
    EMUTILE_CHECK(it != defined_.end(), "BLIF: undefined signal '" << name << "'");
    return it->second;
  }

  void finish() {
    EMUTILE_CHECK(placeholders_.empty(),
                  "BLIF: " << placeholders_.size()
                           << " signal(s) used but never defined (first: '"
                           << placeholders_.begin()->first << "')");
  }

 private:
  Netlist& nl_;
  std::unordered_map<std::string, NetId> defined_;
  std::unordered_map<std::string, std::pair<NetId, CellId>> placeholders_;
};

/// Converts a SOP cover (input plane rows + output value) to a TruthTable.
TruthTable cover_to_tt(int num_inputs, const std::vector<std::string>& rows,
                       bool on_set, int line) {
  TruthTable tt = TruthTable::constant(num_inputs, !on_set);
  for (const std::string& row : rows) {
    EMUTILE_CHECK(static_cast<int>(row.size()) == num_inputs,
                  "BLIF line " << line << ": cover row width mismatch");
    // Expand don't-cares.
    std::vector<unsigned> minterms{0};
    for (int i = 0; i < num_inputs; ++i) {
      const char c = row[static_cast<std::size_t>(i)];
      EMUTILE_CHECK(c == '0' || c == '1' || c == '-',
                    "BLIF line " << line << ": bad cover char '" << c << "'");
      if (c == '-') {
        const std::size_t n = minterms.size();
        for (std::size_t k = 0; k < n; ++k)
          minterms.push_back(minterms[k] | (1u << i));
      } else if (c == '1') {
        for (auto& m : minterms) m |= 1u << i;
      }
    }
    for (unsigned m : minterms) tt.set_bit(m, on_set);
  }
  return tt;
}

}  // namespace

Netlist parse_blif(std::istream& in) {
  const std::vector<Token> tokens = lex(in);
  Netlist nl;
  BlifBuilder builder(nl);

  std::vector<std::string> declared_outputs;
  bool saw_model = false, saw_end = false;

  std::size_t i = 0;
  while (i < tokens.size()) {
    const Token& tok = tokens[i];
    const std::string& cmd = tok.words[0];

    if (cmd == ".model") {
      EMUTILE_CHECK(!saw_model, "BLIF line " << tok.line
                                             << ": multiple .model (hierarchical "
                                                "BLIF is not supported)");
      saw_model = true;
      if (tok.words.size() > 1) nl.set_name(tok.words[1]);
      ++i;
    } else if (cmd == ".inputs") {
      for (std::size_t w = 1; w < tok.words.size(); ++w) {
        const CellId pi = nl.add_input(tok.words[w]);
        builder.define(tok.words[w], nl.cell_output(pi));
      }
      ++i;
    } else if (cmd == ".outputs") {
      for (std::size_t w = 1; w < tok.words.size(); ++w)
        declared_outputs.push_back(tok.words[w]);
      ++i;
    } else if (cmd == ".names") {
      EMUTILE_CHECK(tok.words.size() >= 2,
                    "BLIF line " << tok.line << ": .names needs an output");
      const int num_inputs = static_cast<int>(tok.words.size()) - 2;
      EMUTILE_CHECK(num_inputs <= TruthTable::kMaxInputs,
                    "BLIF line " << tok.line << ": .names with " << num_inputs
                                 << " inputs exceeds supported "
                                 << TruthTable::kMaxInputs);
      const std::string& out_name = tok.words.back();

      // Collect cover rows until the next dot-command.
      std::vector<std::string> in_rows;
      bool on_set = true;
      bool polarity_known = false;
      ++i;
      while (i < tokens.size() && tokens[i].words[0][0] != '.') {
        const Token& row = tokens[i];
        std::string in_plane, out_plane;
        if (num_inputs == 0) {
          EMUTILE_CHECK(row.words.size() == 1,
                        "BLIF line " << row.line << ": constant cover row");
          out_plane = row.words[0];
        } else {
          EMUTILE_CHECK(row.words.size() == 2,
                        "BLIF line " << row.line << ": cover row needs "
                                        "input and output planes");
          in_plane = row.words[0];
          out_plane = row.words[1];
        }
        EMUTILE_CHECK(out_plane == "0" || out_plane == "1",
                      "BLIF line " << row.line << ": output plane must be 0/1");
        const bool row_on = out_plane == "1";
        if (!polarity_known) {
          on_set = row_on;
          polarity_known = true;
        } else {
          EMUTILE_CHECK(row_on == on_set,
                        "BLIF line " << row.line
                                     << ": mixed on-set/off-set cover");
        }
        if (num_inputs > 0) in_rows.push_back(in_plane);
        else in_rows.push_back("");
        ++i;
      }

      if (num_inputs == 0) {
        // Constant: value is the output plane of the (single) row, or 0 if
        // the cover is empty.
        const bool value = polarity_known && on_set;
        const CellId c = nl.add_const(out_name, value);
        builder.define(out_name, nl.cell_output(c));
      } else {
        std::vector<NetId> ins;
        ins.reserve(static_cast<std::size_t>(num_inputs));
        for (int k = 0; k < num_inputs; ++k)
          ins.push_back(builder.use(tok.words[1 + static_cast<std::size_t>(k)]));
        TruthTable tt =
            in_rows.empty()
                ? TruthTable::constant(num_inputs, false)
                : cover_to_tt(num_inputs, in_rows, on_set, tok.line);
        const CellId lut = nl.add_lut(out_name, tt, ins);
        builder.define(out_name, nl.cell_output(lut));
      }
    } else if (cmd == ".latch") {
      // .latch <input> <output> [<type> <control>] [<init-val>]
      EMUTILE_CHECK(tok.words.size() >= 3,
                    "BLIF line " << tok.line << ": .latch needs input/output");
      const NetId d = builder.use(tok.words[1]);
      const CellId ff = nl.add_dff(tok.words[2], d);
      builder.define(tok.words[2], nl.cell_output(ff));
      ++i;
    } else if (cmd == ".end") {
      saw_end = true;
      ++i;
    } else if (cmd == ".exdc" || cmd == ".wire_load_slope" || cmd == ".wire" ||
               cmd == ".clock" || cmd == ".area" || cmd == ".delay") {
      ++i;  // benign directives we ignore
    } else {
      EMUTILE_CHECK(false, "BLIF line " << tok.line << ": unsupported construct '"
                                        << cmd << "'");
    }
    if (saw_end) break;
  }

  for (const std::string& out : declared_outputs)
    nl.add_output(out + "_po", builder.defined_net(out));

  builder.finish();
  nl.validate();
  return nl;
}

Netlist parse_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_blif(ss);
}

Netlist parse_blif_file(const std::string& path) {
  std::ifstream f(path);
  EMUTILE_CHECK(f.good(), "cannot open BLIF file '" << path << "'");
  return parse_blif(f);
}

}  // namespace emutile
