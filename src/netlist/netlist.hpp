#pragma once
/// \file netlist.hpp
/// The logic netlist: cells connected by nets.
///
/// Invariants maintained by the class:
///  * every net has exactly one driver (an Input, Lut, Dff, or Const cell);
///  * net sink lists and cell input pins are kept bidirectionally consistent;
///  * ids are stable across removals (removed cells/nets become tombstones,
///    which matters because ECOs must not invalidate placement bindings).
///
/// The netlist is single-clock: DFFs share an implicit global clock, which is
/// how the XC4000 emulation designs in the paper are driven.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.hpp"
#include "util/ids.hpp"

namespace emutile {

/// A cell input pin reference (net sink).
struct PinRef {
  CellId cell;
  std::uint32_t port = 0;

  friend bool operator==(const PinRef& a, const PinRef& b) {
    return a.cell == b.cell && a.port == b.port;
  }
};

/// One cell instance. Access through Netlist; fields are read-only outside.
struct Cell {
  CellKind kind = CellKind::kLut;
  std::string name;
  TruthTable function;          ///< meaningful only for kLut
  std::vector<NetId> inputs;    ///< input nets by port index
  NetId output;                 ///< invalid for kOutput
  bool alive = true;
};

/// One net. A net is identified with its driver's output.
struct Net {
  std::string name;
  CellId driver;
  std::vector<PinRef> sinks;
  bool alive = true;
};

/// Mutable logic netlist with ECO-grade editing support.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------

  /// Add a primary input; returns the cell. Its output net has `name`.
  CellId add_input(const std::string& name);

  /// Mark `net` as a primary output named `name`.
  CellId add_output(const std::string& name, NetId net);

  /// Add a LUT computing `function` over `inputs` (arity must match).
  CellId add_lut(const std::string& name, const TruthTable& function,
                 const std::vector<NetId>& inputs);

  /// Add a D flip-flop with data input `d`.
  CellId add_dff(const std::string& name, NetId d);

  /// Add a constant driver.
  CellId add_const(const std::string& name, bool value);

  // ---- ECO editing --------------------------------------------------------

  /// Swap the function of a LUT (arity must be preserved).
  void set_lut_function(CellId cell, const TruthTable& function);

  /// Reconnect one input pin to a different net.
  void reconnect_input(CellId cell, std::uint32_t port, NetId new_net);

  /// Remove a cell. Its output net (if any) must have no sinks.
  void remove_cell(CellId cell);

  /// Move all sinks of `from` onto `to` (used when replacing a driver).
  void transfer_sinks(NetId from, NetId to);

  // ---- access -------------------------------------------------------------

  [[nodiscard]] const Cell& cell(CellId id) const;
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] NetId cell_output(CellId id) const { return cell(id).output; }

  /// Dense bound for iteration (includes tombstones; check alive).
  [[nodiscard]] std::size_t cell_bound() const { return cells_.size(); }
  [[nodiscard]] std::size_t net_bound() const { return nets_.size(); }

  /// Live-entity counts.
  [[nodiscard]] std::size_t num_cells() const { return live_cells_; }
  [[nodiscard]] std::size_t num_nets() const { return live_nets_; }
  [[nodiscard]] std::size_t num_luts() const;
  [[nodiscard]] std::size_t num_dffs() const;

  [[nodiscard]] const std::vector<CellId>& primary_inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<CellId>& primary_outputs() const { return outputs_; }

  /// Live cells, in id order.
  [[nodiscard]] std::vector<CellId> live_cells() const;
  [[nodiscard]] std::vector<NetId> live_nets() const;

  /// Name lookup (nullopt if absent or dead).
  [[nodiscard]] std::optional<NetId> find_net(const std::string& name) const;
  [[nodiscard]] std::optional<CellId> find_cell(const std::string& name) const;

  /// Full structural consistency check; throws AssertError on violation.
  void validate() const;

 private:
  Cell& mutable_cell(CellId id);
  Net& mutable_net(NetId id);
  NetId new_net(const std::string& name, CellId driver);
  void attach_sink(NetId net, PinRef pin);
  void detach_sink(NetId net, PinRef pin);

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<std::string, CellId> cell_by_name_;
  std::size_t live_cells_ = 0;
  std::size_t live_nets_ = 0;
};

}  // namespace emutile
