#pragma once
/// \file netlist_ops.hpp
/// Structural analyses over a Netlist: topological ordering, levelization,
/// cone extraction, and summary statistics. These are the primitives the
/// mapper, simulator, and debug localizer are built on.

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "netlist/netlist.hpp"

namespace emutile {

/// Combinational topological order of live LUT cells (sources = primary
/// inputs, constants, and DFF outputs; DFF D-pins and primary outputs are
/// sinks). Throws CheckError if a combinational cycle exists.
[[nodiscard]] std::vector<CellId> topo_order_luts(const Netlist& nl);

/// Logic depth (level) per cell id (dense by cell id; dead cells get 0).
/// Sources are level 0; a LUT's level is 1 + max(input levels).
[[nodiscard]] std::vector<int> levelize(const Netlist& nl);

/// Maximum combinational depth over the whole netlist.
[[nodiscard]] int logic_depth(const Netlist& nl);

/// Transitive fan-in cone of `net`, stopping at sequential/source boundaries.
/// Returns LUT cells only, in reverse-topological discovery order.
[[nodiscard]] std::vector<CellId> fanin_cone(const Netlist& nl, NetId net);

/// Transitive fan-out cone of `net` (LUT and DFF cells reached before any
/// sequential boundary is crossed; DFFs themselves are included).
[[nodiscard]] std::vector<CellId> fanout_cone(const Netlist& nl, NetId net);

/// True if every primary output depends (combinationally or through DFFs)
/// on at least one primary input.
[[nodiscard]] bool outputs_reachable(const Netlist& nl);

/// Summary statistics used by benches and generators.
struct NetlistStats {
  std::size_t cells = 0;
  std::size_t luts = 0;
  std::size_t dffs = 0;
  std::size_t nets = 0;
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  int depth = 0;
  double avg_fanout = 0.0;
  std::size_t max_fanout = 0;
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& nl);

/// Human-readable one-line summary.
[[nodiscard]] std::string to_string(const NetlistStats& stats);

}  // namespace emutile
