#include "netlist/netlist.hpp"

#include <algorithm>

namespace emutile {

namespace {
// Unique-name helper: appends _u<N> on collision.
std::string disambiguate(const std::string& base,
                         const auto& map) {
  if (map.find(base) == map.end()) return base;
  for (int i = 1;; ++i) {
    std::string candidate = base + "_u" + std::to_string(i);
    if (map.find(candidate) == map.end()) return candidate;
  }
}
}  // namespace

CellId Netlist::add_input(const std::string& name) {
  Cell c;
  c.kind = CellKind::kInput;
  c.name = disambiguate(name, cell_by_name_);
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(std::move(c));
  ++live_cells_;
  cell_by_name_.emplace(cells_.back().name, id);
  cells_[id.value()].output = new_net(cells_[id.value()].name, id);
  inputs_.push_back(id);
  return id;
}

CellId Netlist::add_output(const std::string& name, NetId net) {
  EMUTILE_CHECK(net.valid() && net.value() < nets_.size() && nets_[net.value()].alive,
                "add_output: bad net");
  Cell c;
  c.kind = CellKind::kOutput;
  c.name = disambiguate(name, cell_by_name_);
  c.inputs = {net};
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(std::move(c));
  ++live_cells_;
  cell_by_name_.emplace(cells_.back().name, id);
  attach_sink(net, PinRef{id, 0});
  outputs_.push_back(id);
  return id;
}

CellId Netlist::add_lut(const std::string& name, const TruthTable& function,
                        const std::vector<NetId>& inputs) {
  EMUTILE_CHECK(static_cast<int>(inputs.size()) == function.num_inputs(),
                "lut '" << name << "': " << inputs.size()
                        << " input nets for a " << function.num_inputs()
                        << "-input function");
  for (NetId in : inputs)
    EMUTILE_CHECK(in.valid() && in.value() < nets_.size() && nets_[in.value()].alive,
                  "lut '" << name << "': dead or invalid input net");
  Cell c;
  c.kind = CellKind::kLut;
  c.name = disambiguate(name, cell_by_name_);
  c.function = function;
  c.inputs = inputs;
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(std::move(c));
  ++live_cells_;
  cell_by_name_.emplace(cells_.back().name, id);
  for (std::uint32_t p = 0; p < inputs.size(); ++p)
    attach_sink(inputs[p], PinRef{id, p});
  cells_[id.value()].output = new_net(cells_[id.value()].name, id);
  return id;
}

CellId Netlist::add_dff(const std::string& name, NetId d) {
  EMUTILE_CHECK(d.valid() && d.value() < nets_.size() && nets_[d.value()].alive,
                "dff '" << name << "': bad D net");
  Cell c;
  c.kind = CellKind::kDff;
  c.name = disambiguate(name, cell_by_name_);
  c.inputs = {d};
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(std::move(c));
  ++live_cells_;
  cell_by_name_.emplace(cells_.back().name, id);
  attach_sink(d, PinRef{id, 0});
  cells_[id.value()].output = new_net(cells_[id.value()].name, id);
  return id;
}

CellId Netlist::add_const(const std::string& name, bool value) {
  Cell c;
  c.kind = value ? CellKind::kConst1 : CellKind::kConst0;
  c.name = disambiguate(name, cell_by_name_);
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(std::move(c));
  ++live_cells_;
  cell_by_name_.emplace(cells_.back().name, id);
  cells_[id.value()].output = new_net(cells_[id.value()].name, id);
  return id;
}

void Netlist::set_lut_function(CellId cell, const TruthTable& function) {
  Cell& c = mutable_cell(cell);
  EMUTILE_CHECK(c.kind == CellKind::kLut, "set_lut_function on non-LUT");
  EMUTILE_CHECK(function.num_inputs() == c.function.num_inputs(),
                "set_lut_function must preserve arity");
  c.function = function;
}

void Netlist::reconnect_input(CellId cell, std::uint32_t port, NetId new_net_id) {
  Cell& c = mutable_cell(cell);
  EMUTILE_CHECK(port < c.inputs.size(), "reconnect_input: port out of range");
  EMUTILE_CHECK(new_net_id.valid() && new_net_id.value() < nets_.size() &&
                    nets_[new_net_id.value()].alive,
                "reconnect_input: bad net");
  const NetId old = c.inputs[port];
  if (old == new_net_id) return;
  detach_sink(old, PinRef{cell, port});
  c.inputs[port] = new_net_id;
  attach_sink(new_net_id, PinRef{cell, port});
}

void Netlist::remove_cell(CellId id) {
  Cell& c = mutable_cell(id);
  if (c.output.valid()) {
    const Net& out = net(c.output);
    EMUTILE_CHECK(out.sinks.empty(),
                  "remove_cell '" << c.name << "': output net still has "
                                  << out.sinks.size() << " sinks");
    Net& out_mut = mutable_net(c.output);
    out_mut.alive = false;
    --live_nets_;
    net_by_name_.erase(out_mut.name);
  }
  for (std::uint32_t p = 0; p < c.inputs.size(); ++p)
    detach_sink(c.inputs[p], PinRef{id, p});
  c.inputs.clear();
  c.alive = false;
  --live_cells_;
  cell_by_name_.erase(c.name);
  if (c.kind == CellKind::kInput)
    std::erase(inputs_, id);
  if (c.kind == CellKind::kOutput)
    std::erase(outputs_, id);
}

void Netlist::transfer_sinks(NetId from, NetId to) {
  EMUTILE_CHECK(from != to, "transfer_sinks: from == to");
  // Copy the pin list first: reconnect_input mutates sinks of `from`.
  const std::vector<PinRef> pins = net(from).sinks;
  for (const PinRef& pin : pins) reconnect_input(pin.cell, pin.port, to);
}

const Cell& Netlist::cell(CellId id) const {
  EMUTILE_CHECK(id.valid() && id.value() < cells_.size(), "bad cell id");
  return cells_[id.value()];
}

const Net& Netlist::net(NetId id) const {
  EMUTILE_CHECK(id.valid() && id.value() < nets_.size(), "bad net id");
  return nets_[id.value()];
}

std::size_t Netlist::num_luts() const {
  std::size_t n = 0;
  for (const Cell& c : cells_)
    if (c.alive && c.kind == CellKind::kLut) ++n;
  return n;
}

std::size_t Netlist::num_dffs() const {
  std::size_t n = 0;
  for (const Cell& c : cells_)
    if (c.alive && c.kind == CellKind::kDff) ++n;
  return n;
}

std::vector<CellId> Netlist::live_cells() const {
  std::vector<CellId> out;
  out.reserve(live_cells_);
  for (std::size_t i = 0; i < cells_.size(); ++i)
    if (cells_[i].alive) out.push_back(CellId{static_cast<std::uint32_t>(i)});
  return out;
}

std::vector<NetId> Netlist::live_nets() const {
  std::vector<NetId> out;
  out.reserve(live_nets_);
  for (std::size_t i = 0; i < nets_.size(); ++i)
    if (nets_[i].alive) out.push_back(NetId{static_cast<std::uint32_t>(i)});
  return out;
}

std::optional<NetId> Netlist::find_net(const std::string& name) const {
  auto it = net_by_name_.find(name);
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<CellId> Netlist::find_cell(const std::string& name) const {
  auto it = cell_by_name_.find(name);
  if (it == cell_by_name_.end()) return std::nullopt;
  return it->second;
}

void Netlist::validate() const {
  std::size_t live_c = 0, live_n = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (!c.alive) continue;
    ++live_c;
    const CellId id{static_cast<std::uint32_t>(i)};
    if (c.kind == CellKind::kLut)
      EMUTILE_ASSERT(static_cast<int>(c.inputs.size()) == c.function.num_inputs(),
                     "cell '" << c.name << "' arity mismatch");
    if (c.kind == CellKind::kOutput)
      EMUTILE_ASSERT(!c.output.valid(), "output cell drives a net");
    else
      EMUTILE_ASSERT(c.output.valid() && nets_[c.output.value()].alive &&
                         nets_[c.output.value()].driver == id,
                     "cell '" << c.name << "' output net inconsistent");
    for (std::uint32_t p = 0; p < c.inputs.size(); ++p) {
      const NetId in = c.inputs[p];
      EMUTILE_ASSERT(in.valid() && in.value() < nets_.size() && nets_[in.value()].alive,
                     "cell '" << c.name << "' input " << p << " dead");
      const auto& sinks = nets_[in.value()].sinks;
      EMUTILE_ASSERT(std::find(sinks.begin(), sinks.end(), PinRef{id, p}) != sinks.end(),
                     "cell '" << c.name << "' missing from sink list of its input net");
    }
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (!n.alive) continue;
    ++live_n;
    EMUTILE_ASSERT(n.driver.valid() && cells_[n.driver.value()].alive,
                   "net '" << n.name << "' has dead driver");
    for (const PinRef& pin : n.sinks) {
      const Cell& c = cells_[pin.cell.value()];
      EMUTILE_ASSERT(c.alive && pin.port < c.inputs.size() &&
                         c.inputs[pin.port] == NetId{static_cast<std::uint32_t>(i)},
                     "net '" << n.name << "' sink list inconsistent");
    }
  }
  EMUTILE_ASSERT(live_c == live_cells_, "live cell count drifted");
  EMUTILE_ASSERT(live_n == live_nets_, "live net count drifted");
}

Cell& Netlist::mutable_cell(CellId id) {
  EMUTILE_CHECK(id.valid() && id.value() < cells_.size() && cells_[id.value()].alive,
                "bad or dead cell id");
  return cells_[id.value()];
}

Net& Netlist::mutable_net(NetId id) {
  EMUTILE_CHECK(id.valid() && id.value() < nets_.size(), "bad net id");
  return nets_[id.value()];
}

NetId Netlist::new_net(const std::string& name, CellId driver) {
  Net n;
  n.name = disambiguate(name, net_by_name_);
  n.driver = driver;
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  nets_.push_back(std::move(n));
  ++live_nets_;
  net_by_name_.emplace(nets_.back().name, id);
  return id;
}

void Netlist::attach_sink(NetId net, PinRef pin) {
  mutable_net(net).sinks.push_back(pin);
}

void Netlist::detach_sink(NetId net, PinRef pin) {
  auto& sinks = mutable_net(net).sinks;
  auto it = std::find(sinks.begin(), sinks.end(), pin);
  EMUTILE_ASSERT(it != sinks.end(), "detach_sink: pin not found");
  sinks.erase(it);
}

}  // namespace emutile
