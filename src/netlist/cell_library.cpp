#include "netlist/cell_library.hpp"

#include <sstream>

namespace emutile {

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kInput: return "input";
    case CellKind::kOutput: return "output";
    case CellKind::kLut: return "lut";
    case CellKind::kDff: return "dff";
    case CellKind::kConst0: return "const0";
    case CellKind::kConst1: return "const1";
  }
  return "?";
}

TruthTable::TruthTable(int num_inputs) : num_inputs_(num_inputs) {
  EMUTILE_CHECK(num_inputs >= 0 && num_inputs <= kMaxInputs,
                "truth table supports 0.." << kMaxInputs << " inputs, got "
                                           << num_inputs);
}

TruthTable TruthTable::from_bits(int num_inputs, const std::vector<bool>& bits) {
  TruthTable tt(num_inputs);
  EMUTILE_CHECK(bits.size() == tt.num_minterms(),
                "expected " << tt.num_minterms() << " bits, got " << bits.size());
  for (unsigned m = 0; m < bits.size(); ++m) tt.set_bit(m, bits[m]);
  return tt;
}

TruthTable TruthTable::variable(int num_inputs, int var) {
  TruthTable tt(num_inputs);
  EMUTILE_CHECK(var >= 0 && var < num_inputs, "variable index out of range");
  for (unsigned m = 0; m < tt.num_minterms(); ++m)
    tt.set_bit(m, (m >> var) & 1u);
  return tt;
}

TruthTable TruthTable::constant(int num_inputs, bool value) {
  TruthTable tt(num_inputs);
  for (unsigned m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, value);
  return tt;
}

TruthTable TruthTable::and_all(int num_inputs) {
  TruthTable tt(num_inputs);
  tt.set_bit(tt.num_minterms() - 1, true);
  return tt;
}

TruthTable TruthTable::or_all(int num_inputs) {
  TruthTable tt = constant(num_inputs, true);
  tt.set_bit(0, false);
  return tt;
}

TruthTable TruthTable::xor_all(int num_inputs) {
  TruthTable tt(num_inputs);
  for (unsigned m = 0; m < tt.num_minterms(); ++m)
    tt.set_bit(m, __builtin_popcount(m) & 1);
  return tt;
}

TruthTable TruthTable::nand_all(int num_inputs) {
  return and_all(num_inputs).complement();
}

TruthTable TruthTable::nor_all(int num_inputs) {
  return or_all(num_inputs).complement();
}

TruthTable TruthTable::inverter() {
  TruthTable tt(1);
  tt.set_bit(0, true);
  return tt;
}

TruthTable TruthTable::buffer() {
  TruthTable tt(1);
  tt.set_bit(1, true);
  return tt;
}

TruthTable TruthTable::mux21() {
  // inputs (0=sel, 1=a, 2=b): f = sel ? b : a
  TruthTable tt(3);
  for (unsigned m = 0; m < 8; ++m) {
    const bool sel = m & 1u, a = (m >> 1) & 1u, b = (m >> 2) & 1u;
    tt.set_bit(m, sel ? b : a);
  }
  return tt;
}

bool TruthTable::bit(unsigned minterm) const {
  EMUTILE_ASSERT(minterm < num_minterms(), "minterm out of range");
  return (bits_[minterm >> 6] >> (minterm & 63u)) & 1u;
}

void TruthTable::set_bit(unsigned minterm, bool value) {
  EMUTILE_ASSERT(minterm < num_minterms(), "minterm out of range");
  const std::uint64_t mask = std::uint64_t{1} << (minterm & 63u);
  if (value)
    bits_[minterm >> 6] |= mask;
  else
    bits_[minterm >> 6] &= ~mask;
}

bool TruthTable::depends_on(int var) const {
  EMUTILE_CHECK(var >= 0 && var < num_inputs_, "variable index out of range");
  for (unsigned m = 0; m < num_minterms(); ++m) {
    if ((m >> var) & 1u) continue;
    if (bit(m) != bit(m | (1u << var))) return true;
  }
  return false;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  EMUTILE_CHECK(var >= 0 && var < num_inputs_, "variable index out of range");
  TruthTable out(num_inputs_ - 1);
  for (unsigned m = 0; m < out.num_minterms(); ++m) {
    // Re-expand m to the original index with `var` fixed at `value`.
    const unsigned low = m & ((1u << var) - 1u);
    const unsigned high = (m >> var) << (var + 1);
    const unsigned orig = high | (static_cast<unsigned>(value) << var) | low;
    out.set_bit(m, bit(orig));
  }
  return out;
}

TruthTable TruthTable::complement() const {
  TruthTable out(num_inputs_);
  for (unsigned m = 0; m < num_minterms(); ++m) out.set_bit(m, !bit(m));
  return out;
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
  EMUTILE_CHECK(static_cast<int>(perm.size()) == num_inputs_,
                "permutation arity mismatch");
  TruthTable out(num_inputs_);
  for (unsigned m = 0; m < num_minterms(); ++m) {
    unsigned orig = 0;
    for (int i = 0; i < num_inputs_; ++i)
      if ((m >> i) & 1u) orig |= 1u << perm[static_cast<std::size_t>(i)];
    out.set_bit(m, bit(orig));
  }
  return out;
}

bool TruthTable::is_constant(bool value) const {
  for (unsigned m = 0; m < num_minterms(); ++m)
    if (bit(m) != value) return false;
  return true;
}

std::string TruthTable::to_hex() const {
  std::ostringstream os;
  const unsigned nibbles = std::max(1u, num_minterms() / 4);
  for (unsigned n = nibbles; n-- > 0;) {
    unsigned v = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned m = n * 4 + b;
      if (m < num_minterms() && bit(m)) v |= 1u << b;
    }
    os << "0123456789abcdef"[v];
  }
  return os.str();
}

}  // namespace emutile
