#pragma once
/// \file blif_parser.hpp
/// Reader for the Berkeley Logic Interchange Format (BLIF), the format the
/// MCNC benchmark suite ships in. Supported constructs: .model/.inputs/
/// .outputs/.names (SOP covers, up to TruthTable::kMaxInputs literals)/
/// .latch (re/fe/ah/al/as types accepted, treated as a single-clock DFF)/
/// .end, plus comments and line continuations. This lets the real MCNC
/// designs be dropped into the flow unmodified when available.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace emutile {

/// Parse a BLIF model from a stream. Throws CheckError with a line-numbered
/// message on malformed input.
[[nodiscard]] Netlist parse_blif(std::istream& in);

/// Parse from a string (convenience for tests).
[[nodiscard]] Netlist parse_blif_string(const std::string& text);

/// Parse from a file path.
[[nodiscard]] Netlist parse_blif_file(const std::string& path);

}  // namespace emutile
