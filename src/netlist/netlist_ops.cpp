#include "netlist/netlist_ops.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/check.hpp"

namespace emutile {

std::vector<CellId> topo_order_luts(const Netlist& nl) {
  // Kahn's algorithm over LUT-to-LUT combinational edges.
  const std::size_t bound = nl.cell_bound();
  std::vector<int> pending(bound, 0);
  std::vector<CellId> order;
  order.reserve(nl.num_luts());
  std::queue<CellId> ready;

  for (std::size_t i = 0; i < bound; ++i) {
    const CellId id{static_cast<std::uint32_t>(i)};
    const Cell& c = nl.cell(id);
    if (!c.alive || c.kind != CellKind::kLut) continue;
    int deps = 0;
    for (NetId in : c.inputs) {
      const Cell& drv = nl.cell(nl.net(in).driver);
      if (drv.kind == CellKind::kLut) ++deps;
    }
    pending[i] = deps;
    if (deps == 0) ready.push(id);
  }

  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    order.push_back(id);
    const Cell& c = nl.cell(id);
    for (const PinRef& pin : nl.net(c.output).sinks) {
      const Cell& sink = nl.cell(pin.cell);
      if (sink.kind != CellKind::kLut) continue;
      if (--pending[pin.cell.value()] == 0) ready.push(pin.cell);
    }
  }

  EMUTILE_CHECK(order.size() == nl.num_luts(),
                "combinational cycle: only " << order.size() << " of "
                                             << nl.num_luts()
                                             << " LUTs orderable");
  return order;
}

std::vector<int> levelize(const Netlist& nl) {
  std::vector<int> level(nl.cell_bound(), 0);
  for (CellId id : topo_order_luts(nl)) {
    const Cell& c = nl.cell(id);
    int max_in = -1;
    for (NetId in : c.inputs) {
      const CellId drv = nl.net(in).driver;
      const Cell& d = nl.cell(drv);
      max_in = std::max(max_in, d.kind == CellKind::kLut
                                    ? level[drv.value()]
                                    : 0);
    }
    level[id.value()] = max_in + 1;
  }
  return level;
}

int logic_depth(const Netlist& nl) {
  const std::vector<int> level = levelize(nl);
  int depth = 0;
  for (int l : level) depth = std::max(depth, l);
  return depth;
}

std::vector<CellId> fanin_cone(const Netlist& nl, NetId net) {
  std::vector<CellId> cone;
  std::unordered_set<std::uint32_t> seen;
  std::vector<NetId> stack{net};
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const CellId drv = nl.net(n).driver;
    if (!seen.insert(drv.value()).second) continue;
    const Cell& c = nl.cell(drv);
    if (c.kind != CellKind::kLut) continue;  // stop at PIs/DFFs/consts
    cone.push_back(drv);
    for (NetId in : c.inputs) stack.push_back(in);
  }
  return cone;
}

std::vector<CellId> fanout_cone(const Netlist& nl, NetId net) {
  std::vector<CellId> cone;
  std::unordered_set<std::uint32_t> seen;
  std::vector<NetId> stack{net};
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    for (const PinRef& pin : nl.net(n).sinks) {
      if (!seen.insert(pin.cell.value()).second) continue;
      const Cell& c = nl.cell(pin.cell);
      if (c.kind == CellKind::kOutput) continue;
      cone.push_back(pin.cell);
      if (c.kind == CellKind::kLut)  // do not cross sequential boundary
        stack.push_back(c.output);
    }
  }
  return cone;
}

bool outputs_reachable(const Netlist& nl) {
  // BFS forward from all PIs across LUTs and DFFs; then check each PO's net
  // was reached (constants alone do not count as reachable logic).
  std::unordered_set<std::uint32_t> reached_nets;
  std::queue<NetId> frontier;
  for (CellId pi : nl.primary_inputs()) {
    frontier.push(nl.cell_output(pi));
    reached_nets.insert(nl.cell_output(pi).value());
  }
  while (!frontier.empty()) {
    const NetId n = frontier.front();
    frontier.pop();
    for (const PinRef& pin : nl.net(n).sinks) {
      const Cell& c = nl.cell(pin.cell);
      if (c.kind == CellKind::kOutput) continue;
      const NetId out = c.output;
      if (out.valid() && reached_nets.insert(out.value()).second)
        frontier.push(out);
    }
  }
  for (CellId po : nl.primary_outputs()) {
    const NetId n = nl.cell(po).inputs.at(0);
    if (reached_nets.find(n.value()) == reached_nets.end()) return false;
  }
  return true;
}

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.cells = nl.num_cells();
  s.luts = nl.num_luts();
  s.dffs = nl.num_dffs();
  s.nets = nl.num_nets();
  s.primary_inputs = nl.primary_inputs().size();
  s.primary_outputs = nl.primary_outputs().size();
  s.depth = logic_depth(nl);
  std::size_t fanout_sum = 0, fanout_nets = 0;
  for (NetId n : nl.live_nets()) {
    const std::size_t f = nl.net(n).sinks.size();
    fanout_sum += f;
    s.max_fanout = std::max(s.max_fanout, f);
    ++fanout_nets;
  }
  s.avg_fanout = fanout_nets ? static_cast<double>(fanout_sum) /
                                   static_cast<double>(fanout_nets)
                             : 0.0;
  return s;
}

std::string to_string(const NetlistStats& s) {
  std::ostringstream os;
  os << s.cells << " cells (" << s.luts << " LUT, " << s.dffs << " DFF), "
     << s.nets << " nets, " << s.primary_inputs << " PI, " << s.primary_outputs
     << " PO, depth " << s.depth << ", avg fanout " << s.avg_fanout;
  return os.str();
}

}  // namespace emutile
