/// Campaign sweep bench: fleet-scale statistics the paper's per-iteration
/// numbers only hint at. Runs 100+ debugging sessions — three Table 1
/// designs x three error kinds x two tile sizes, several replicas each —
/// single-threaded and multi-threaded, and checks that the aggregate report
/// is byte-identical either way (the campaign determinism contract), then
/// reports wall-clock throughput, effort percentiles, and measured tiled-ECO
/// speedups against the Quick_ECO and full re-P&R baselines.
///
///   $ ./campaign_sweep [threads] [sessions_per_scenario] [csv_out] [json_out]
///
/// `csv_out`, when given, receives the per-scenario CSV report — what the
/// CI bench-smoke job uploads as its artifact. `json_out` receives the
/// machine-readable metrics document (bench_common MetricsJson) the perf
/// CI lane compares against bench/baselines/campaign_sweep.json.

#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "campaign/campaign_engine.hpp"
#include "util/file_io.hpp"
#include "util/stats.hpp"

using namespace emutile;

namespace {

CampaignSpec make_spec(int replicas) {
  CampaignSpec spec;
  for (const char* name : {"9sym", "styr", "sand"})
    spec.add_catalog_design(name);
  // All three designs are small (<200 CLBs), so one ECO effort fits all.
  spec.eco.placer_effort = bench::effort_for(paper_design("sand").clbs);
  spec.master_seed = 2000;  // DAC 2000
  spec.sessions_per_scenario = replicas;
  spec.num_patterns = 192;
  spec.tilings.clear();
  for (const int tiles : {6, 12}) {
    TilingParams tp;
    tp.num_tiles = tiles;
    tp.target_overhead = 0.22;
    spec.tilings.push_back(tp);
  }
  spec.measure_baselines = true;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : std::max(2u, std::thread::hardware_concurrency());
  const int replicas = argc > 2 ? std::atoi(argv[2]) : 6;

  bench::banner("Campaign sweep: fleet-scale debug statistics",
                "the experimental method, at scale,");

  const CampaignSpec spec = make_spec(replicas);
  std::cout << "matrix: " << spec.designs.size() << " designs x "
            << spec.error_kinds.size() << " error kinds x "
            << spec.tilings.size() << " tile sizes x " << replicas
            << " replicas = " << spec.num_sessions() << " sessions\n\n";

  std::cout << "single-threaded reference run...\n";
  CampaignOptions single;
  single.num_threads = 1;
  const CampaignReport ref = run_campaign(spec, single);
  std::cout << "  " << Table::fmt(ref.wall_seconds, 1) << " s, "
            << Table::fmt(ref.sessions_per_second(), 2) << " sessions/s\n\n";

  std::cout << threads << "-thread run...\n";
  CampaignOptions multi;
  multi.num_threads = threads;
  const CampaignReport par = run_campaign(spec, multi);
  std::cout << "  " << Table::fmt(par.wall_seconds, 1) << " s, "
            << Table::fmt(par.sessions_per_second(), 2) << " sessions/s\n\n";

  const bool deterministic =
      ref.to_json() == par.to_json() && ref.to_csv() == par.to_csv();
  std::cout << "determinism (1 vs " << threads << " threads): "
            << (deterministic ? "byte-identical report" : "MISMATCH — BUG")
            << "\n";
  std::cout << "wall-clock speedup: "
            << Table::fmt(ref.wall_seconds / par.wall_seconds, 2) << "x on "
            << threads << " threads ("
            << std::thread::hardware_concurrency() << " hardware threads)\n\n";

  par.print_summary(std::cout);
  std::cout << "\nper-scenario CSV:\n" << par.to_csv();
  std::cout << "\nper-scenario phase timing:\n" << par.timing_csv();
  if (argc > 3) {
    write_file_atomic(argv[3], par.to_csv());
    std::cout << "\nCSV report written to " << argv[3] << "\n";
  }
  if (argc > 4) {
    bench::MetricsJson metrics("campaign_sweep");
    // Guarded (deterministic work-unit means; a CAD-efficiency regression
    // moves these regardless of machine speed).
    metrics.add("debug_work_units",
                par.debug_work.count() ? par.debug_work.mean() : 0.0);
    metrics.add("build_work_units",
                par.build_work.count() ? par.build_work.mean() : 0.0);
    // Informational (machine-dependent).
    metrics.add("wall_seconds_single", ref.wall_seconds);
    metrics.add("wall_seconds_par", par.wall_seconds);
    metrics.add("sessions_per_second", par.sessions_per_second());
    metrics.add("warm_builds", static_cast<double>(par.warm_builds));
    metrics.write(argv[4]);
  }
  return deterministic ? 0 : 1;
}
