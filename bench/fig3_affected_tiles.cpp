/// Figure 3 — "Number of Tiles Affected by Logic Introduction".
///
/// Each design is tiled into ~10 tiles at ~20% slack. For every test-logic
/// size from 1 to 100 CLBs, new logic is seeded at a fixed tile and the
/// engine's capacity-driven neighbor expansion (Section 4.2) reports how
/// many tiles are affected. The paper plots the same staircase per design;
/// small designs saturate at 100% early, DES/MIPS stay low.

#include <algorithm>

#include "bench_common.hpp"

using namespace emutile;

int main() {
  bench::banner("Figure 3: % of tiles affected vs introduced logic size",
                "Figure 3");

  const std::vector<int> sizes{1, 10, 19, 28, 37, 46, 55, 64, 73, 82, 91, 100};
  std::vector<std::string> header{"design"};
  for (int s : sizes) header.push_back(std::to_string(s));
  Table table(std::move(header));

  for (const PaperDesign& spec : paper_designs()) {
    TiledDesign design =
        bench::build_tiled_paper_design(spec.name, 10, 0.20, 1);
    const int num_tiles = design.tiles->num_tiles();
    // Seed at the center tile, as a debugging change would be localized.
    const TileId seed = design.tiles->tile_at(design.device->width() / 2,
                                              design.device->height() / 2);

    std::vector<std::string> row{spec.name};
    for (int logic_clbs : sizes) {
      double pct;
      try {
        const auto affected =
            TilingEngine::expand_for_capacity(design, {seed}, logic_clbs);
        pct = 100.0 * static_cast<double>(affected.size()) /
              static_cast<double>(num_tiles);
      } catch (const CheckError&) {
        pct = 100.0;  // request exceeds total slack: every tile affected
      }
      row.push_back(Table::fmt(pct, 0));
    }
    table.add_row(std::move(row));
    std::cout << "  " << spec.name << ": " << design.packed.num_clbs()
              << " CLBs in " << num_tiles << " tiles, "
              << [&] {
                   int f = 0;
                   for (int t = 0; t < num_tiles; ++t)
                     f += design.tile_free(
                         TileId{static_cast<std::uint32_t>(t)});
                   return f;
                 }()
              << " free sites total\n";
  }

  std::cout << "\n% of tiles affected, by introduced logic size (# CLBs):\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: staircases; smaller designs reach 100% at "
               "smaller\nlogic sizes (s9234's ~4.7 free CLBs/tile example in "
               "Section 6.1);\nMIPS/DES absorb 100 CLBs in a fraction of "
               "their tiles.\n";
  return 0;
}
