/// Supporting micro-benchmarks (google-benchmark): throughput of the
/// substrate kernels the experiments rest on — packing, placement, routing,
/// simulation, and one tiled ECO. Not a paper table; included so substrate
/// regressions are visible independently of the harnesses.

#include <benchmark/benchmark.h>

#include "core/flow.hpp"
#include "core/tiling_engine.hpp"
#include "designs/catalog.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "sim/patterns.hpp"
#include "sim/simulator.hpp"
#include "synth/packer.hpp"

using namespace emutile;

namespace {

const Netlist& c880() {
  static const Netlist nl = build_paper_design("c880", 1);
  return nl;
}

void BM_Pack(benchmark::State& state) {
  const Netlist& nl = c880();
  for (auto _ : state) {
    PackedDesign packed = pack(nl);
    benchmark::DoNotOptimize(packed.num_clbs());
  }
}
BENCHMARK(BM_Pack)->Unit(benchmark::kMillisecond);

void BM_PlaceFull(benchmark::State& state) {
  const Netlist& nl = c880();
  const PackedDesign packed = pack(nl);
  const Device device(Device::size_for(
      static_cast<int>(packed.num_clbs() * 1.2) + 1,
      static_cast<int>(packed.num_iobs() * 1.25) + 1, 12));
  const auto nets = packed.physical_nets(nl);
  for (auto _ : state) {
    Placement placement(device, packed);
    Placer placer(device, packed, nets);
    PlacerParams pp;
    pp.seed = 7;
    const PlaceResult r = placer.place(placement, pp);
    benchmark::DoNotOptimize(r.final_cost);
  }
}
BENCHMARK(BM_PlaceFull)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RouteFull(benchmark::State& state) {
  FlowParams fp;
  fp.seed = 7;
  fp.slack = 0.2;
  fp.tracks_per_channel = 12;
  TiledDesign d = build_flat(build_paper_design("c880", 1), fp);
  for (auto _ : state) {
    for (const PhysNet& n : d.nets) d.routing->rip_up(n.net);
    Router router(*d.rr);
    auto tasks = make_route_tasks(*d.rr, d.packed, *d.placement, d.nets);
    const RouteResult r =
        router.route(std::move(tasks), *d.routing, RouterParams{});
    if (!r.success) state.SkipWithError("routing failed");
    benchmark::DoNotOptimize(r.nodes_expanded);
  }
}
BENCHMARK(BM_RouteFull)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SimulateCycles(benchmark::State& state) {
  const Netlist& nl = c880();
  Simulator sim(nl);
  sim.reset();
  const Pattern p(nl.primary_inputs().size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step(p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateCycles);

void BM_TiledEco(benchmark::State& state) {
  TilingParams tp;
  tp.seed = 7;
  tp.num_tiles = 10;
  tp.tracks_per_channel = 12;
  TiledDesign base = TilingEngine::build(build_paper_design("c880", 1), tp);
  for (auto _ : state) {
    state.PauseTiming();
    TiledDesign d = base.clone();
    CellId victim;
    for (CellId id : d.netlist.live_cells())
      if (d.netlist.cell(id).kind == CellKind::kLut) victim = id;
    d.netlist.set_lut_function(victim,
                               d.netlist.cell(victim).function.complement());
    EcoChange change;
    change.modified_cells = {victim};
    state.ResumeTiming();
    const EcoOutcome out = TilingEngine::apply_change(d, change, EcoOptions{});
    if (!out.success) state.SkipWithError("ECO failed");
    benchmark::DoNotOptimize(out.effort.instances_placed);
  }
}
BENCHMARK(BM_TiledEco)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
