/// Figure 5 — "Place-and-Route Speedup".
///
/// For every design and tile size (2.5 / 5 / 15 / 25 % of the design, i.e.
/// ~40 / 20 / 7 / 4 tiles), the same small debugging change — one modified
/// LUT plus a two-cell addition at the same anchor — is applied three ways
/// on clones of the same tiled implementation:
///   * tiled ECO      (this paper: re-P&R only the affected tile(s)),
///   * Quick_ECO      (functional-block granularity; the whole design here),
///   * incremental    (placement refinement + selective re-route).
/// Speedup = baseline wall time / tiled wall time, measured on identical
/// work. The paper reports 2.8/5.6/17.0 for DES/MIPS/s9234 at 2.5% and
/// average (median) speedups of 7.6 (2.6), 2.1 (1.7), 1.5 (1.3) as tiles
/// grow to 5/15/25%.

#include <cmath>

#include "bench_common.hpp"
#include "eco/eco_strategies.hpp"
#include "hier/hierarchy.hpp"
#include "util/stats.hpp"

using namespace emutile;

int main() {
  bench::banner("Figure 5: place-and-route speedup vs tile size", "Figure 5");

  const std::vector<double> fractions{0.025, 0.05, 0.15, 0.25};
  Table table({"design", "tile %", "tiles", "affected", "tiled ms",
               "quick ms", "incr ms", "speedup vs quick", "speedup vs incr"});
  std::vector<std::vector<double>> speedups_q(fractions.size());
  std::vector<std::vector<double>> speedups_i(fractions.size());

  for (const PaperDesign& spec : paper_designs()) {
    // One physical implementation per design; boundaries are re-drawn per
    // tile size without re-implementation (Section 3.1 allows boundaries to
    // be reestablished between iterations).
    TiledDesign base = bench::build_tiled_paper_design(spec.name, 40, 0.20, 3);
    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
      const double frac = fractions[fi];
      const int num_tiles =
          std::max(2, static_cast<int>(std::lround(1.0 / frac)));
      TiledDesign tiled = base.clone();
      TilingEngine::retile(tiled, num_tiles);

      DesignHierarchy hier(spec.name);
      hier.bind_remaining(tiled.netlist, hier.add_block("functional_block"));

      TiledDesign for_quick = tiled.clone();
      TiledDesign for_incr = tiled.clone();

      EcoOptions eco;
      eco.placer_effort = bench::effort_for(spec.clbs);
      const EcoStrategyResult rt =
          tiled_eco(tiled, scripted_standard_change(tiled), eco);
      const EcoStrategyResult rq =
          quick_eco(for_quick, hier, scripted_standard_change(for_quick), 5);
      IncrementalOptions inc;
      inc.refine_effort = 0.35 * bench::effort_for(spec.clbs);
      const EcoStrategyResult ri =
          incremental_eco(for_incr, scripted_standard_change(for_incr), inc);

      const double t = rt.effort.total_ms();
      const double sq = rq.effort.total_ms() / t;
      const double si = ri.effort.total_ms() / t;
      speedups_q[fi].push_back(sq);
      speedups_i[fi].push_back(si);

      table.add_row({spec.name, Table::fmt(100 * frac, 1),
                     std::to_string(num_tiles),
                     std::to_string(rt.success ? 1 : 0) == "1"
                         ? std::to_string(rt.effort.instances_placed)
                         : "-",
                     Table::fmt(t, 1), Table::fmt(rq.effort.total_ms(), 1),
                     Table::fmt(ri.effort.total_ms(), 1), Table::fmt(sq, 1),
                     Table::fmt(si, 1)});
    }
    std::cout << "  " << spec.name << " done\n";
  }

  std::cout << '\n';
  table.print(std::cout);

  Table summary({"tile %", "avg speedup (quick)", "median (quick)",
                 "avg speedup (incr)", "median (incr)", "paper avg",
                 "paper median"});
  const char* paper_avg[] = {"-", "7.6", "2.1", "1.5"};
  const char* paper_med[] = {"-", "2.6", "1.7", "1.3"};
  for (std::size_t fi = 0; fi < fractions.size(); ++fi)
    summary.add_row({Table::fmt(100 * fractions[fi], 1),
                     Table::fmt(mean(speedups_q[fi]), 1),
                     Table::fmt(median(speedups_q[fi]), 1),
                     Table::fmt(mean(speedups_i[fi]), 1),
                     Table::fmt(median(speedups_i[fi]), 1), paper_avg[fi],
                     paper_med[fi]});
  std::cout << '\n';
  summary.print(std::cout);
  std::cout << "\nExpected shape: speedup grows as tiles shrink, collapses "
               "toward\n~1.5x at 25% tile size, and never drops below 1x "
               "(paper Section 6.1).\n";
  return 0;
}
