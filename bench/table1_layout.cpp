/// Table 1 — "Tiled Physical Layout Statistics".
///
/// For each of the nine designs: implement once conventionally (no slack)
/// and once tiled with ~20% reserved slack; report CLB count, the measured
/// area overhead, and the timing overhead (tiled critical path vs flat).
/// The paper's published numbers print alongside for shape comparison.

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "timing/sta.hpp"

using namespace emutile;

int main() {
  bench::banner("Table 1: tiled physical layout statistics", "Table 1");

  Table table({"design", "# CLBs", "area overhead", "timing overhead",
               "paper area", "paper timing"});

  for (const PaperDesign& spec : paper_designs()) {
    const std::uint64_t seed = 1;
    Netlist golden = build_paper_design(spec.name, seed);

    // Conventional implementation: minimal device, no slack.
    FlowParams flat;
    flat.seed = seed;
    flat.placer_effort = bench::effort_for(spec.clbs);
    flat.tracks_per_channel = bench::tracks_for(spec.clbs);
    TiledDesign flat_design = build_flat(std::move(golden), flat);
    const double flat_ns =
        analyze_timing(flat_design.netlist, flat_design.packed,
                       *flat_design.placement, *flat_design.routing,
                       flat_design.nets)
            .critical_path_ns;
    const auto clbs = flat_design.packed.num_clbs();

    // Tiled implementation: ~20% slack, ~10 tiles (paper Section 6).
    TiledDesign tiled =
        bench::build_tiled_paper_design(spec.name, 10, 0.20, seed);
    const double tiled_ns =
        analyze_timing(tiled.netlist, tiled.packed, *tiled.placement,
                       *tiled.routing, tiled.nets)
            .critical_path_ns;

    const double area_overhead =
        static_cast<double>(tiled.device->num_clb_sites()) /
            static_cast<double>(tiled.packed.num_clbs()) -
        1.0;
    const double timing_overhead = tiled_ns / flat_ns - 1.0;

    table.add_row({spec.name, std::to_string(clbs),
                   Table::fmt(area_overhead), Table::fmt(timing_overhead),
                   Table::fmt(spec.area_overhead),
                   Table::fmt(spec.timing_overhead)});
    std::cout << "  " << spec.name << ": flat " << Table::fmt(flat_ns, 1)
              << " ns, tiled " << Table::fmt(tiled_ns, 1) << " ns\n";
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected shape: area overhead clusters near the 20% slack "
               "target;\ntiming overhead is small and sometimes negative "
               "(placement noise\nexceeds the tiling penalty, as the paper "
               "observes).\n";
  return 0;
}
