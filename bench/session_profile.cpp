/// Session phase-profile bench: where does a debug session's wall time go,
/// and what do the big-design throughput optimizations buy?
///
/// Runs the same campaign grid twice over the paper's large designs:
///   legacy  cold build per session + per-iteration probe insert/remove
///           (warm_start off, persistent_probes off — the pre-batching path)
///   current warm-started builds (shared pre-injection tiled baseline per
///           (design, tiling) pair) + persistent, retargeted probe logic
/// then prints the per-phase wall-clock breakdown (inject/build/detect/
/// localize/correct/verify) and the mean session wall-time reduction.
///
///   $ ./session_profile [--designs a,b] [--sessions N] [--tiles N]
///                       [--patterns N] [--threads N] [--json PATH]
///
/// Defaults run the MIPS/DES grid. `--json` writes the MetricsJson document
/// the perf-regression CI lane (scripts/ci.sh perf) compares against
/// bench/baselines/session_profile.json; the guarded keys are ratios and
/// work units, which transfer across machines.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign_engine.hpp"
#include "debug/debug_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/stats.hpp"

using namespace emutile;

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

double mean_or_zero(const Accumulator& a) {
  return a.count() ? a.mean() : 0.0;
}

/// A generous per-session budget of metric record operations: endpoint +
/// scheduler + cache counters, six phase histograms, localizer work counters
/// — a real session issues well under this.
constexpr std::uint64_t kRecordOpsPerSession = 1000;

/// Calibrate the per-operation cost of the metrics hot path (one counter add
/// plus one histogram record on pre-resolved handles, the way instrumented
/// code actually uses them) and return the projected overhead as a percent
/// of `session_wall_s`. With EMUTILE_METRICS_DISABLED both ops compile to
/// no-ops and this measures (and certifies) approximately zero.
double metrics_overhead_pct(double session_wall_s) {
  MetricsRegistry registry;
  MetricCounter& counter = registry.counter("bench.calibration.count");
  MetricHistogram& hist = registry.histogram("bench.calibration.us");
  constexpr std::uint64_t kCalibrationOps = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalibrationOps; ++i) {
    counter.add();
    hist.record(i & 0xFFFF);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Defeat dead-code elimination of the whole loop.
  if (counter.value() > kCalibrationOps || hist.sum() == 1)
    std::cerr << "calibration anomaly\n";
  if (session_wall_s <= 0.0) return 0.0;
  const double per_op_s = elapsed_s / static_cast<double>(kCalibrationOps);
  return 100.0 * per_op_s * static_cast<double>(kRecordOpsPerSession) /
         session_wall_s;
}

/// Spans a session actually opens: one session.run, six phases, a cache
/// lookup, and a localizer.round per iteration — tens, not hundreds. 64 is
/// comfortably above the real count.
constexpr std::uint64_t kSpanOpsPerSession = 64;

/// Same calibration for the tracing hot path: one full ScopedSpan
/// open/close cycle (TLS frame push/pop + striped ring append), projected
/// onto a per-session span budget. Compiled out, it certifies ~zero.
double tracing_overhead_pct(double session_wall_s) {
  Tracer tracer;
  constexpr std::uint64_t kCalibrationSpans = 100'000;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalibrationSpans; ++i) {
    const ScopedSpan span(tracer, "bench.calibration.span");
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Defeat dead-code elimination: the tracer must have buffered something
  // (ring capacity bounds how much survives) unless tracing is compiled out.
  if (Tracer::enabled() && tracer.collect(false).empty())
    std::cerr << "calibration anomaly\n";
  if (session_wall_s <= 0.0) return 0.0;
  const double per_span_s = elapsed_s / static_cast<double>(kCalibrationSpans);
  return 100.0 * per_span_s * static_cast<double>(kSpanOpsPerSession) /
         session_wall_s;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> designs{"MIPS R2000", "DES"};
  int sessions = 3;
  int tiles = 12;
  std::size_t patterns = 192;
  std::size_t threads = std::max(2u, std::thread::hardware_concurrency());
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--designs") designs = split_csv(need("--designs"));
    else if (arg == "--sessions") sessions = std::atoi(need("--sessions"));
    else if (arg == "--tiles") tiles = std::atoi(need("--tiles"));
    else if (arg == "--patterns")
      patterns = std::strtoull(need("--patterns"), nullptr, 10);
    else if (arg == "--threads")
      threads = std::strtoull(need("--threads"), nullptr, 10);
    else if (arg == "--json") json_out = need("--json");
    else {
      std::cerr << "usage: session_profile [--designs a,b] [--sessions N] "
                   "[--tiles N] [--patterns N] [--threads N] [--json PATH]\n";
      return 2;
    }
  }

  bench::banner("Session phase profile: batched probes + warm-start tiling",
                "the per-iteration CAD-effort claims, wall-clock,");

  int max_clbs = 0;
  for (const std::string& name : designs)
    max_clbs = std::max(max_clbs, paper_design(name).clbs);

  CampaignSpec spec;
  for (const std::string& name : designs) spec.add_catalog_design(name);
  spec.master_seed = 2000;
  spec.sessions_per_scenario = sessions;
  spec.num_patterns = patterns;
  spec.tilings.clear();
  TilingParams tp;
  tp.num_tiles = tiles;
  tp.target_overhead = 0.22;
  tp.placer_effort = bench::effort_for(max_clbs);
  tp.tracks_per_channel = bench::tracks_for(max_clbs);
  spec.tilings.push_back(tp);

  std::cout << "grid: " << spec.designs.size() << " designs x "
            << spec.error_kinds.size() << " error kinds x " << sessions
            << " sessions = " << spec.num_sessions() << " sessions per mode, "
            << threads << " threads\n\n";

  // Legacy mode: the pre-batching hot path — every session pays a full
  // build, every localizer iteration an insert/remove ECO pair.
  CampaignSpec legacy_spec = spec;
  legacy_spec.localizer.persistent_probes = false;
  CampaignOptions legacy_opts;
  legacy_opts.num_threads = threads;
  legacy_opts.warm_start = false;
  std::cout << "legacy mode (cold builds, per-iteration probe ECOs)...\n";
  const CampaignReport legacy = run_campaign(legacy_spec, legacy_opts);
  std::cout << "  " << Table::fmt(legacy.wall_seconds, 1) << " s wall\n\n";

  CampaignOptions current_opts;
  current_opts.num_threads = threads;
  std::cout << "current mode (warm-start baselines, persistent probes)...\n";
  const CampaignReport current = run_campaign(spec, current_opts);
  std::cout << "  " << Table::fmt(current.wall_seconds, 1) << " s wall\n\n";

  std::cout << "per-scenario phase breakdown (current mode, mean seconds):\n"
            << current.timing_csv() << "\n";

  const double legacy_mean = mean_or_zero(legacy.session_wall);
  const double current_mean = mean_or_zero(current.session_wall);
  const double wall_ratio =
      legacy_mean > 0.0 ? current_mean / legacy_mean : 1.0;
  const double legacy_work = mean_or_zero(legacy.debug_work);
  const double current_work = mean_or_zero(current.debug_work);
  const double work_ratio = legacy_work > 0.0 ? current_work / legacy_work : 1.0;
  const std::size_t timed = current.session_wall.count();
  const double cold_ratio =
      timed ? 1.0 - static_cast<double>(current.warm_builds) /
                        static_cast<double>(timed)
            : 1.0;

  std::cout << "mean session wall: legacy " << Table::fmt(legacy_mean, 3)
            << " s -> current " << Table::fmt(current_mean, 3) << " s ("
            << Table::fmt(100.0 * (1.0 - wall_ratio), 1) << "% reduction)\n"
            << "mean debug-ECO work units: legacy "
            << Table::fmt(legacy_work, 0) << " -> current "
            << Table::fmt(current_work, 0) << " ("
            << Table::fmt(100.0 * (1.0 - work_ratio), 1) << "% reduction)\n"
            << "warm-started builds: " << current.warm_builds << " of "
            << timed << " sessions\n";

  // Observability overhead gate: the metrics and tracing layers' combined
  // recording cost, each calibrated per-op and projected onto a generous
  // per-session op budget, must stay under 2% of the mean session wall time.
  const double overhead_pct = metrics_overhead_pct(current_mean);
  const double trace_pct = tracing_overhead_pct(current_mean);
  const double combined_pct = overhead_pct + trace_pct;
  std::cout << "metrics recording overhead: " << Table::fmt(overhead_pct, 3)
            << "% of mean session wall (budget " << kRecordOpsPerSession
            << " ops/session)\n"
            << "tracing span overhead: " << Table::fmt(trace_pct, 3)
            << "% of mean session wall (budget " << kSpanOpsPerSession
            << " spans/session)\n"
            << "combined observability overhead: "
            << Table::fmt(combined_pct, 3) << "% (gate < 2%)\n";
  if (combined_pct >= 2.0) {
    std::cerr << "FAIL: metrics+tracing overhead " << combined_pct
              << "% >= 2% of session wall time\n";
    return 1;
  }

  if (!json_out.empty()) {
    bench::MetricsJson metrics("session_profile");
    // Guarded: ratios and work units transfer across machines.
    metrics.add("session_wall_ratio", wall_ratio);
    metrics.add("debug_work_ratio", work_ratio);
    metrics.add("cold_build_ratio", cold_ratio);
    metrics.add("debug_work_units", current_work);
    // Informational. (The overhead keys are deliberately not guarded
    // `_ratio` keys: the <2% gate above already enforces them exactly.)
    metrics.add("metrics_overhead_pct", overhead_pct);
    metrics.add("tracing_overhead_pct", trace_pct);
    metrics.add("observability_overhead_pct", combined_pct);
    metrics.add("mean_session_wall_legacy_s", legacy_mean);
    metrics.add("mean_session_wall_current_s", current_mean);
    for (std::size_t p = 0; p < kNumSessionPhases; ++p)
      metrics.add(std::string(to_string(static_cast<SessionPhase>(p))) +
                      "_mean_s",
                  mean_or_zero(current.phase_wall[p]));
    metrics.write(json_out);
  }
  return 0;
}
