/// Ablation study (not a paper table; supports DESIGN.md's design choices):
/// how the two main tiling knobs affect debugging-iteration cost on a
/// mid-size design (s9234-class, ~235 CLBs, 10 tiles):
///
///  * reserved slack (paper Section 3.2: 10% is the practical floor, the
///    experiments use ~20%) — less slack means neighbor expansion kicks in
///    earlier and ECOs touch more tiles;
///  * routing headroom (extra channel tracks beyond the initial route) —
///    locked boundary stubs consume routing freedom inside a cleared tile,
///    so zero headroom forces region growth or full-re-route fallbacks.

#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace emutile;

namespace {

struct Sample {
  bool success = false;
  std::size_t affected = 0;
  std::size_t placed = 0;
  int expansions = 0;
  double ms = 0.0;
};

Sample run_eco(TiledDesign& design, std::uint64_t seed) {
  // The standard small change: one inverted LUT plus a 2-cell probe.
  std::vector<CellId> luts;
  for (CellId id : design.netlist.live_cells())
    if (design.netlist.cell(id).kind == CellKind::kLut) luts.push_back(id);
  Rng rng(seed);
  const CellId victim = luts[rng.next_below(luts.size())];
  design.netlist.set_lut_function(
      victim, design.netlist.cell(victim).function.complement());
  EcoChange change;
  change.modified_cells = {victim};
  const CellId p = design.netlist.add_lut(
      "abl_p" + std::to_string(seed), TruthTable::buffer(),
      {design.netlist.cell_output(victim)});
  change.added_cells = {p};
  change.anchor_cells = {victim};

  EcoOptions opts;
  opts.seed = seed;
  const EcoOutcome out = TilingEngine::apply_change(design, change, opts);
  Sample s;
  s.success = out.success;
  s.affected = out.affected.size();
  s.placed = out.effort.instances_placed;
  s.expansions = out.region_expansions;
  s.ms = out.effort.total_ms();
  return s;
}

}  // namespace

int main() {
  bench::banner("Ablation: slack overhead and routing headroom",
                "Section 3.2 design knobs");

  Table table({"overhead", "headroom", "tiles affected", "instances placed",
               "expansions", "ECO ms"});

  for (double overhead : {0.10, 0.20, 0.30}) {
    for (int headroom : {0, 4}) {
      TilingParams tp;
      tp.seed = 5;
      tp.target_overhead = overhead;
      tp.num_tiles = 10;
      tp.placer_effort = 0.4;
      tp.tracks_per_channel = 14;
      tp.route_headroom = headroom;
      TiledDesign design =
          TilingEngine::build(build_paper_design("s9234", 1), tp);

      // Average over three independent changes on clones.
      double affected = 0, placed = 0, expansions = 0, ms = 0;
      const int kRuns = 3;
      for (int r = 0; r < kRuns; ++r) {
        TiledDesign copy = design.clone();
        const Sample s = run_eco(copy, 40 + static_cast<std::uint64_t>(r));
        affected += static_cast<double>(s.affected);
        placed += static_cast<double>(s.placed);
        expansions += s.expansions;
        ms += s.ms;
      }
      table.add_row({Table::fmt(overhead, 2), std::to_string(headroom),
                     Table::fmt(affected / kRuns, 1),
                     Table::fmt(placed / kRuns, 1),
                     Table::fmt(expansions / kRuns, 1),
                     Table::fmt(ms / kRuns, 1)});
    }
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nExpected: more slack -> fewer affected tiles per change; "
               "zero routing\nheadroom -> more region expansions (locked "
               "stubs eat the freedom the\ncleared tile needs), matching "
               "the paper's observation that interfaces\nare a hindrance "
               "to place-and-route flexibility.\n";
  return 0;
}
