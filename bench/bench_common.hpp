#pragma once
/// Shared plumbing for the paper-reproduction bench harnesses: builds the
/// nine Table 1 designs with consistent parameters and prints uniform
/// headers. Each bench binary regenerates one table or figure.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/tiling_engine.hpp"
#include "designs/catalog.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace emutile::bench {

/// Placer effort scaled to design size so the large designs (MIPS, DES)
/// keep bench runtimes reasonable; quality differences wash out of the
/// relative comparisons the paper reports.
inline double effort_for(int clbs) {
  if (clbs >= 800) return 0.15;
  if (clbs >= 200) return 0.4;
  return 1.0;
}

/// Route with a wider default channel so the big designs do not spend bench
/// time on widening retries.
inline int tracks_for(int clbs) { return clbs >= 200 ? 14 : 12; }

inline TiledDesign build_tiled_paper_design(const std::string& name,
                                            int num_tiles, double overhead,
                                            std::uint64_t seed) {
  const PaperDesign& spec = paper_design(name);
  Netlist nl = build_paper_design(name, seed);
  TilingParams tp;
  tp.seed = seed;
  tp.target_overhead = overhead;
  tp.num_tiles = num_tiles;
  tp.placer_effort = effort_for(spec.clbs);
  tp.tracks_per_channel = tracks_for(spec.clbs);
  return TilingEngine::build(std::move(nl), tp);
}

inline void banner(const char* title, const char* paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n(reproduces " << paper_ref
            << " of Lach/Mangione-Smith/Potkonjak, DAC 2000)\n"
            << "==============================================================\n";
}

}  // namespace emutile::bench
