#pragma once
/// Shared plumbing for the paper-reproduction bench harnesses: builds the
/// nine Table 1 designs with consistent parameters and prints uniform
/// headers. Each bench binary regenerates one table or figure.

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/tiling_engine.hpp"
#include "designs/catalog.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace emutile::bench {

/// Placer effort scaled to design size so the large designs (MIPS, DES)
/// keep bench runtimes reasonable; quality differences wash out of the
/// relative comparisons the paper reports.
inline double effort_for(int clbs) {
  if (clbs >= 800) return 0.15;
  if (clbs >= 200) return 0.4;
  return 1.0;
}

/// Route with a wider default channel so the big designs do not spend bench
/// time on widening retries.
inline int tracks_for(int clbs) { return clbs >= 200 ? 14 : 12; }

inline TiledDesign build_tiled_paper_design(const std::string& name,
                                            int num_tiles, double overhead,
                                            std::uint64_t seed) {
  const PaperDesign& spec = paper_design(name);
  Netlist nl = build_paper_design(name, seed);
  TilingParams tp;
  tp.seed = seed;
  tp.target_overhead = overhead;
  tp.num_tiles = num_tiles;
  tp.placer_effort = effort_for(spec.clbs);
  tp.tracks_per_channel = tracks_for(spec.clbs);
  return TilingEngine::build(std::move(nl), tp);
}

inline void banner(const char* title, const char* paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n(reproduces " << paper_ref
            << " of Lach/Mangione-Smith/Potkonjak, DAC 2000)\n"
            << "==============================================================\n";
}

/// Machine-readable bench output: a flat named-metric JSON document,
///
///   {"bench": "<name>", "metrics": {"<key>": <number>, ...}}
///
/// shared by every bench the perf-regression CI lane consumes — the
/// checked-in bench/baselines/*.json files are literal copies of this
/// output, and tools/perf_compare reads both sides. Metric naming contract:
/// keys ending in `_ratio` or `_work_units` are guarded (lower is better,
/// compared against the baseline with a tolerance band); everything else —
/// absolute seconds in particular, which do not transfer across machines —
/// is recorded for humans and trend tooling but never gates CI.
class MetricsJson {
 public:
  explicit MetricsJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n"
                      "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", metrics_[i].second);
      out += "    \"" + metrics_[i].first + "\": " + buf;
      out += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
  }

  /// Atomically write the document to `path` (the artifact CI uploads and
  /// perf-refresh checks in as the new baseline).
  void write(const std::string& path) const {
    write_file_atomic(path, str());
    std::cout << "metrics JSON written to " << path << "\n";
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace emutile::bench
