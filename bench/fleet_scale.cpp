/// Fleet-scale bench: how close to linear does campaign throughput scale as
/// instances are added to the fleet?
///
/// Runs one pinned catalog campaign through the CampaignCoordinator against
/// in-process serviced fleets of growing size (1, 2, 4, 8 instances by
/// default, one worker thread each, one shard per instance), wall-timing
/// each run, plus a direct run_campaign as the no-fleet reference. Every
/// merged report is checked byte-identical to the direct run — a scaling
/// number from a wrong report is worthless. Work stealing and cache-affinity
/// placement stay on: they are part of the throughput being measured.
///
///   $ ./fleet_scale [--sizes 1,2,4,8] [--replicas N] [--patterns N]
///                   [--tiles N] [--root DIR] [--json PATH]
///
/// `--json` writes the MetricsJson document the perf-regression CI lane
/// (scripts/ci.sh perf) compares against bench/baselines/fleet_scale.json.
/// The guarded key is `fleet_scale_ratio` = T_max * min(cores, max_size) /
/// T_1 — the largest fleet's wall time normalized by the speedup the
/// hardware could at best deliver (lower is better; 1.0 is perfectly linear
/// scaling, and on a single-core runner it degenerates to the coordinator's
/// overhead factor, which is exactly what can regress there). Absolute
/// seconds and per-size speedups ride along as informational keys.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign_engine.hpp"
#include "orchestrator/campaign_coordinator.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"

using namespace emutile;

namespace {

/// The pinned campaign: 2 error kinds x `replicas` on one catalog design,
/// sliceable 8 ways with real work per shard.
CampaignSpec scale_spec(int replicas, int patterns, int tiles) {
  CampaignSpec spec;
  spec.add_catalog_design("9sym");
  spec.error_kinds = {ErrorKind::kWrongPolarity, ErrorKind::kWrongConnection};
  spec.tilings.clear();
  TilingParams tiling;
  tiling.num_tiles = tiles;
  tiling.target_overhead = 0.3;
  spec.tilings.push_back(tiling);
  spec.sessions_per_scenario = replicas;
  spec.master_seed = 20'000;
  spec.num_patterns = patterns;
  return spec;
}

struct FleetRun {
  std::size_t size = 0;
  double wall_s = 0.0;
  std::size_t steals = 0;
  std::size_t affinity = 0;
  bool identical = false;
};

FleetRun run_fleet(std::size_t size, const CampaignSpec& spec,
                   const CampaignReport& reference,
                   const std::filesystem::path& root) {
  std::filesystem::remove_all(root);
  std::vector<std::unique_ptr<SessionService>> services;
  std::vector<std::unique_ptr<ServiceEndpoint>> endpoints;
  FleetConfig fleet;
  for (std::size_t i = 0; i < size; ++i) {
    ServiceConfig config;
    config.root = root / ("i" + std::to_string(i));
    config.num_threads = 1;
    config.snapshot_every = 0;
    config.enable_journal = false;  // throughput bench, not an audit bench
    services.push_back(std::make_unique<SessionService>(config));
    endpoints.push_back(std::make_unique<ServiceEndpoint>(
        *services.back(), config.root / "serviced.sock"));
    fleet.instances.push_back(
        {"i" + std::to_string(i),
         ServiceAddress::unix_socket(endpoints.back()->socket_path())});
  }

  CoordinatorOptions options;
  options.num_shards = size;
  options.poll_interval = std::chrono::milliseconds(5);
  options.request_timeout_ms = 30'000;
  options.collect_metrics = false;  // measure the campaign, not the scrape
  options.collect_trace = false;

  CampaignCoordinator coordinator(fleet, options);
  const auto start = std::chrono::steady_clock::now();
  const OrchestrationResult result = coordinator.run(spec);
  FleetRun run;
  run.size = size;
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  run.steals = result.steals;
  run.affinity = result.affinity_dispatches;
  run.identical = result.report.to_json() == reference.to_json() &&
                  result.report.to_csv() == reference.to_csv();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> sizes = {1, 2, 4, 8};
  int replicas = 8;
  int patterns = 96;
  int tiles = 6;
  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "emutile-fleet-scale";
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sizes") {
      sizes.clear();
      std::stringstream list(need());
      std::string item;
      while (std::getline(list, item, ','))
        sizes.push_back(std::strtoull(item.c_str(), nullptr, 10));
      if (sizes.empty() || sizes.front() != 1) {
        std::cerr << "--sizes must start with 1 (the scaling reference)\n";
        return 2;
      }
    } else if (arg == "--replicas") replicas = std::atoi(need());
    else if (arg == "--patterns") patterns = std::atoi(need());
    else if (arg == "--tiles") tiles = std::atoi(need());
    else if (arg == "--root") root = need();
    else if (arg == "--json") json_out = need();
    else {
      std::cerr << "usage: fleet_scale [--sizes 1,2,4,8] [--replicas N]"
                   " [--patterns N] [--tiles N] [--root DIR] [--json PATH]\n";
      return 2;
    }
  }

  const CampaignSpec spec = scale_spec(replicas, patterns, tiles);
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());

  bench::banner("Fleet scale: orchestrated campaign throughput vs fleet size",
                "the distributed-campaign scaling the fleet layer targets,");
  std::cout << spec.num_sessions() << " sessions (2 error kinds x " << replicas
            << " replicas, " << patterns << " patterns), fleets of";
  for (const std::size_t size : sizes) std::cout << " " << size;
  std::cout << " instance(s), " << cores << " hardware core(s)\n\n";

  // The reference both for byte-identity and for the no-fleet floor. One
  // untimed warm-up first so the timed runs don't pay first-touch costs.
  static_cast<void>(run_campaign(scale_spec(1, patterns, tiles)));
  const auto direct_start = std::chrono::steady_clock::now();
  const CampaignReport reference = run_campaign(spec);
  const double direct_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - direct_start)
                              .count();

  Table table({"instances", "wall s", "speedup", "efficiency", "steals",
               "affinity", "report"});
  std::vector<FleetRun> runs;
  bool all_identical = true;
  for (const std::size_t size : sizes) {
    runs.push_back(run_fleet(size, spec, reference,
                             root / ("fleet-" + std::to_string(size))));
    const FleetRun& run = runs.back();
    const double speedup = run.wall_s > 0.0 ? runs.front().wall_s / run.wall_s
                                            : 0.0;
    const double ideal = static_cast<double>(std::min(cores, run.size));
    table.add_row({std::to_string(run.size), Table::fmt(run.wall_s, 2),
                   Table::fmt(speedup, 2), Table::fmt(speedup / ideal, 2),
                   std::to_string(run.steals), std::to_string(run.affinity),
                   run.identical ? "identical" : "MISMATCH"});
    all_identical &= run.identical;
  }
  table.print(std::cout);
  std::cout << "\ndirect run_campaign (no fleet): " << Table::fmt(direct_s, 2)
            << " s\n";
  if (!all_identical) {
    std::cerr << "FAIL: a merged fleet report diverged from the direct run\n";
    return 1;
  }

  const FleetRun& largest = runs.back();
  const double ideal =
      static_cast<double>(std::min<std::size_t>(cores, largest.size));
  const double scale_ratio =
      runs.front().wall_s > 0.0
          ? largest.wall_s * ideal / runs.front().wall_s
          : 0.0;
  std::cout << "fleet_scale_ratio (T_" << largest.size << " x min(cores, "
            << largest.size << ") / T_1): " << Table::fmt(scale_ratio, 3)
            << " (1.0 = perfectly linear)\n";

  if (!json_out.empty()) {
    bench::MetricsJson metrics("fleet_scale");
    // Guarded: wall time of the largest fleet normalized by the best
    // speedup the hardware allows, relative to the single-instance fleet.
    metrics.add("fleet_scale_ratio", scale_ratio);
    // Informational: the raw curve, the coordination tax over a direct
    // run, and how much the balancer had to intervene.
    metrics.add("fleet_direct_s", direct_s);
    for (const FleetRun& run : runs) {
      const std::string prefix = "fleet_" + std::to_string(run.size);
      metrics.add(prefix + "_wall_s", run.wall_s);
      metrics.add(prefix + "_steals", static_cast<double>(run.steals));
    }
    metrics.write(json_out);
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return 0;
}
