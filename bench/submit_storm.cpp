/// Submit-storm bench: how much concurrent front-end load can a serviced
/// instance absorb, and what did the epoll reactor buy over the legacy
/// thread-per-connection endpoint?
///
/// Runs the same storm against both endpoint modes of an in-process
/// SessionService: an epoll-driven load generator (a few threads
/// multiplexing all connections, so the generator stays much lighter than
/// either server under test) keeps N one-shot connections in flight with a
/// mixed workload — SUBMITs of a cache-warm spec plus STATUS/PING/LIST
/// probes. The service runs with a bounded campaign queue, so the storm
/// also exercises admission control: most SUBMITs are shed with `ERR busy`
/// (and deadline-carrying ones with `ERR overdeadline`) — a shed reply is a
/// served reply, and the bench counts it as front-end throughput. Reported
/// per mode: SUBMIT replies/s, reply p50/p99, shed rate, connect retries
/// (the legacy endpoint's small accept backlog refuses connections under
/// load; retrying and counting that is part of the measurement).
///
///   $ ./submit_storm [--clients N] [--requests-per-client N]
///                    [--submit-pct N] [--deadline-pct N]
///                    [--mode reactor|legacy|both] [--generators N]
///                    [--threads N] [--max-pending N] [--root DIR]
///                    [--json PATH]
///
/// Defaults: 512 concurrent clients x 16 requests, 60% SUBMIT, both modes.
/// `--json` writes the MetricsJson document the perf-regression CI lane
/// (scripts/ci.sh storm) compares against bench/baselines/submit_storm.json.
/// The guarded key is `storm_submit_ratio` = legacy/reactor SUBMIT-reply
/// throughput (lower is better; 0.2 means the reactor is 5x faster) — a
/// cross-machine-stable ratio, unlike the absolute rates. `--mode reactor`
/// skips the legacy pass (no ratio; used by the fleet smoke).

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "service/service_client.hpp"
#include "service/service_endpoint.hpp"
#include "service/session_service.hpp"

using namespace emutile;

namespace {

/// The storm spec: tiny (one session) so accepted campaigns drain through
/// the warm result cache instead of competing with the clients for CPU.
std::string storm_spec(std::uint64_t seed) {
  std::ostringstream os;
  os << "emutile-campaign v1\ndesign 9sym\nerror_kind wrong-polarity\n"
     << "tiling 6 0.3 1 12 4\nsessions_per_scenario 1\nmaster_seed " << seed
     << "\nnum_patterns 96\nend\n";
  return os.str();
}

struct StormTally {
  std::uint64_t submit_ok = 0;
  std::uint64_t submit_busy = 0;
  std::uint64_t submit_overdeadline = 0;
  std::uint64_t probe_ok = 0;
  std::uint64_t errors = 0;      ///< unexpected replies / dead requests
  std::uint64_t connect_retries = 0;
  std::vector<double> reply_ms;  ///< round-trip per completed request

  void fold(const StormTally& other) {
    submit_ok += other.submit_ok;
    submit_busy += other.submit_busy;
    submit_overdeadline += other.submit_overdeadline;
    probe_ok += other.probe_ok;
    errors += other.errors;
    connect_retries += other.connect_retries;
    reply_ms.insert(reply_ms.end(), other.reply_ms.begin(),
                    other.reply_ms.end());
  }
};

/// The four request kinds of the storm mix. Picked deterministically per
/// (client, request) so both endpoint modes face the identical workload.
struct StormMix {
  std::string submit;    ///< SUBMIT of the warm spec
  std::string hopeless;  ///< same SUBMIT with deadline_ms=1 (gets shed)
  std::string status;    ///< STATUS of the warm campaign
  int submit_pct = 60;
  int deadline_pct = 10;

  [[nodiscard]] const std::string* pick(std::size_t client, std::size_t r,
                                        bool& is_submit) const {
    const std::size_t roll = (client * 131 + r * 17) % 100;
    is_submit = roll < static_cast<std::size_t>(submit_pct);
    if (is_submit)
      return roll < static_cast<std::size_t>(deadline_pct) ? &hopeless
                                                           : &submit;
    static const std::string kPing = "PING\n";
    static const std::string kList = "LIST\n";
    return roll % 3 == 0 ? &kPing : roll % 3 == 1 ? &status : &kList;
  }
};

/// One in-flight client: a sequence of one-shot requests, each a
/// connect -> write -> half-close -> read-to-EOF cycle, driven entirely by
/// the generator's epoll loop (never a blocking call, so one generator
/// thread keeps hundreds of these in flight).
struct ClientSlot {
  enum class St : std::uint8_t { kBackoff, kConnecting, kWriting, kReading };
  int fd = -1;
  St state = St::kBackoff;
  std::size_t index = 0;  ///< global client index (workload mix key)
  std::size_t done = 0;   ///< completed requests
  std::size_t write_off = 0;
  const std::string* request = nullptr;
  bool is_submit = false;
  std::string reply;
  std::chrono::steady_clock::time_point t0;  ///< includes connect retries
  std::chrono::steady_clock::time_point retry_at;
};

class StormGenerator {
 public:
  StormGenerator(const std::filesystem::path& socket, const StormMix& mix,
                 std::size_t first_index, std::size_t count,
                 std::size_t requests_per_client)
      : mix_(mix), requests_(requests_per_client), slots_(count) {
    address_.sun_family = AF_UNIX;
    std::strncpy(address_.sun_path, socket.c_str(),
                 sizeof address_.sun_path - 1);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    for (std::size_t i = 0; i < count; ++i) {
      slots_[i].index = first_index + i;
      slots_[i].retry_at = std::chrono::steady_clock::time_point{};
    }
  }
  ~StormGenerator() { ::close(epoll_fd_); }

  StormTally run() {
    std::size_t active = slots_.size();
    for (ClientSlot& slot : slots_) begin_request(slot, true);
    std::vector<epoll_event> events(256);
    while (active > 0) {
      const auto now = std::chrono::steady_clock::now();
      bool backing_off = false;
      for (ClientSlot& slot : slots_) {
        if (slot.done >= requests_ || slot.state != ClientSlot::St::kBackoff)
          continue;
        if (slot.retry_at <= now)
          try_connect(slot);
        backing_off |= slot.state == ClientSlot::St::kBackoff;
      }
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 backing_off ? 1 : 50);
      for (int i = 0; i < (n > 0 ? n : 0); ++i) {
        auto& slot = *static_cast<ClientSlot*>(events[i].data.ptr);
        const bool was_done = slot.done >= requests_;
        if (slot.state == ClientSlot::St::kConnecting &&
            (events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)))
          on_connected(slot);
        else if (slot.state == ClientSlot::St::kWriting &&
                 (events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)))
          on_writable(slot);
        else if (slot.state == ClientSlot::St::kReading &&
                 (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)))
          on_readable(slot);
        if (!was_done && slot.done >= requests_) --active;
      }
      if (n < 0 && errno != EINTR) break;
    }
    return tally_;
  }

 private:
  void begin_request(ClientSlot& slot, bool fresh) {
    slot.request = mix_.pick(slot.index, slot.done, slot.is_submit);
    slot.write_off = 0;
    slot.reply.clear();
    if (fresh) slot.t0 = std::chrono::steady_clock::now();
    try_connect(slot);
  }

  void try_connect(ClientSlot& slot) {
    slot.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                       0);
    if (slot.fd < 0) return backoff(slot);
    const int rc = ::connect(
        slot.fd, reinterpret_cast<const sockaddr*>(&address_),
        sizeof address_);
    if (rc != 0 && errno != EINPROGRESS) {
      // AF_UNIX refuses immediately when the accept backlog is full
      // (EAGAIN) or the listener briefly lags — both retry.
      ::close(slot.fd);
      slot.fd = -1;
      return backoff(slot);
    }
    slot.state =
        rc == 0 ? ClientSlot::St::kWriting : ClientSlot::St::kConnecting;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.ptr = &slot;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, slot.fd, &ev);
  }

  void backoff(ClientSlot& slot) {
    ++tally_.connect_retries;
    slot.state = ClientSlot::St::kBackoff;
    slot.retry_at =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  }

  void on_connected(ClientSlot& slot) {
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(slot.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      drop(slot);
      return backoff(slot);
    }
    slot.state = ClientSlot::St::kWriting;
    on_writable(slot);
  }

  void on_writable(ClientSlot& slot) {
    const std::string& request = *slot.request;
    while (slot.write_off < request.size()) {
      const ssize_t n =
          ::send(slot.fd, request.data() + slot.write_off,
                 request.size() - slot.write_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        drop(slot);
        return backoff(slot);  // server died mid-write: retry the request
      }
      slot.write_off += static_cast<std::size_t>(n);
    }
    ::shutdown(slot.fd, SHUT_WR);  // half-close delimits the request
    slot.state = ClientSlot::St::kReading;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &slot;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, slot.fd, &ev);
  }

  void on_readable(ClientSlot& slot) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(slot.fd, buf, sizeof buf);
      if (n > 0) {
        slot.reply.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      // EOF (or a reset, which classifies as an error below).
      finish_request(slot);
      return;
    }
  }

  void finish_request(ClientSlot& slot) {
    drop(slot);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - slot.t0)
                          .count();
    tally_.reply_ms.push_back(ms);
    const std::string& reply = slot.reply;
    if (slot.is_submit) {
      if (reply.rfind("OK ", 0) == 0) ++tally_.submit_ok;
      else if (reply.rfind("ERR busy", 0) == 0) ++tally_.submit_busy;
      else if (reply.rfind("ERR overdeadline", 0) == 0)
        ++tally_.submit_overdeadline;
      else ++tally_.errors;
    } else {
      if (reply.rfind("OK", 0) == 0) ++tally_.probe_ok;
      else ++tally_.errors;
    }
    if (++slot.done < requests_) begin_request(slot, true);
  }

  void drop(ClientSlot& slot) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, slot.fd, nullptr);
    ::close(slot.fd);
    slot.fd = -1;
  }

  sockaddr_un address_{};
  const StormMix& mix_;
  std::size_t requests_;
  int epoll_fd_ = -1;
  std::vector<ClientSlot> slots_;
  StormTally tally_;
};

struct StormResult {
  double wall_s = 0.0;
  StormTally tally;

  [[nodiscard]] std::uint64_t submit_replies() const {
    return tally.submit_ok + tally.submit_busy + tally.submit_overdeadline;
  }
  [[nodiscard]] double submits_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(submit_replies()) / wall_s
                        : 0.0;
  }
  [[nodiscard]] double shed_rate() const {
    const std::uint64_t total = submit_replies();
    return total ? static_cast<double>(tally.submit_busy +
                                       tally.submit_overdeadline) /
                       static_cast<double>(total)
                 : 0.0;
  }
  [[nodiscard]] double quantile_ms(double q) {
    if (tally.reply_ms.empty()) return 0.0;
    std::sort(tally.reply_ms.begin(), tally.reply_ms.end());
    const std::size_t idx =
        std::min(tally.reply_ms.size() - 1,
                 static_cast<std::size_t>(
                     q * static_cast<double>(tally.reply_ms.size())));
    return tally.reply_ms[idx];
  }
};

StormResult run_storm(EndpointMode mode, const std::filesystem::path& root,
                      std::size_t clients, std::size_t requests_per_client,
                      int submit_pct, int deadline_pct,
                      std::size_t generators, std::size_t service_threads,
                      std::size_t max_pending, std::size_t workers) {
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  ServiceConfig config;
  config.root = root;
  config.num_threads = service_threads;
  config.snapshot_every = 0;
  config.max_pending = max_pending;
  config.enable_journal = false;  // front-end bench, not an audit bench
  SessionService service(config);
  EndpointOptions options;
  options.mode = mode;
  options.workers = workers;
  ServiceEndpoint endpoint(service, root / "serviced.sock", options);

  // Warm-up: populate the result cache (accepted storm SUBMITs drain
  // through it) and the session-wall histogram (>= 20 samples arms the
  // deadline admission check so deadline_pct traffic can actually shed).
  std::string warm_id;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    warm_id = service.submit_text(storm_spec(seed), 0, "warm");
    service.wait(warm_id);
  }
  MetricHistogram& wall =
      MetricsRegistry::global().histogram("session.wall_us");
  while (wall.count() < 20) wall.record(50'000'000);

  StormMix mix;
  mix.submit = "SUBMIT 0 storm\n" + storm_spec(1);
  mix.hopeless = "SUBMIT 0 storm deadline_ms=1\n" + storm_spec(1);
  mix.status = "STATUS " + warm_id + "\n";
  mix.submit_pct = submit_pct;
  mix.deadline_pct = deadline_pct;

  generators = std::max<std::size_t>(1, std::min(generators, clients));
  std::vector<std::unique_ptr<StormGenerator>> gens;
  std::size_t assigned = 0;
  for (std::size_t g = 0; g < generators; ++g) {
    const std::size_t share =
        clients / generators + (g < clients % generators ? 1 : 0);
    gens.push_back(std::make_unique<StormGenerator>(
        endpoint.socket_path(), mix, assigned, share, requests_per_client));
    assigned += share;
  }
  std::vector<StormTally> tallies(generators);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t g = 0; g < generators; ++g)
    threads.emplace_back([&, g] { tallies[g] = gens[g]->run(); });
  for (std::thread& t : threads) t.join();
  StormResult result;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  for (const StormTally& tally : tallies) result.tally.fold(tally);
  service.drain();
  return result;
}

void print_result(const char* label, StormResult& r) {
  std::cout << label << ": " << r.submit_replies() << " SUBMIT replies in "
            << Table::fmt(r.wall_s, 2) << " s = "
            << Table::fmt(r.submits_per_s(), 0) << "/s (accepted "
            << r.tally.submit_ok << ", busy " << r.tally.submit_busy
            << ", overdeadline " << r.tally.submit_overdeadline
            << ", shed rate " << Table::fmt(100.0 * r.shed_rate(), 1)
            << "%)\n  probes " << r.tally.probe_ok << ", reply p50 "
            << Table::fmt(r.quantile_ms(0.5), 2) << " ms, p99 "
            << Table::fmt(r.quantile_ms(0.99), 2) << " ms, connect retries "
            << r.tally.connect_retries << ", errors " << r.tally.errors
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients = 512;
  std::size_t requests_per_client = 16;
  int submit_pct = 60;
  int deadline_pct = 10;  // of all traffic; these SUBMITs carry deadline_ms=1
  std::string mode = "both";
  // One generator thread multiplexes all connections by default: the load
  // generator must stay lighter than the servers under test, or the
  // measurement degenerates into client-side scheduler noise.
  std::size_t generators = 1;
  std::size_t service_threads = 2;
  std::size_t max_pending = 64;
  std::size_t workers = 4;
  std::filesystem::path root =
      std::filesystem::temp_directory_path() / "emutile-submit-storm";
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") clients = std::strtoull(need(), nullptr, 10);
    else if (arg == "--requests-per-client")
      requests_per_client = std::strtoull(need(), nullptr, 10);
    else if (arg == "--submit-pct") submit_pct = std::atoi(need());
    else if (arg == "--deadline-pct") deadline_pct = std::atoi(need());
    else if (arg == "--mode") mode = need();
    else if (arg == "--generators")
      generators = std::strtoull(need(), nullptr, 10);
    else if (arg == "--threads")
      service_threads = std::strtoull(need(), nullptr, 10);
    else if (arg == "--max-pending")
      max_pending = std::strtoull(need(), nullptr, 10);
    else if (arg == "--endpoint-workers")
      workers = std::strtoull(need(), nullptr, 10);
    else if (arg == "--root") root = need();
    else if (arg == "--json") json_out = need();
    else {
      std::cerr << "usage: submit_storm [--clients N]"
                   " [--requests-per-client N] [--submit-pct N]"
                   " [--deadline-pct N] [--mode reactor|legacy|both]"
                   " [--generators N] [--threads N] [--max-pending N]"
                   " [--root DIR] [--json PATH]\n";
      return 2;
    }
  }
  if (mode != "reactor" && mode != "legacy" && mode != "both") {
    std::cerr << "--mode wants reactor|legacy|both\n";
    return 2;
  }

  bench::banner("Submit storm: epoll reactor vs thread-per-connection",
                "the service-throughput requirements behind the fleet,");
  std::cout << clients << " concurrent clients x " << requests_per_client
            << " requests, " << submit_pct << "% SUBMIT (" << deadline_pct
            << "% with a 1 ms deadline), max_pending=" << max_pending
            << ", " << generators << " generator thread(s)\n\n";

  StormResult reactor, legacy;
  if (mode != "legacy") {
    reactor = run_storm(EndpointMode::kReactor, root / "reactor", clients,
                        requests_per_client, submit_pct, deadline_pct,
                        generators, service_threads, max_pending, workers);
    print_result("reactor", reactor);
  }
  if (mode != "reactor") {
    legacy = run_storm(EndpointMode::kThreadPerConnection, root / "legacy",
                       clients, requests_per_client, submit_pct,
                       deadline_pct, generators, service_threads,
                       max_pending, workers);
    print_result("legacy ", legacy);
  }

  double submit_ratio = 0.0;
  if (mode == "both") {
    submit_ratio = reactor.submits_per_s() > 0.0
                       ? legacy.submits_per_s() / reactor.submits_per_s()
                       : 1.0;
    std::cout << "\nlegacy/reactor SUBMIT throughput ratio: "
              << Table::fmt(submit_ratio, 3) << " (reactor is "
              << Table::fmt(submit_ratio > 0.0 ? 1.0 / submit_ratio : 0.0,
                            1)
              << "x faster)\n";
  }
  const std::uint64_t total_errors =
      reactor.tally.errors + legacy.tally.errors;
  if (total_errors > 0) {
    std::cerr << "FAIL: " << total_errors
              << " requests died or got unexpected replies\n";
    return 1;
  }

  if (!json_out.empty()) {
    bench::MetricsJson metrics("submit_storm");
    if (mode == "both") {
      // Guarded: the cross-mode throughput ratio transfers across machines;
      // 0.2 means the reactor sustains 5x the legacy endpoint's SUBMIT/s.
      metrics.add("storm_submit_ratio", submit_ratio);
    }
    // Informational: absolute rates and latencies for humans and trends.
    if (mode != "legacy") {
      metrics.add("storm_reactor_submits_per_s", reactor.submits_per_s());
      metrics.add("storm_reactor_reply_p50_ms", reactor.quantile_ms(0.5));
      metrics.add("storm_reactor_reply_p99_ms", reactor.quantile_ms(0.99));
      metrics.add("storm_reactor_shed_rate", reactor.shed_rate());
      metrics.add("storm_reactor_connect_retries",
                  static_cast<double>(reactor.tally.connect_retries));
    }
    if (mode != "reactor") {
      metrics.add("storm_legacy_submits_per_s", legacy.submits_per_s());
      metrics.add("storm_legacy_reply_p99_ms", legacy.quantile_ms(0.99));
      metrics.add("storm_legacy_shed_rate", legacy.shed_rate());
      metrics.add("storm_legacy_connect_retries",
                  static_cast<double>(legacy.tally.connect_retries));
    }
    metrics.add("storm_clients", static_cast<double>(clients));
    metrics.write(json_out);
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return 0;
}
