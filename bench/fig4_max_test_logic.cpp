/// Figure 4 — "Maximum Test Logic Size" vs number of test points.
///
/// Same designs and assumptions as Figure 3. Test points are distributed
/// round-robin across tiles (each point's logic must fit inside its tile:
/// control/observation hardware is inserted at the probed net's location);
/// with n points and T tiles, some tile hosts ceil(n/T) points, so the
/// largest per-point logic is the worst-case tile's free capacity divided
/// by its point count — the hyperbolic decay the paper plots.

#include <algorithm>

#include "bench_common.hpp"

using namespace emutile;

int main() {
  bench::banner("Figure 4: max test-logic size vs number of test points",
                "Figure 4");

  const std::vector<int> points{1, 10, 19, 28, 37, 46, 55, 64, 73, 82, 91, 100};
  std::vector<std::string> header{"design"};
  for (int p : points) header.push_back(std::to_string(p));
  Table table(std::move(header));

  for (const PaperDesign& spec : paper_designs()) {
    TiledDesign design =
        bench::build_tiled_paper_design(spec.name, 10, 0.20, 1);
    const int num_tiles = design.tiles->num_tiles();
    std::vector<int> free_sites;
    for (int t = 0; t < num_tiles; ++t)
      free_sites.push_back(
          design.tile_free(TileId{static_cast<std::uint32_t>(t)}));
    // Round-robin distribution favors the roomiest tiles first.
    std::sort(free_sites.rbegin(), free_sites.rend());

    std::vector<std::string> row{spec.name};
    for (int n : points) {
      // points per tile under round-robin over the best min(n, T) tiles.
      int max_logic = 0;
      const int used_tiles = std::min(n, num_tiles);
      for (int t = 0; t < used_tiles; ++t) {
        const int points_here =
            n / num_tiles + (t < n % num_tiles ? 1 : 0);
        if (points_here == 0) continue;
        const int per_point = free_sites[static_cast<std::size_t>(t)] /
                              points_here;
        max_logic = t == 0 ? per_point : std::min(max_logic, per_point);
      }
      row.push_back(std::to_string(max_logic));
    }
    table.add_row(std::move(row));
  }

  std::cout << "max per-point test logic (# CLBs), by number of test points:\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: flat at ~free-CLBs-per-tile while points "
               "<= tiles,\nthen ~1/ceil(points/tiles) decay; DES peaks near "
               "20 CLBs (paper's\ny-axis maximum), s9234 near 4-5.\n";
  return 0;
}
